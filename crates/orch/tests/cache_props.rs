//! Property tests of the orchestrator's content-addressed identity and
//! cache integrity — the three invariants the result store's
//! correctness rests on:
//!
//! - **The canonical description is an identity, not a transcript.**
//!   However a [`SystemConfig`] was *constructed* — builder setters in
//!   any order, geometry left implicit or spelled out, any stepper —
//!   equal machines render equal canonical strings, so equivalent jobs
//!   share one cache address.
//! - **Every simulated-metric-affecting field splits the address.**
//!   Perturbing any one field that can move a simulated metric
//!   (protocol, core count, latencies, cache geometry, NoC parameters,
//!   seed, fault plan, ...) changes the canonical string — and
//!   therefore the key — while the stepper choice (proven bit-identical
//!   by the parity suites) never does.
//! - **A poisoned record is recomputed, never served.** Any truncation
//!   or single-character corruption of an on-disk record trips a
//!   validation gate on lookup; the record is evicted, the lookup
//!   reports a miss, and a fresh store repopulates the slot.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use tsocc::{Stepper, SystemConfig, SystemConfigBuilder};
use tsocc_mem::CacheParams;
use tsocc_orch::{cache_key, canonical_config, code_fingerprint, CacheRecord, ResultCache};
use tsocc_protocols::Protocol;

/// The protocol palette the identity properties draw from.
const PROTOCOLS: [fn() -> Protocol; 3] = [
    || Protocol::Mesi,
    || Protocol::MesiCoarse(Default::default()),
    || Protocol::TsoCc(Default::default()),
];

/// Valid mesh-able core counts (the builder wants rows × cols
/// factorizations to exist; powers of two always do).
const CORE_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// A fresh per-case cache directory (unique across cases and across
/// concurrently running test processes).
fn tmp_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tsocc-orch-props-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One independent builder setter, applicable in any order.
type Setter = Box<dyn Fn(SystemConfigBuilder) -> SystemConfigBuilder>;

/// One named mutation of a built config's simulated-metric fields.
type Mutation<'a> = (&'a str, Box<dyn Fn(&mut SystemConfig)>);

fn setters(proto: usize, n_cores: usize, seed: u64, latency: u64) -> Vec<Setter> {
    vec![
        Box::new(move |b| b.cores(n_cores)),
        Box::new(move |b| b.protocol(PROTOCOLS[proto % PROTOCOLS.len()]())),
        Box::new(move |b| b.seed(seed)),
        Box::new(move |b| b.l2_latency(10 + latency)),
        Box::new(move |b| b.mem_latency(100 + latency)),
        Box::new(move |b| b.l2_banks(1)),
    ]
}

/// Applies `setters` to a fresh builder in the order given by the
/// factorial-number-system decomposition of `perm`.
fn build_permuted(mut setters: Vec<Setter>, mut perm: usize) -> SystemConfig {
    let mut b = SystemConfig::builder();
    while !setters.is_empty() {
        let i = perm % setters.len();
        perm /= setters.len();
        b = setters.remove(i)(b);
    }
    b.build().expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Builder call order is construction history, not identity: every
    /// permutation of the same setter list canonicalizes identically.
    #[test]
    fn canonical_is_invariant_under_builder_field_ordering(
        proto in 0usize..3,
        cores_idx in 0usize..4,
        seed in any::<u64>(),
        latency in 0u64..50,
        perm in 0usize..720,
    ) {
        let n_cores = CORE_COUNTS[cores_idx];
        let reference = build_permuted(setters(proto, n_cores, seed, latency), 0);
        let permuted = build_permuted(setters(proto, n_cores, seed, latency), perm);
        prop_assert_eq!(canonical_config(&reference), canonical_config(&permuted));
    }

    /// Implicit geometry (`mesh: None`) and the equivalent explicit
    /// `mesh(rows, cols)` are the same machine, hence the same address.
    #[test]
    fn canonical_resolves_implicit_geometry(
        proto in 0usize..3,
        cores_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let n_cores = CORE_COUNTS[cores_idx];
        let implicit = SystemConfig::builder()
            .cores(n_cores)
            .protocol(PROTOCOLS[proto]())
            .seed(seed)
            .build()
            .expect("valid config");
        let shape = implicit.shape();
        let explicit = SystemConfig::builder()
            .cores(n_cores)
            .protocol(PROTOCOLS[proto]())
            .seed(seed)
            .mesh(shape.mesh.rows(), shape.mesh.cols())
            .build()
            .expect("valid config");
        prop_assert!(implicit.mesh.is_none());
        prop_assert!(explicit.mesh.is_some());
        prop_assert_eq!(canonical_config(&implicit), canonical_config(&explicit));
    }

    /// Each simulated-metric-affecting field splits the canonical
    /// string on its own; the stepper never does.
    #[test]
    fn canonical_distinguishes_every_simulated_field(
        proto in 0usize..3,
        cores_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let base = SystemConfig::builder()
            .cores(CORE_COUNTS[cores_idx])
            .protocol(PROTOCOLS[proto]())
            .seed(seed)
            .build()
            .expect("valid config");
        let canon = canonical_config(&base);

        // `canonical_config` renders fields without revalidating, so
        // mutations may edit the built struct directly.
        let mutations: Vec<Mutation> = vec![
            ("protocol", Box::new(move |c: &mut SystemConfig| {
                c.protocol = PROTOCOLS[(proto + 1) % PROTOCOLS.len()]().into();
            })),
            ("n_cores", Box::new(|c| {
                c.n_cores *= 2;
                c.mesh = None;
            })),
            ("n_mem", Box::new(|c| c.n_mem += 1)),
            ("l2_banks", Box::new(|c| c.l2_banks *= 2)),
            ("seed", Box::new(|c| c.seed = c.seed.wrapping_add(1))),
            ("l2_latency", Box::new(|c| c.l2_latency += 1)),
            ("mem_latency", Box::new(|c| c.mem_latency += 1)),
            ("write_buffer", Box::new(|c| c.core.write_buffer_entries += 1)),
            ("l1_hit_latency", Box::new(|c| c.core.l1_hit_latency += 1)),
            ("l1_geometry", Box::new(|c| {
                c.l1_params = CacheParams::new(c.l1_params.sets() * 2, c.l1_params.ways());
            })),
            ("l2_geometry", Box::new(|c| {
                c.l2_params = CacheParams::new(c.l2_params.sets(), c.l2_params.ways() + 1);
            })),
            ("router_latency", Box::new(|c| c.noc.router_latency += 1)),
            ("link_latency", Box::new(|c| c.noc.link_latency += 1)),
            ("flit_bytes", Box::new(|c| c.noc.flit_bytes *= 2)),
            ("fault_plan", Box::new(|c| c.faults.seed = c.faults.seed.wrapping_add(1))),
        ];
        for (name, mutate) in mutations {
            let mut cfg = base.clone();
            mutate(&mut cfg);
            prop_assert_ne!(
                canonical_config(&cfg),
                canon.clone(),
                "mutating {} must change the canonical description",
                name
            );
        }

        // The deliberate exclusion: steppers are bit-identical, so the
        // run loop must NOT split the cache.
        for stepper in [
            Stepper::Reference,
            Stepper::EventDriven,
            Stepper::ParallelShards { shards: 3 },
        ] {
            let mut cfg = base.clone();
            cfg.stepper = stepper;
            prop_assert_eq!(canonical_config(&cfg), canon.clone());
        }
    }

    /// The key mixes in all three identity components.
    #[test]
    fn cache_key_splits_on_kind_canonical_and_fingerprint(
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let canon = format!("seed={a};x={b}");
        let key = cache_key("sweep", &canon, "fp0");
        prop_assert_eq!(key.len(), 32);
        prop_assert_ne!(key.clone(), cache_key("conform", &canon, "fp0"));
        prop_assert_ne!(key.clone(), cache_key("sweep", &format!("{canon};y=1"), "fp0"));
        prop_assert_ne!(key, cache_key("sweep", &canon, "fp1"));
    }

    /// Truncated or corrupted records are detected on lookup, evicted,
    /// and recomputed — never served.
    #[test]
    fn poisoned_records_are_evicted_never_served(
        seed in any::<u64>(),
        cycles in any::<u64>(),
        cut in 0usize..1000,
        digit_pick in any::<u64>(),
        truncate in any::<bool>(),
    ) {
        let dir = tmp_dir();
        let cache = ResultCache::open(&dir).unwrap();
        let record = CacheRecord {
            kind: "sweep".to_string(),
            label: "prop".to_string(),
            canonical: format!("kind=sweep;seed={seed}"),
            fingerprint: code_fingerprint(),
            wall_raw: "0.001000".to_string(),
            metrics: vec![("cycles".to_string(), cycles), ("flits".to_string(), !cycles)],
            payload: format!("{{\"cycles\": {cycles}}}"),
        };
        let key = record.key();
        cache.store(&record).unwrap();
        let path = dir.join(&key[..2]).join(format!("{key}.json"));
        let src = std::fs::read_to_string(&path).unwrap();

        let poisoned = if truncate {
            // Cut strictly inside the serialized object so the result
            // is not a complete record (the final `}` is gone).
            src[..cut % (src.len() - 2)].to_string()
        } else {
            // Replace one digit with a different digit: whichever field
            // it lands in (a metric, the checksum, the key, the wall
            // time, the payload), some validation gate must trip.
            let digits: Vec<usize> = src
                .char_indices()
                .filter(|(_, c)| c.is_ascii_digit())
                .map(|(i, _)| i)
                .collect();
            let at = digits[(digit_pick % digits.len() as u64) as usize];
            let old = src.as_bytes()[at] - b'0';
            let new = (old + 1 + (digit_pick % 9) as u8) % 10;
            let mut bytes = src.clone().into_bytes();
            bytes[at] = b'0' + new;
            String::from_utf8(bytes).unwrap()
        };
        prop_assert_ne!(&poisoned, &src);
        std::fs::write(&path, &poisoned).unwrap();

        prop_assert!(
            cache.lookup("sweep", &record.canonical, &key).is_none(),
            "poisoned record must not be served"
        );
        let stats = cache.stats();
        prop_assert_eq!(stats.evictions, 1);
        prop_assert_eq!(stats.hits, 0);
        prop_assert!(!path.exists(), "poisoned record must be evicted");

        // Recompute-and-store repopulates the slot; the next lookup
        // serves the intact record again.
        cache.store(&record).unwrap();
        let served = cache.lookup("sweep", &record.canonical, &key);
        prop_assert_eq!(served, Some(record));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
