//! End-to-end orchestrator runs through the executor and the result
//! store: a cold run computes and populates the cache, a warm run
//! serves every job from it with byte-identical simulated results, and
//! the worker count never changes what is produced — the acceptance
//! contract behind `orchestrate sweep`'s cold/warm CI legs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use tsocc_bench::sweep::SweepPoint;
use tsocc_orch::{execute, JobSpec, ResultCache};
use tsocc_protocols::Protocol;
use tsocc_workloads::{Benchmark, Scale};

fn tmp_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tsocc-orch-e2e-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small mixed job list: four sweep points plus one exhaustive
/// model-check family, so both cacheable kinds cross the store.
fn jobs() -> Vec<JobSpec> {
    let mut jobs: Vec<JobSpec> = [Protocol::Mesi, Protocol::TsoCc(Default::default())]
        .into_iter()
        .flat_map(|protocol| {
            [2usize, 4].into_iter().map(move |n_cores| JobSpec::Sweep {
                point: SweepPoint {
                    bench: Benchmark::Fft,
                    protocol,
                    n_cores,
                    scale: Scale::Tiny,
                },
                base_seed: 11,
            })
        })
        .collect();
    jobs.push(JobSpec::Check {
        protocol: Protocol::Mesi,
        cores: 2,
        lines: 1,
        ops: 1,
    });
    jobs
}

#[test]
fn cold_then_warm_serves_everything_byte_identically() {
    let dir = tmp_dir();
    let jobs = jobs();

    let cold_cache = ResultCache::open(&dir).unwrap();
    let cold = execute(&jobs, 2, Some(&cold_cache));
    assert_eq!(cold.rows.len(), jobs.len());
    assert_eq!(cold.cached_rows(), 0, "first run must compute everything");
    assert_eq!(cold.failed_rows(), 0);
    let cold_stats = cold_cache.stats();
    assert_eq!(cold_stats.misses, jobs.len() as u64);
    assert_eq!(
        cold_stats.stores,
        jobs.len() as u64,
        "every clean job stored"
    );

    // A fresh handle on the same directory: only the on-disk records
    // carry over, exactly as in a separate warm process.
    let warm_cache = ResultCache::open(&dir).unwrap();
    let warm = execute(&jobs, 2, Some(&warm_cache));
    assert_eq!(warm.cached_rows(), jobs.len(), "warm run must be all hits");
    let warm_stats = warm_cache.stats();
    assert_eq!(warm_stats.hits, jobs.len() as u64);
    assert_eq!(warm_stats.misses, 0);
    assert!((warm_stats.hit_rate() - 1.0).abs() < 1e-12);

    for (c, w) in cold.rows.iter().zip(&warm.rows) {
        assert_eq!(c.index, w.index);
        assert_eq!(c.key, w.key);
        assert_eq!(c.metrics, w.metrics, "{}", c.label);
        assert_eq!(c.payload, w.payload, "warm payload must be verbatim");
        assert_eq!(
            c.compute_wall_raw, w.compute_wall_raw,
            "the original compute time must survive the cache round-trip"
        );
        assert!(w.clean);
    }

    let report = warm.to_json("sweep", Some(&warm_cache));
    let doc = tsocc_bench::json::parse(&report).unwrap();
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("tsocc-orch-report/v1")
    );
    assert_eq!(
        doc.get("jobs_cached").and_then(|v| v.as_u64()),
        Some(jobs.len() as u64)
    );
    assert_eq!(doc.get("jobs_failed").and_then(|v| v.as_u64()), Some(0));
    let hit_rate = doc
        .get("cache")
        .and_then(|c| c.get("hit_rate"))
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!((hit_rate - 1.0).abs() < 1e-12, "report must show 100% hits");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_count_changes_nothing_but_timings() {
    let dir = tmp_dir();
    let jobs = jobs();

    // Populate, then run warm under 1 and 4 workers.
    let cache = ResultCache::open(&dir).unwrap();
    execute(&jobs, 0, Some(&cache));
    let one = execute(&jobs, 1, Some(&cache));
    let four = execute(&jobs, 4, Some(&cache));
    assert_eq!(one.workers, 1);
    assert_eq!(four.workers, 4);
    for (a, b) in one.rows.iter().zip(&four.rows) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.label, b.label);
        assert_eq!(a.key, b.key);
        assert_eq!(a.cached, b.cached);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.compute_wall_raw, b.compute_wall_raw);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
