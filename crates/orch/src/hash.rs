//! The orchestrator's content hash: FNV-1a, doubled up to 128 bits for
//! cache keys.
//!
//! The store only ever compares a record's *stored canonical
//! description* against the query before serving (see
//! [`crate::cache::ResultCache::lookup`]), so a key collision can cost
//! a false miss, never a wrong result — which is why a seeded
//! non-cryptographic hash is acceptable here.

/// Incremental FNV-1a over bytes.
#[derive(Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the standard offset basis.
    pub fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    /// A hasher whose basis is perturbed by `salt` (the second lane of
    /// the 128-bit key).
    pub fn with_salt(salt: u64) -> Fnv {
        let mut h = Fnv(Self::OFFSET);
        h.eat_u64(salt);
        h
    }

    /// Folds raw bytes in.
    pub fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a string in, length-prefixed so `("ab","c")` and
    /// `("a","bc")` hash differently.
    pub fn eat_str(&mut self, s: &str) {
        self.eat_u64(s.len() as u64);
        self.eat(s.as_bytes());
    }

    /// Folds a little-endian `u64` in.
    pub fn eat_u64(&mut self, v: u64) {
        self.eat(&v.to_le_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// 128-bit content hash over a sequence of length-prefixed parts, as
/// 32 lowercase hex digits.
pub fn hex128_parts(parts: &[&str]) -> String {
    let mut a = Fnv::new();
    let mut b = Fnv::with_salt(0x9e37_79b9_7f4a_7c15);
    for part in parts {
        a.eat_str(part);
        b.eat_str(part);
    }
    format!("{:016x}{:016x}", a.finish(), b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex128_is_stable_and_input_sensitive() {
        assert_eq!(hex128_parts(&["abc"]), hex128_parts(&["abc"]));
        assert_eq!(hex128_parts(&["abc"]).len(), 32);
        assert_ne!(hex128_parts(&["abc"]), hex128_parts(&["abd"]));
        assert_ne!(hex128_parts(&[""]), hex128_parts(&[" "]));
        assert_ne!(hex128_parts(&["ab", "c"]), hex128_parts(&["a", "bc"]));
    }

    #[test]
    fn length_prefix_separates_concatenations() {
        let mut a = Fnv::new();
        a.eat_str("ab");
        a.eat_str("c");
        let mut b = Fnv::new();
        b.eat_str("a");
        b.eat_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
