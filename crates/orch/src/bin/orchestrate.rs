//! The campaign orchestrator entry point.
//!
//! ```text
//! orchestrate sweep    [--cache-dir PATH] [--no-cache] [--jobs N]
//!                      [--cores LIST] [--scale NAME] [--seed N]
//!                      [--out PATH] [--report PATH] [--expect-all-hits]
//! orchestrate campaign [--manifest PATH] [--cache-dir PATH] [--no-cache]
//!                      [--jobs N] [--report PATH]
//! orchestrate status   [--cache-dir PATH]
//! ```
//!
//! - **sweep** runs the committed-baseline matrix
//!   ([`tsocc_bench::sweep::baseline_matrix`]) through the cache-aware
//!   executor and writes a `tsocc-sweep-baseline/v1` artifact (default
//!   `BENCH_sweep.orch.json`) that `sweep_baseline --check` accepts.
//!   Rows are the exact serialized rows of the compute run — a cached
//!   record stores the row verbatim — so a warm re-run reproduces the
//!   cold artifact **byte-identically** while skipping every
//!   simulation. `--expect-all-hits` (CI's warm leg) exits 3 unless
//!   every job was served from the cache.
//! - **campaign** expands a `tsocc-campaign-manifest/v1` document
//!   (built-in smoke manifest when `--manifest` is omitted) and exits
//!   nonzero if any job reports a violation.
//! - **status** scans the cache directory and reports record counts by
//!   freshness against the current code fingerprint.
//!
//! Both run subcommands write a `tsocc-orch-report/v1` document with
//! per-job timings, cache keys, and hit/miss/evict statistics.

use tsocc_bench::cli::Cli;
use tsocc_bench::json;
use tsocc_bench::sweep::baseline_matrix;
use tsocc_orch::executor::execute;
use tsocc_orch::jobs::JobSpec;
use tsocc_orch::manifest::{parse_manifest, DEFAULT_MANIFEST};
use tsocc_orch::{code_fingerprint, ResultCache};
use tsocc_workloads::Scale;

const TOP_USAGE: &str = "orchestrate — campaign orchestrator with a content-addressed result cache

usage: orchestrate <sweep|campaign|status> [flags]

subcommands:
  sweep     run the baseline sweep matrix through the result cache
  campaign  run a declarative campaign manifest
  status    report what the cache directory holds

run `orchestrate <subcommand> --help` for the subcommand's flags.
";

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print!("{TOP_USAGE}");
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    let subcommand = args.remove(0);
    match subcommand.as_str() {
        "sweep" => run_sweep(args),
        "campaign" => run_campaign(args),
        "status" => run_status(args),
        other => {
            eprint!("orchestrate: unknown subcommand {other:?}\n\n{TOP_USAGE}");
            std::process::exit(2);
        }
    }
}

fn cache_flags(cli: Cli) -> Cli {
    cli.opt(
        "--cache-dir",
        "PATH",
        "content-addressed result store directory",
    )
    .switch("--no-cache", "compute everything, touch no cache")
    .opt("--jobs", "N", "worker threads (0 = one per CPU)")
    .opt("--report", "PATH", "tsocc-orch-report/v1 output path")
}

/// Opens the store unless `--no-cache`; `None` means compute-only.
fn open_cache(args: &tsocc_bench::cli::ParsedArgs, default_dir: &str) -> Option<ResultCache> {
    if args.present("--no-cache") {
        return None;
    }
    let dir = args.str("--cache-dir").unwrap_or(default_dir);
    match ResultCache::open(dir) {
        Ok(cache) => Some(cache),
        Err(e) => {
            eprintln!("orchestrate: cannot open cache at {dir}: {e}");
            std::process::exit(2);
        }
    }
}

fn run_sweep(args: Vec<String>) {
    let args = cache_flags(Cli::new(
        "orchestrate sweep",
        "run the baseline sweep matrix through the result cache",
    ))
    .opt("--cores", "LIST", "comma-separated core counts")
    .opt("--scale", "NAME", "workload scale: tiny, small, full")
    .opt("--seed", "N", "base sweep seed")
    .opt("--out", "PATH", "sweep artifact output path")
    .switch(
        "--expect-all-hits",
        "exit 3 unless every job was served from the cache",
    )
    .parse_rest(args);

    let scale = match args.str("--scale").unwrap_or("small") {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "full" => Scale::Full,
        other => {
            eprintln!("orchestrate sweep: unknown scale {other:?} (see --help)");
            std::process::exit(2);
        }
    };
    let seed = args.u64("--seed").unwrap_or(0xC0FFEE);
    let core_counts: Vec<usize> = args
        .str("--cores")
        .unwrap_or("2,4,8,16,32,64,128")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out_path = args
        .str("--out")
        .unwrap_or("BENCH_sweep.orch.json")
        .to_string();
    let report_path = args
        .str("--report")
        .unwrap_or("ORCH_report.json")
        .to_string();

    let points = baseline_matrix(scale, &core_counts);
    let jobs: Vec<JobSpec> = points
        .into_iter()
        .map(|point| JobSpec::Sweep {
            point,
            base_seed: seed,
        })
        .collect();

    let cache = open_cache(&args, ".tsocc-cache");
    let report = execute(&jobs, args.usize("--jobs").unwrap_or(0), cache.as_ref());

    // The artifact: same schema and row serialization as
    // `sweep_baseline`, minus the host-dependent engine-comparison
    // fields, so `sweep_baseline --check` validates it and a warm
    // re-run (whose rows come back verbatim from the store) writes
    // byte-identical content.
    let doc = json::Object::new()
        .str("schema", "tsocc-sweep-baseline/v1")
        .str("orchestrator", "tsocc-orch/v1")
        .str("bench", "fft")
        .str("scale", &format!("{scale:?}").to_lowercase())
        .u64("base_seed", seed)
        .u64("points_total", report.rows.len() as u64)
        .raw(
            "points",
            json::array(report.rows.iter().map(|r| r.payload.clone())),
        )
        .build();
    std::fs::write(&out_path, doc + "\n").expect("write sweep artifact");

    let cached = report.cached_rows();
    let total = report.rows.len();
    let report_doc = report.to_json("sweep", cache.as_ref());
    std::fs::write(&report_path, report_doc + "\n").expect("write orchestrator report");
    if let Some(cache) = &cache {
        let stats = cache.stats();
        eprintln!(
            "orchestrate sweep: {total} jobs ({cached} cached, hit rate {:.0}%), {} steals, {:.2}s; wrote {out_path}, {report_path}",
            stats.hit_rate() * 100.0,
            report.steals,
            report.wall_seconds,
        );
    } else {
        eprintln!(
            "orchestrate sweep: {total} jobs (cache disabled), {} steals, {:.2}s; wrote {out_path}, {report_path}",
            report.steals, report.wall_seconds,
        );
    }
    if args.present("--expect-all-hits") && cached != total {
        eprintln!(
            "orchestrate sweep: expected an all-hit run, but only {cached}/{total} jobs were served from the cache"
        );
        std::process::exit(3);
    }
}

fn run_campaign(args: Vec<String>) {
    let args = cache_flags(Cli::new(
        "orchestrate campaign",
        "run a declarative campaign manifest through the result cache",
    ))
    .opt(
        "--manifest",
        "PATH",
        "tsocc-campaign-manifest/v1 document (built-in smoke manifest if omitted)",
    )
    .parse_rest(args);

    let src = match args.str("--manifest") {
        Some(path) => std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("orchestrate campaign: cannot read {path}: {e}");
            std::process::exit(2);
        }),
        None => DEFAULT_MANIFEST.to_string(),
    };
    let manifest = parse_manifest(&src).unwrap_or_else(|e| {
        eprintln!("orchestrate campaign: bad manifest: {e}");
        std::process::exit(2);
    });
    let report_path = args
        .str("--report")
        .unwrap_or("ORCH_campaign_report.json")
        .to_string();

    let cache = open_cache(&args, ".tsocc-cache");
    let report = execute(
        &manifest.jobs,
        args.usize("--jobs").unwrap_or(0),
        cache.as_ref(),
    );
    let failed = report.failed_rows();
    let report_doc = report.to_json("campaign", cache.as_ref());
    std::fs::write(&report_path, report_doc + "\n").expect("write orchestrator report");
    eprintln!(
        "orchestrate campaign: {} jobs ({} cached, {} failed), {} steals, {:.2}s; wrote {report_path}",
        report.rows.len(),
        report.cached_rows(),
        failed,
        report.steals,
        report.wall_seconds,
    );
    if failed > 0 {
        for row in report.rows.iter().filter(|r| !r.clean) {
            eprintln!("orchestrate campaign: FAILED {}", row.label);
        }
        std::process::exit(1);
    }
}

fn run_status(args: Vec<String>) {
    let args = Cli::new(
        "orchestrate status",
        "report what the cache directory holds",
    )
    .opt(
        "--cache-dir",
        "PATH",
        "content-addressed result store directory",
    )
    .parse_rest(args);

    let dir = args.str("--cache-dir").unwrap_or(".tsocc-cache");
    let cache = ResultCache::open(dir).unwrap_or_else(|e| {
        eprintln!("orchestrate status: cannot open cache at {dir}: {e}");
        std::process::exit(2);
    });
    let scan = cache.scan();
    let doc = json::Object::new()
        .str("schema", "tsocc-orch-status/v1")
        .str("cache_dir", dir)
        .str("fingerprint", &code_fingerprint())
        .u64("records_fresh", scan.fresh)
        .u64("records_stale", scan.stale)
        .u64("records_invalid", scan.invalid)
        .u64("bytes", scan.bytes)
        .build();
    println!("{doc}");
}
