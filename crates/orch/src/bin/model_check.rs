//! Exhaustive model-checking entry point: runs the stateless DPOR
//! checker (`tsocc-check`) over the systematic two-thread litmus family
//! for every selected protocol and writes a JSON report.
//!
//! ```text
//! model_check [--budget-ms N] [--seed N] [--out PATH]
//!             [--protocol NAME]... [--all-configs]
//!             [--cores N] [--lines N] [--ops N]
//!             [--naive-cap N] [--mutations]
//!             [--cache-dir PATH] [--no-cache]
//! ```
//!
//! `--cache-dir` serves an unchanged all-clean clean-mode run from the
//! orchestrator's content-addressed result store (summary metrics,
//! exit 0). Violating, budget-exhausted, and `--mutations` runs are
//! never cached — their diagnostics are always regenerated.
//!
//! Defaults: 120 s budget, seed 0, 2 cores, a 1-line address pool,
//! 2 ops per thread, the three protocol families (MESI, MESI-P2-G2,
//! TSO-CC-4-basic), `CHECK_report.json`.
//!
//! Two modes:
//!
//! - **Clean check** (default): every two-thread program from the
//!   systematic `{St x, St y, Ld x, Ld y, Fence}` family is enumerated
//!   to exhaustion per protocol; any coherence-axiom violation,
//!   non-TSO outcome, deadlock, or livelock fails the run. A reduction
//!   probe re-checks the store-buffering program without DPOR (capped
//!   at `--naive-cap` schedules) and reports `check_reduction` — the
//!   schedule-count ratio naive/DPOR, a lower bound when the naive leg
//!   hits its cap.
//! - **`--mutations`**: the four-fault mutation leg
//!   ([`tsocc_check::mutation_cases`] placed by `--seed`); every fault
//!   must be caught and shrink to a re-verified minimal reproducer.
//!
//! Exit status: nonzero iff a clean-mode violation was found, a
//! mutation escaped, or the budget expired before the run finished.

use std::time::{Duration, Instant};

use tsocc_bench::cli::Cli;
use tsocc_bench::json;
use tsocc_check::{
    check_model, mutation_cases, pool_for_lines, run_mutation, CheckOpts, CheckReport,
};
use tsocc_coherence::FaultPlan;
use tsocc_conform::{litmus_text, op_count};
use tsocc_mesi_coarse::MesiCoarseConfig;
use tsocc_orch::BinCache;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::tso_model::{generate_two_thread_programs, ModelOp, ModelProgram};

fn sb() -> ModelProgram {
    let st = |addr, value| ModelOp::Store { addr, value };
    let ld = |addr| ModelOp::Load { addr };
    vec![vec![st(0, 1), ld(1)], vec![st(1, 1), ld(0)]]
}

/// Pads a two-thread program with empty threads up to `cores` so wider
/// configurations exercise their extra (idle) tiles.
fn pad(mut program: ModelProgram, cores: usize) -> ModelProgram {
    while program.len() < cores {
        program.push(Vec::new());
    }
    program
}

struct ProtocolResult {
    name: String,
    programs_total: usize,
    programs_checked: usize,
    report: CheckReport,
    violation_programs: Vec<(ModelProgram, &'static str)>,
    budget_exhausted: bool,
}

fn main() {
    let args = BinCache::flags(
        Cli::new(
            "model_check",
            "exhaustive stateless DPOR model checking of the coherence protocols",
        )
        .campaign_flags()
        .protocol_flags()
        .opt("--cores", "N", "core count (threads beyond 2 stay idle)")
        .opt("--lines", "N", "cache lines in the address pool (1 or 2)")
        .opt("--ops", "N", "ops per thread in the systematic family")
        .opt(
            "--naive-cap",
            "N",
            "schedule cap for the no-DPOR reduction probe (0 disables)",
        )
        .switch("--mutations", "run the protocol-fault mutation leg instead"),
    )
    .parse();

    let budget = Duration::from_millis(args.u64("--budget-ms").unwrap_or(120_000));
    let seed = args.u64("--seed").unwrap_or(0);
    let cores = args.usize("--cores").unwrap_or(2).max(2);
    let lines = args.usize("--lines").unwrap_or(1);
    let ops = args.usize("--ops").unwrap_or(2);
    let naive_cap = args.u64("--naive-cap").unwrap_or(200_000);
    let protocols = args.protocols(vec![
        Protocol::Mesi,
        Protocol::MesiCoarse(MesiCoarseConfig::new(2, 2)),
        Protocol::TsoCc(TsoCcConfig::basic()),
    ]);
    let out = args
        .str("--out")
        .unwrap_or(if args.present("--mutations") {
            "CHECK_mutations.json"
        } else {
            "CHECK_report.json"
        })
        .to_string();

    let start = Instant::now();
    if args.present("--mutations") {
        run_mutation_mode(cores, lines, seed, budget, start, &out);
        return;
    }

    let cache = BinCache::from_args(&args);
    // The budget and probe cap shape completeness and the probe's
    // reported ratio, so they are part of the identity; the protocol
    // list is keyed by display names.
    let protocol_names: Vec<String> = protocols.iter().map(|p| p.name()).collect();
    let canonical = format!(
        "kind=model_check;cores={cores};lines={lines};ops={ops};naive_cap={naive_cap};\
         budget_ms={};protocols={}",
        budget.as_millis(),
        protocol_names.join(",")
    );
    if let Some(record) = cache.lookup("model_check", &canonical) {
        let doc = json::Object::new()
            .str("schema", "tsocc-model-check/v1")
            .raw("cached", "true")
            .str("canonical", &canonical)
            .raw(
                "metrics",
                record
                    .metrics
                    .iter()
                    .fold(json::Object::new(), |o, (k, v)| o.u64(k, *v))
                    .build(),
            )
            .raw("compute_wall_seconds", &record.wall_raw)
            .raw("cache", cache.stats_json())
            .build();
        std::fs::write(&out, doc + "\n").expect("write model-check report");
        eprintln!(
            "model check served from cache (originally {}s); wrote abbreviated {out}",
            record.wall_raw
        );
        return;
    }

    let opts = CheckOpts::default();
    let pool = pool_for_lines(lines);
    let family = generate_two_thread_programs(ops);
    let mut results: Vec<ProtocolResult> = Vec::new();
    for protocol in &protocols {
        let mut totals = CheckReport {
            complete: true,
            ..CheckReport::default()
        };
        let mut checked = 0usize;
        let mut violation_programs = Vec::new();
        let mut budget_exhausted = false;
        for program in &family {
            if start.elapsed() >= budget {
                budget_exhausted = true;
                break;
            }
            let program = pad(program.clone(), cores);
            let report = check_model(protocol, FaultPlan::none(), &program, &pool, &opts)
                .expect("oracle state space fits the default bound");
            checked += 1;
            totals.schedules += report.schedules;
            totals.transitions += report.transitions;
            totals.sleep_blocked += report.sleep_blocked;
            totals.complete &= report.complete;
            for v in &report.violations {
                violation_programs.push((program.clone(), v.kind.tag()));
            }
            totals.violations.extend(report.violations);
        }
        eprintln!(
            "{}: {}/{} programs, {} schedules, {} violation(s){}",
            protocol.name(),
            checked,
            family.len(),
            totals.schedules,
            totals.violations.len(),
            if budget_exhausted {
                " [budget expired]"
            } else {
                ""
            },
        );
        results.push(ProtocolResult {
            name: protocol.name(),
            programs_total: family.len(),
            programs_checked: checked,
            report: totals,
            violation_programs,
            budget_exhausted,
        });
    }

    // The reduction probe: same program, DPOR on vs off. Run on the
    // first protocol only — the ratio is a property of the explorer,
    // not of the policy under test.
    let probe_program = pad(sb(), cores);
    let dpor = check_model(
        &protocols[0],
        FaultPlan::none(),
        &probe_program,
        &pool,
        &opts,
    )
    .expect("probe oracle fits");
    let naive = (naive_cap > 0).then(|| {
        check_model(
            &protocols[0],
            FaultPlan::none(),
            &probe_program,
            &pool,
            &CheckOpts {
                naive: true,
                max_schedules: naive_cap,
                ..CheckOpts::default()
            },
        )
        .expect("probe oracle fits")
    });
    let check_reduction = naive.as_ref().map(|n| dpor.reduction(n)).unwrap_or(0.0);
    if let Some(n) = &naive {
        eprintln!(
            "reduction probe: DPOR {} vs naive {}{} schedules — {check_reduction:.1}x",
            dpor.schedules,
            n.schedules,
            if n.complete { "" } else { " (capped)" },
        );
    }

    let protocol_docs = results.iter().map(|r| {
        let violations = r.violation_programs.iter().map(|(program, kind)| {
            json::Object::new()
                .str("kind", kind)
                .str("litmus", &litmus_text(program))
                .build()
        });
        json::Object::new()
            .str("protocol", &r.name)
            .u64("programs_total", r.programs_total as u64)
            .u64("programs_checked", r.programs_checked as u64)
            .u64("schedules", r.report.schedules)
            .u64("transitions", r.report.transitions)
            .u64("sleep_blocked", r.report.sleep_blocked)
            .u64("violations_total", r.report.violations.len() as u64)
            .raw("violations", json::array(violations))
            .raw("complete", bool_json(r.report.complete))
            .raw("budget_exhausted", bool_json(r.budget_exhausted))
            .build()
    });
    let probe = json::Object::new()
        .str("program", "SB")
        .u64("dpor_schedules", dpor.schedules)
        .u64("naive_schedules", naive.as_ref().map_or(0, |n| n.schedules))
        .raw(
            "naive_complete",
            bool_json(naive.as_ref().is_some_and(|n| n.complete)),
        )
        .f64("check_reduction", check_reduction)
        .build();
    let all_clean = results
        .iter()
        .all(|r| r.report.violations.is_empty() && !r.budget_exhausted);
    let doc = json::Object::new()
        .str("schema", "tsocc-model-check/v1")
        .u64("seed", seed)
        .u64("budget_ms", budget.as_millis() as u64)
        .u64("cores", cores as u64)
        .u64("lines", lines as u64)
        .u64("ops_per_thread", ops as u64)
        .raw("pool", json::array(pool.iter().map(u64::to_string)))
        .raw("protocols", json::array(protocol_docs))
        .raw("reduction_probe", probe)
        .raw("all_clean", bool_json(all_clean))
        .raw("cache", cache.stats_json())
        .f64("elapsed_seconds", start.elapsed().as_secs_f64())
        .build();
    std::fs::write(&out, doc + "\n").expect("write model-check report");
    eprintln!("wrote {out}");
    if !all_clean {
        std::process::exit(1);
    }
    let totals = |f: fn(&ProtocolResult) -> u64| results.iter().map(f).sum::<u64>();
    cache.store_clean(
        "model_check",
        "model_check",
        &canonical,
        vec![
            (
                "programs_checked".to_string(),
                totals(|r| r.programs_checked as u64),
            ),
            ("schedules".to_string(), totals(|r| r.report.schedules)),
            ("transitions".to_string(), totals(|r| r.report.transitions)),
            (
                "sleep_blocked".to_string(),
                totals(|r| r.report.sleep_blocked),
            ),
            ("violations_total".to_string(), 0),
            ("dpor_schedules".to_string(), dpor.schedules),
        ],
        start.elapsed().as_secs_f64(),
    );
}

fn run_mutation_mode(
    cores: usize,
    lines: usize,
    seed: u64,
    budget: Duration,
    start: Instant,
    out: &str,
) {
    // The per-case cap bounds the shrinker's exhaustive re-checks of
    // clean candidate programs; every fault itself surfaces within
    // ~1k schedules.
    let opts = CheckOpts {
        max_schedules: 20_000,
        ..CheckOpts::default()
    };
    let cases = mutation_cases(cores, lines, seed);
    let total = cases.len();
    let mut legs = Vec::new();
    let mut caught = 0usize;
    let mut budget_exhausted = false;
    for case in &cases {
        if start.elapsed() >= budget {
            budget_exhausted = true;
            break;
        }
        let outcome = run_mutation(case, &opts).expect("mutation oracle fits the default bound");
        let ok = outcome.caught && outcome.shrunk_verified;
        caught += ok as usize;
        eprintln!(
            "[{}] {} on {}: {} ({} schedules, shrunk {} -> {} ops)",
            if ok { "ok" } else { "FAIL" },
            outcome.name,
            case.protocol.name(),
            outcome.violation.unwrap_or("escaped"),
            outcome.schedules,
            op_count(&case.program),
            op_count(&outcome.shrunk),
        );
        legs.push(
            json::Object::new()
                .str("name", outcome.name)
                .str("protocol", &case.protocol.name())
                .raw("caught", bool_json(outcome.caught))
                .str("violation", outcome.violation.unwrap_or(""))
                .u64("schedules", outcome.schedules)
                .u64("original_ops", op_count(&case.program) as u64)
                .u64("shrunk_ops", op_count(&outcome.shrunk) as u64)
                .str("shrunk_litmus", &litmus_text(&outcome.shrunk))
                .raw("shrunk_verified", bool_json(outcome.shrunk_verified))
                .build(),
        );
    }
    let all_caught = caught == total && !budget_exhausted;
    let doc = json::Object::new()
        .str("schema", "tsocc-model-check-mutations/v1")
        .u64("seed", seed)
        .u64("cores", cores as u64)
        .u64("lines", lines as u64)
        .u64("mutations", total as u64)
        .u64("mutations_caught", caught as u64)
        .raw("budget_exhausted", bool_json(budget_exhausted))
        .raw("all_caught", bool_json(all_caught))
        .raw("legs", json::array(legs))
        .f64("elapsed_seconds", start.elapsed().as_secs_f64())
        .build();
    std::fs::write(out, doc + "\n").expect("write mutation report");
    eprintln!(
        "mutation leg: {caught}/{total} caught and verified; wrote {out} in {:.2}s",
        start.elapsed().as_secs_f64()
    );
    if !all_caught {
        std::process::exit(1);
    }
}

fn bool_json(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}
