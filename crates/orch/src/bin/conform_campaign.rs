//! The conformance campaign entry point (§4.3 grown into CI): runs a
//! budgeted randomized N-thread litmus campaign against the operational
//! memory-model oracle and writes a JSON report.
//!
//! ```text
//! conform_campaign [--budget-ms N] [--seed N] [--threads N]
//!                  [--min-programs N] [--max-programs N]
//!                  [--cores N] [--iters N] [--oracle tso|sc]
//!                  [--all-configs] [--protocol NAME]... [--out PATH]
//!                  [--cache-dir PATH] [--no-cache]
//! ```
//!
//! Defaults: 2000 ms budget, ≥ 500 programs, 3 threads per program,
//! MESI + TSO-CC-realistic(12,3), TSO oracle, `CONFORM_report.json`.
//! `--protocol` (repeatable, any `Protocol::from_name` display name,
//! e.g. `MESI-P2-G2`) replaces the default protocol list; the first use
//! clears it. `--protocol` and `--all-configs` are mutually exclusive.
//! `--oracle sc` deliberately strengthens the oracle to sequential
//! consistency — a TSO machine then *must* produce violations, which
//! demonstrates (and in CI smoke-tests) the catcher + shrinker end to
//! end.
//!
//! `--cache-dir` serves an unchanged *clean* TSO-oracle run from the
//! orchestrator's content-addressed result store (summary metrics in an
//! abbreviated report, exit 0) instead of recomputing; violating runs
//! and `--oracle sc` runs are never cached, so their full diagnostics
//! are always regenerated.
//!
//! Exit status: nonzero iff violations were found under the TSO oracle
//! (under `--oracle sc` violations are the expected outcome and the
//! exit flips: zero iff at least one violation was caught and shrunk).

use std::time::{Duration, Instant};

use tsocc_bench::cli::Cli;
use tsocc_bench::json;
use tsocc_conform::{litmus_text, op_count, run_campaign, CampaignOpts, GenConfig};
use tsocc_orch::{BinCache, JobSpec};
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::tso_model::ModelMode;

fn parse_args() -> (CampaignOpts, String, BinCache) {
    let args = BinCache::flags(
        Cli::new(
            "conform_campaign",
            "budgeted randomized litmus campaign against the TSO/SC oracle",
        )
        .campaign_flags()
        .protocol_flags()
        .opt("--threads", "N", "sweep worker threads")
        .opt("--min-programs", "N", "minimum programs to check")
        .opt("--max-programs", "N", "maximum programs to check")
        .opt("--cores", "N", "threads per generated program")
        .opt("--iters", "N", "simulator runs per (program, protocol)")
        .opt(
            "--oracle",
            "tso|sc",
            "memory-model oracle (sc injects a deliberate mismatch)",
        ),
    )
    .parse();
    let mut opts = CampaignOpts {
        budget: Duration::from_millis(2000),
        min_programs: 500,
        gen: GenConfig {
            threads: 3,
            ..GenConfig::default()
        },
        ..Default::default()
    };
    if let Some(ms) = args.u64("--budget-ms") {
        opts.budget = Duration::from_millis(ms);
    }
    if let Some(seed) = args.u64("--seed") {
        opts.seed = seed;
    }
    if let Some(workers) = args.usize("--threads") {
        opts.workers = workers;
    }
    if let Some(n) = args.usize("--min-programs") {
        opts.min_programs = n;
    }
    if let Some(n) = args.usize("--max-programs") {
        opts.max_programs = n;
    }
    if let Some(n) = args.usize("--cores") {
        opts.gen.threads = n;
    }
    if let Some(n) = args.u64("--iters") {
        opts.iters_per_program = n;
    }
    opts.oracle = match args.str("--oracle") {
        None | Some("tso") => ModelMode::Tso,
        Some("sc") => ModelMode::Sc,
        Some(other) => panic!("--oracle must be tso or sc, got {other:?}"),
    };
    opts.protocols = args.protocols(vec![
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
    ]);
    let out = args
        .str("--out")
        .unwrap_or("CONFORM_report.json")
        .to_string();
    (opts, out, BinCache::from_args(&args))
}

/// The cached summary metrics, in record order.
const CACHED_METRICS: [&str; 6] = [
    "programs_checked",
    "programs_skipped",
    "sim_runs",
    "allowed_outcomes_total",
    "observed_outcomes_total",
    "violations_total",
];

fn main() {
    let (opts, out_path, cache) = parse_args();
    // The job identity is the orchestrator's: same canonical string,
    // same cache records, whether a run arrives through this binary or
    // through `orchestrate campaign`.
    let canonical = JobSpec::Conform {
        label: "conform_campaign".to_string(),
        opts: opts.clone(),
    }
    .canonical();
    if let Some(record) = cache.lookup("conform", &canonical) {
        let doc = json::Object::new()
            .str("schema", "tsocc-conform-campaign/v1")
            .raw("cached", "true")
            .str("canonical", &canonical)
            .raw(
                "metrics",
                record
                    .metrics
                    .iter()
                    .fold(json::Object::new(), |o, (k, v)| o.u64(k, *v))
                    .build(),
            )
            .raw("compute_wall_seconds", &record.wall_raw)
            .raw("cache", cache.stats_json())
            .build();
        std::fs::write(&out_path, doc + "\n").expect("write campaign report");
        eprintln!(
            "conform campaign served from cache (originally {}s); wrote abbreviated {out_path}",
            record.wall_raw
        );
        return;
    }
    let t = Instant::now();
    let report = run_campaign(&opts);
    eprintln!("{}", report.summary());

    let histogram = |h: &[u64]| json::array(h.iter().map(u64::to_string));
    let violations = report.violations.iter().map(|v| {
        let outcome = match &v.outcome {
            Some(o) => json::array(o.iter().map(u64::to_string)),
            None => "null".to_string(),
        };
        json::Object::new()
            .u64("program_index", v.program_index as u64)
            .u64("program_seed", v.program_seed)
            .str("protocol", &v.protocol)
            .raw("outcome", outcome)
            .str("error", v.error.as_deref().unwrap_or(""))
            .u64("original_ops", op_count(&v.program) as u64)
            .u64("shrunk_ops", op_count(&v.shrunk) as u64)
            .str("shrunk_litmus", &litmus_text(&v.shrunk))
            .build()
    });
    let doc = json::Object::new()
        .str("schema", "tsocc-conform-campaign/v1")
        .u64("seed", opts.seed)
        .u64("budget_ms", opts.budget.as_millis() as u64)
        .str(
            "oracle",
            match opts.oracle {
                ModelMode::Tso => "tso",
                ModelMode::Sc => "sc",
            },
        )
        .u64("gen_threads", opts.gen.threads as u64)
        .u64("gen_max_ops", opts.gen.max_ops as u64)
        .u64("gen_locations", opts.gen.locations as u64)
        .raw(
            "protocols",
            json::array(report.protocols.iter().map(|p| json::string(p))),
        )
        .u64("programs_checked", report.programs_checked as u64)
        .u64("programs_skipped_too_large", report.programs_skipped as u64)
        .u64("sim_runs", report.sim_runs)
        .u64("model_states_total", report.states_total)
        .u64("max_state_space", report.max_state_space as u64)
        .raw(
            "state_space_histogram_log2",
            histogram(&report.state_space_histogram),
        )
        .raw(
            "outcome_coverage_histogram_deciles",
            histogram(&report.coverage_histogram),
        )
        .u64("allowed_outcomes_total", report.allowed_outcomes_total)
        .u64("observed_outcomes_total", report.observed_outcomes_total)
        .u64("violations_total", report.violations_total)
        .raw("violations", json::array(violations))
        .raw("cache", cache.stats_json())
        .f64("elapsed_seconds", report.elapsed.as_secs_f64())
        .build();
    std::fs::write(&out_path, doc + "\n").expect("write campaign report");
    eprintln!("wrote {out_path}");

    // Only a clean real-oracle run is worth serving later; SC runs
    // exist to produce violations and violating runs need their full
    // diagnostics regenerated.
    if opts.oracle == ModelMode::Tso && report.violations_total == 0 {
        let values = [
            report.programs_checked as u64,
            report.programs_skipped as u64,
            report.sim_runs,
            report.allowed_outcomes_total,
            report.observed_outcomes_total,
            report.violations_total,
        ];
        let metrics = CACHED_METRICS
            .iter()
            .zip(values)
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        cache.store_clean(
            "conform",
            "conform_campaign",
            &canonical,
            metrics,
            t.elapsed().as_secs_f64(),
        );
    }

    let failed = match opts.oracle {
        // Real oracle: any violation is a conformance bug.
        ModelMode::Tso => report.violations_total > 0,
        // Injected fault: the campaign must catch it and shrink small.
        ModelMode::Sc => !report.violations.iter().any(|v| op_count(&v.shrunk) <= 6),
    };
    if failed {
        std::process::exit(1);
    }
}
