//! Mutation testing for the verification stack: injects every
//! protocol-layer fault the simulator supports and demands that the
//! existing oracles — litmus forbidden outcomes and the
//! deadlock/liveness detector — catch **all** of them. A mutation that
//! slips through means the test suite has a blind spot, and the
//! campaign fails the build.
//!
//! ```text
//! fault_campaign [--budget-ms N] [--seed N] [--iters N] [--out PATH]
//!                [--cache-dir PATH] [--no-cache]
//! ```
//!
//! Defaults: no time budget, seed 7, 8 iterations per (mutation,
//! litmus test), `FAULT_campaign.json`. `--cache-dir` serves an
//! unchanged all-ok run from the orchestrator's content-addressed
//! result store (summary metrics, exit 0); any run with a failing leg
//! is never cached, so its diagnostics are always regenerated.
//!
//! The matrix has two kinds of legs:
//!
//! - **Mutations** (expected *detected*): each
//!   [`ProtocolFault`] paired with every protocol whose policy has the
//!   faulted seam. Most legs walk the litmus suite until an oracle
//!   flags the mutation; hung runs attach the structured
//!   [`tsocc::HangReport`] to the JSON artifact. Mutations that need
//!   long access histories to surface (a silently wrapped timestamp
//!   source only bites on the *second* communication round) run under
//!   the conformance campaign instead, which checks random programs
//!   against the enumerated TSO model.
//! - **Benign plans** (expected *clean*): deterministic NoC jitter,
//!   which adds latency but must never change correctness — any
//!   oracle hit here is a real simulator bug.
//!
//! Exit status: nonzero unless every mutation was detected AND every
//! benign leg stayed clean.

use std::time::{Duration, Instant};

use tsocc::{FaultPlan, NocFault, ProtocolFault};
use tsocc_bench::cli::Cli;
use tsocc_bench::hang::hang_report_json;
use tsocc_bench::json;
use tsocc_conform::{run_campaign, CampaignOpts, GenConfig};
use tsocc_mem::LineAddr;
use tsocc_mesi_coarse::MesiCoarseConfig;
use tsocc_orch::BinCache;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::litmus::{litmus_suite, run_litmus_faulted, FaultVerdict};

/// Which detector a leg runs its fault plan under.
enum Oracle {
    /// Walk the litmus suite until a forbidden outcome or hang.
    Litmus,
    /// Conformance campaign: `programs` random programs checked
    /// against the enumerated TSO model (plus its own hang detection).
    Conform { programs: usize },
}

/// One campaign leg: a fault plan, the protocol it targets, and
/// whether the oracles are expected to flag it.
struct Leg {
    name: &'static str,
    protocol: Protocol,
    plan: FaultPlan,
    oracle: Oracle,
    expect_detected: bool,
}

/// The litmus data line `X = 0x2000` (64-byte lines).
const LINE_X: LineAddr = LineAddr::new(0x80);

fn matrix(seed: u64) -> Vec<Leg> {
    let plan = |protocol: Option<ProtocolFault>, noc: Option<NocFault>| FaultPlan {
        seed,
        noc,
        protocol,
        stepper: None,
    };
    // A 1-bit timestamp source wraps on every write, so the faulted
    // core hits the (skipped) reset path constantly; max-accesses of 2
    // forces re-fetches through the acquire check every other read,
    // where the skipped self-invalidation becomes an observable stale
    // read. Wider configs hide the mutation behind cache hits.
    let tsocc_tiny_ts = Protocol::TsoCc(TsoCcConfig {
        max_acc: 2,
        ..TsoCcConfig::realistic(1, 0)
    });
    vec![
        // Dropped invalidation ack: the writer's miss never completes.
        Leg {
            name: "drop-inv-ack",
            protocol: Protocol::Mesi,
            plan: plan(Some(ProtocolFault::DropInvAck { core: 1 }), None),
            oracle: Oracle::Litmus,
            expect_detected: true,
        },
        // Corrupted sharer set: one L1 keeps a stale copy of the data
        // line. Exercised on both the full-vector and the
        // coarse-vector directory (the fan-out seam is shared).
        Leg {
            name: "corrupt-sharers",
            protocol: Protocol::Mesi,
            plan: plan(Some(ProtocolFault::CorruptSharers { tile: 0 }), None),
            oracle: Oracle::Litmus,
            expect_detected: true,
        },
        Leg {
            name: "corrupt-sharers-coarse",
            protocol: Protocol::MesiCoarse(MesiCoarseConfig::new(2, 2)),
            plan: plan(Some(ProtocolFault::CorruptSharers { tile: 0 }), None),
            oracle: Oracle::Litmus,
            expect_detected: true,
        },
        // The same corruption under the conformance oracle: random
        // programs checked against the enumerated TSO model, proving
        // the campaign's second detector also has teeth.
        Leg {
            name: "corrupt-sharers-conform",
            protocol: Protocol::Mesi,
            plan: plan(Some(ProtocolFault::CorruptSharers { tile: 0 }), None),
            oracle: Oracle::Conform { programs: 60 },
            expect_detected: true,
        },
        // Silently wrapped timestamp source: acquire checks in remote
        // L1s stop self-invalidating, so stale reads survive past the
        // point TSO allows. Only the two-round `MP+rounds` litmus test
        // can see it — this leg is why that test exists.
        Leg {
            name: "skip-ts-reset",
            protocol: tsocc_tiny_ts,
            plan: plan(Some(ProtocolFault::SkipTsReset { core: 0 }), None),
            oracle: Oracle::Litmus,
            expect_detected: true,
        },
        // Held MSHR: the hand-crafted deadlock, on both protocols.
        Leg {
            name: "hold-mshr",
            protocol: Protocol::Mesi,
            plan: plan(
                Some(ProtocolFault::HoldMshr {
                    core: 0,
                    line: LINE_X,
                }),
                None,
            ),
            oracle: Oracle::Litmus,
            expect_detected: true,
        },
        Leg {
            name: "hold-mshr-tsocc",
            protocol: Protocol::TsoCc(TsoCcConfig::default()),
            plan: plan(
                Some(ProtocolFault::HoldMshr {
                    core: 0,
                    line: LINE_X,
                }),
                None,
            ),
            oracle: Oracle::Litmus,
            expect_detected: true,
        },
        // Benign NoC jitter: latency changes, correctness must not.
        Leg {
            name: "noc-jitter-benign",
            protocol: Protocol::Mesi,
            plan: plan(
                None,
                Some(NocFault {
                    extra_delay_max: 7,
                    vnet: None,
                }),
            ),
            oracle: Oracle::Litmus,
            expect_detected: false,
        },
        Leg {
            name: "noc-jitter-benign-tsocc",
            protocol: Protocol::TsoCc(TsoCcConfig::default()),
            plan: plan(
                None,
                Some(NocFault {
                    extra_delay_max: 7,
                    vnet: None,
                }),
            ),
            oracle: Oracle::Litmus,
            expect_detected: false,
        },
    ]
}

struct LegResult {
    name: &'static str,
    protocol: String,
    expect_detected: bool,
    detected: bool,
    oracle: &'static str,
    test: String,
    tests_run: usize,
    detail: String,
    hang_json: Option<String>,
    ok: bool,
}

fn main() {
    let args = BinCache::flags(
        Cli::new(
            "fault_campaign",
            "mutation testing of the verification oracles via injected protocol faults",
        )
        .campaign_flags()
        .opt("--iters", "N", "iterations per (mutation, litmus test)"),
    )
    .parse();
    let budget = args
        .u64("--budget-ms")
        .map_or(Duration::MAX, Duration::from_millis);
    let seed = args.u64("--seed").unwrap_or(7);
    let iters = args.u64("--iters").unwrap_or(8);
    let out = args
        .str("--out")
        .unwrap_or("FAULT_campaign.json")
        .to_string();
    let cache = BinCache::from_args(&args);
    // The leg matrix is code, so it lives in the fingerprint, not the
    // key; the budget shapes how far each leg walks the litmus suite,
    // so it is part of the identity.
    let canonical = format!(
        "kind=fault;seed={seed};iters={iters};budget_ms={}",
        if budget == Duration::MAX {
            u64::MAX
        } else {
            budget.as_millis() as u64
        }
    );
    if let Some(record) = cache.lookup("fault", &canonical) {
        let doc = json::Object::new()
            .str("schema", "tsocc-fault-campaign/v1")
            .raw("cached", "true")
            .str("canonical", &canonical)
            .raw(
                "metrics",
                record
                    .metrics
                    .iter()
                    .fold(json::Object::new(), |o, (k, v)| o.u64(k, *v))
                    .build(),
            )
            .raw("compute_wall_seconds", &record.wall_raw)
            .raw("cache", cache.stats_json())
            .build();
        std::fs::write(&out, doc + "\n").expect("write fault campaign report");
        eprintln!(
            "fault campaign served from cache (originally {}s); wrote abbreviated {out}",
            record.wall_raw
        );
        return;
    }

    let start = Instant::now();
    let suite = litmus_suite();
    let mut results: Vec<LegResult> = Vec::new();
    for leg in matrix(seed) {
        let mut detected = false;
        let mut oracle = "none";
        let mut test_name = String::new();
        let mut detail = String::new();
        let mut hang_json = None;
        let mut tests_run = 0usize;
        match leg.oracle {
            Oracle::Litmus => {
                for test in &suite {
                    // The budget trims how far each leg walks the
                    // suite, never below one test — a leg with zero
                    // evidence would be meaningless.
                    if tests_run > 0 && start.elapsed() >= budget {
                        break;
                    }
                    tests_run += 1;
                    match run_litmus_faulted(test, leg.protocol, iters, seed, leg.plan) {
                        FaultVerdict::Clean => {}
                        FaultVerdict::Forbidden { count, iterations } => {
                            detected = true;
                            oracle = "forbidden-outcome";
                            test_name = test.name.to_string();
                            detail = format!("{count}/{iterations} iterations forbidden");
                            break;
                        }
                        FaultVerdict::Hung { error, report } => {
                            detected = true;
                            oracle = "hang-detector";
                            test_name = test.name.to_string();
                            detail = report.summary();
                            hang_json = Some(hang_report_json(&report));
                            if !error.is_empty() {
                                detail = format!("{error}; {detail}");
                            }
                            break;
                        }
                    }
                }
            }
            Oracle::Conform { programs } => {
                // Longer programs than the conformance default so a
                // faulted core accumulates enough timestamped accesses
                // for the mutation to matter within one program.
                let opts = CampaignOpts {
                    seed,
                    budget: budget
                        .checked_sub(start.elapsed())
                        .unwrap_or(Duration::ZERO),
                    min_programs: programs.min(8),
                    max_programs: programs,
                    protocols: vec![leg.protocol],
                    gen: GenConfig {
                        threads: 2,
                        min_ops: 4,
                        max_ops: 8,
                        ..GenConfig::default()
                    },
                    max_violations: 1,
                    faults: leg.plan,
                    ..CampaignOpts::default()
                };
                let report = run_campaign(&opts);
                tests_run = report.programs_checked;
                if report.violations_total > 0 {
                    detected = true;
                    oracle = "conformance-model";
                    if let Some(v) = report.violations.first() {
                        test_name = format!("program #{}", v.program_index);
                        detail = v
                            .error
                            .clone()
                            .unwrap_or_else(|| "simulator outcome outside TSO model".to_string());
                    }
                } else {
                    detail = report.summary();
                }
            }
        }
        let ok = detected == leg.expect_detected;
        eprintln!(
            "[{}] {} on {}: {} ({} test(s), oracle {})",
            if ok { "ok" } else { "FAIL" },
            leg.name,
            leg.protocol.name(),
            if detected { "detected" } else { "clean" },
            tests_run,
            oracle,
        );
        results.push(LegResult {
            name: leg.name,
            protocol: leg.protocol.name(),
            expect_detected: leg.expect_detected,
            detected,
            oracle,
            test: test_name,
            tests_run,
            detail,
            hang_json,
            ok,
        });
    }

    let mutations = results.iter().filter(|r| r.expect_detected).count();
    let caught = results
        .iter()
        .filter(|r| r.expect_detected && r.detected)
        .count();
    let all_ok = results.iter().all(|r| r.ok);
    let legs = results.iter().map(|r| {
        let o = json::Object::new()
            .str("name", r.name)
            .str("protocol", &r.protocol)
            .raw(
                "expect_detected",
                if r.expect_detected { "true" } else { "false" },
            )
            .raw("detected", if r.detected { "true" } else { "false" })
            .str("oracle", r.oracle)
            .str("test", &r.test)
            .u64("tests_run", r.tests_run as u64)
            .str("detail", &r.detail)
            .raw("ok", if r.ok { "true" } else { "false" });
        match &r.hang_json {
            Some(h) => o.raw("hang_report", h.clone()),
            None => o.raw("hang_report", "null"),
        }
        .build()
    });
    let doc = json::Object::new()
        .str("schema", "tsocc-fault-campaign/v1")
        .u64("seed", seed)
        .u64("iters_per_test", iters)
        .u64("mutations", mutations as u64)
        .u64("mutations_detected", caught as u64)
        .raw("all_ok", if all_ok { "true" } else { "false" })
        .raw("legs", json::array(legs))
        .raw("cache", cache.stats_json())
        .f64("elapsed_seconds", start.elapsed().as_secs_f64())
        .build();
    std::fs::write(&out, doc + "\n").expect("write fault campaign report");
    eprintln!(
        "fault campaign: {caught}/{mutations} mutations detected; wrote {out} in {:.2}s",
        start.elapsed().as_secs_f64()
    );
    if !all_ok {
        std::process::exit(1);
    }
    cache.store_clean(
        "fault",
        "fault_campaign",
        &canonical,
        vec![
            ("legs".to_string(), results.len() as u64),
            ("mutations".to_string(), mutations as u64),
            ("mutations_detected".to_string(), caught as u64),
        ],
        start.elapsed().as_secs_f64(),
    );
}
