//! The content-addressed result store.
//!
//! One simulation result = one immutable JSON record under the cache
//! directory, addressed by a 128-bit content hash of the job's
//! **canonical description** (see [`crate::jobs::JobSpec::canonical`])
//! and the **code-version fingerprint**
//! ([`crate::fingerprint::code_fingerprint`]). Records are append-only:
//! the store never rewrites a record in place — a record is either
//! absent, valid, or *evicted* (deleted) the moment validation fails,
//! and a changed tree simply addresses different keys, leaving the old
//! generation behind for `orchestrate status` to report as stale.
//!
//! Lookup is paranoid by design: before a record is served, the store
//! re-parses it, recomputes its integrity checksum, and compares the
//! *stored* canonical description byte-for-byte against the query. A
//! truncated file, a flipped metric digit, or a hash collision all fail
//! one of those gates and the job is recomputed — a poisoned cache can
//! cost time, never correctness.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tsocc_bench::json;

use crate::fingerprint::code_fingerprint;
use crate::hash::{hex128_parts, Fnv};

/// Computes the cache key a record of `kind` with this canonical
/// description lives under. The fingerprint participates in the
/// address itself, so a code change *misses* (old records stay behind)
/// rather than requiring an in-place invalidation pass.
pub fn cache_key(kind: &str, canonical: &str, fingerprint: &str) -> String {
    hex128_parts(&["tsocc-orch-key/v1", kind, canonical, fingerprint])
}

/// One stored result, exactly as serialized to disk.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheRecord {
    /// Job kind (`sweep` / `conform` / `check`).
    pub kind: String,
    /// Human-readable job label (display only; not part of the key).
    pub label: String,
    /// The canonical job description the key was derived from.
    pub canonical: String,
    /// Code-version fingerprint the result was computed under.
    pub fingerprint: String,
    /// The original compute time, as the exact serialized token (kept
    /// as a string so a served record round-trips byte-identically).
    pub wall_raw: String,
    /// Simulated metrics, in a fixed per-kind order.
    pub metrics: Vec<(String, u64)>,
    /// Kind-specific serialized payload (the sweep row JSON), or empty.
    pub payload: String,
}

impl CacheRecord {
    /// The key this record is addressed by.
    pub fn key(&self) -> String {
        cache_key(&self.kind, &self.canonical, &self.fingerprint)
    }

    /// Integrity checksum over every content field. Stored in the
    /// record and recomputed on lookup, so any single-field corruption
    /// — including a flipped digit inside a metric — is detected.
    fn checksum(&self) -> String {
        let mut h = Fnv::new();
        h.eat_str("tsocc-orch-record/v1");
        h.eat_str(&self.kind);
        h.eat_str(&self.label);
        h.eat_str(&self.canonical);
        h.eat_str(&self.fingerprint);
        h.eat_str(&self.wall_raw);
        for (name, value) in &self.metrics {
            h.eat_str(name);
            h.eat_u64(*value);
        }
        h.eat_str(&self.payload);
        format!("{:016x}", h.finish())
    }

    /// Serializes the record (the on-disk format,
    /// `tsocc-orch-cache/v1`).
    pub fn to_json(&self) -> String {
        let metrics = self
            .metrics
            .iter()
            .fold(json::Object::new(), |obj, (name, value)| {
                obj.u64(name, *value)
            });
        json::Object::new()
            .str("schema", "tsocc-orch-cache/v1")
            .str("key", &self.key())
            .str("kind", &self.kind)
            .str("label", &self.label)
            .str("canonical", &self.canonical)
            .str("fingerprint", &self.fingerprint)
            .raw("wall_seconds", &self.wall_raw)
            .raw("metrics", metrics.build())
            .str("payload", &self.payload)
            .str("checksum", &self.checksum())
            .build()
    }

    /// Parses and *verifies* a serialized record: schema, checksum, and
    /// key self-consistency all have to hold.
    ///
    /// # Errors
    ///
    /// A description of the first failed gate (malformed JSON, missing
    /// field, checksum mismatch, key mismatch).
    pub fn parse(src: &str) -> Result<CacheRecord, String> {
        let doc = json::parse(src)?;
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| format!("record is missing {name:?}"))
        };
        let str_field = |name: &str| {
            field(name)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("record field {name:?} is not a string"))
        };
        if str_field("schema")? != "tsocc-orch-cache/v1" {
            return Err("record schema mismatch".to_string());
        }
        let wall_raw = match field("wall_seconds")? {
            json::Value::Num(raw) => raw.clone(),
            _ => return Err("record field \"wall_seconds\" is not a number".to_string()),
        };
        let metrics = match field("metrics")? {
            json::Value::Obj(fields) => fields
                .iter()
                .map(|(name, value)| {
                    value
                        .as_u64()
                        .map(|v| (name.clone(), v))
                        .ok_or_else(|| format!("metric {name:?} is not a u64"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("record field \"metrics\" is not an object".to_string()),
        };
        let record = CacheRecord {
            kind: str_field("kind")?,
            label: str_field("label")?,
            canonical: str_field("canonical")?,
            fingerprint: str_field("fingerprint")?,
            wall_raw,
            metrics,
            payload: str_field("payload")?,
        };
        if str_field("checksum")? != record.checksum() {
            return Err("record checksum mismatch".to_string());
        }
        if str_field("key")? != record.key() {
            return Err("record key does not match its content".to_string());
        }
        Ok(record)
    }
}

/// Hit/miss/store/evict counters, shared across worker threads.
#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of the cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a valid record.
    pub hits: u64,
    /// Lookups that found no (valid) record.
    pub misses: u64,
    /// Records written.
    pub stores: u64,
    /// Invalid records deleted during lookup.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (`1.0` on an all-hit run,
    /// `0.0` when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The stats as a JSON object (the report's `cache` field).
    pub fn to_json_obj(&self) -> json::Object {
        json::Object::new()
            .u64("hits", self.hits)
            .u64("misses", self.misses)
            .u64("stores", self.stores)
            .u64("evictions", self.evictions)
            .f64("hit_rate", self.hit_rate())
    }
}

/// What `orchestrate status` reports about a cache directory.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanSummary {
    /// Valid records addressed by the *current* code fingerprint.
    pub fresh: u64,
    /// Valid records from other fingerprints (older code generations).
    pub stale: u64,
    /// Files that failed record validation.
    pub invalid: u64,
    /// Total bytes across all record files.
    pub bytes: u64,
}

/// The content-addressed result store rooted at one directory.
///
/// Layout: `<dir>/<key[0..2]>/<key>.json`, one immutable record per
/// key, written atomically (temp file + rename) so concurrent workers
/// and interrupted runs can never leave a half-written record behind —
/// and if anything else does, lookup validation evicts it.
pub struct ResultCache {
    dir: PathBuf,
    fingerprint: String,
    counters: Counters,
}

impl ResultCache {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            fingerprint: code_fingerprint(),
            counters: Counters::default(),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The code fingerprint this store addresses new records under.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The key a job of `kind` with this canonical description is
    /// addressed by under the current fingerprint.
    pub fn key_for(&self, kind: &str, canonical: &str) -> String {
        cache_key(kind, canonical, &self.fingerprint)
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(&key[..2]).join(format!("{key}.json"))
    }

    /// Looks `key` up, expecting a record of `kind` whose canonical
    /// description matches `canonical` byte-for-byte. Counts a hit or a
    /// miss; an existing-but-invalid record is evicted (deleted and
    /// counted) and reported as a miss, so a poisoned record is
    /// *recomputed*, never served.
    pub fn lookup(&self, kind: &str, canonical: &str, key: &str) -> Option<CacheRecord> {
        let path = self.path_for(key);
        let Ok(src) = std::fs::read_to_string(&path) else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let valid = CacheRecord::parse(&src)
            .ok()
            .filter(|r| r.key() == key && r.kind == kind && r.canonical == canonical);
        match valid {
            Some(record) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            None => {
                let _ = std::fs::remove_file(&path);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Writes `record` under its content key (atomic temp + rename; a
    /// concurrent writer of the same key harmlessly wins the rename
    /// race with an identical record).
    ///
    /// # Errors
    ///
    /// Propagates the filesystem failure; the store is left without a
    /// partial record either way.
    pub fn store(&self, record: &CacheRecord) -> io::Result<()> {
        let key = record.key();
        let path = self.path_for(&key);
        let parent = path.parent().expect("record path has a shard directory");
        std::fs::create_dir_all(parent)?;
        let tmp = parent.join(format!(".{key}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, record.to_json() + "\n")?;
        std::fs::rename(&tmp, &path)?;
        self.counters.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// A snapshot of this handle's hit/miss/store/evict counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Walks every record file in the store and classifies it against
    /// the current fingerprint (the `orchestrate status` scan). Invalid
    /// files are counted but left in place — they are only evicted when
    /// a lookup actually trips over them.
    pub fn scan(&self) -> ScanSummary {
        let mut summary = ScanSummary::default();
        let Ok(shards) = std::fs::read_dir(&self.dir) else {
            return summary;
        };
        for shard in shards.flatten() {
            let Ok(files) = std::fs::read_dir(shard.path()) else {
                continue;
            };
            for file in files.flatten() {
                let Ok(src) = std::fs::read_to_string(file.path()) else {
                    continue;
                };
                summary.bytes += src.len() as u64;
                match CacheRecord::parse(&src) {
                    Ok(r) if r.fingerprint == self.fingerprint => summary.fresh += 1,
                    Ok(_) => summary.stale += 1,
                    Err(_) => summary.invalid += 1,
                }
            }
        }
        summary
    }
}

/// The campaign binaries' one-stop cache integration: resolves the
/// shared `--cache-dir PATH` / `--no-cache` flag pair into an optional
/// store and wraps the lookup/store-when-clean protocol every binary
/// follows. A binary whose whole run is one job (the campaign entry
/// points, as opposed to the orchestrator's per-point jobs) serves its
/// *summary metrics* from the cache and skips recomputation only for
/// runs that previously succeeded — failing runs are never stored, so
/// their full diagnostics are always regenerated.
pub struct BinCache {
    cache: Option<ResultCache>,
}

impl BinCache {
    /// The flag declarations [`BinCache::from_args`] consumes; chain
    /// onto a [`tsocc_bench::cli::Cli`] spec.
    pub fn flags(cli: tsocc_bench::cli::Cli) -> tsocc_bench::cli::Cli {
        cli.opt(
            "--cache-dir",
            "PATH",
            "serve unchanged clean runs from this content-addressed result store",
        )
        .switch("--no-cache", "compute everything, touch no cache")
    }

    /// Resolves the flag pair. No `--cache-dir` (or `--no-cache`)
    /// means every call below is a no-op.
    pub fn from_args(args: &tsocc_bench::cli::ParsedArgs) -> BinCache {
        let cache = match (args.present("--no-cache"), args.str("--cache-dir")) {
            (false, Some(dir)) => match ResultCache::open(dir) {
                Ok(cache) => Some(cache),
                Err(e) => {
                    eprintln!("cannot open cache at {dir}: {e}");
                    std::process::exit(2);
                }
            },
            _ => None,
        };
        BinCache { cache }
    }

    /// Whether a store is attached.
    pub fn enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Looks the run up by its canonical description.
    pub fn lookup(&self, kind: &str, canonical: &str) -> Option<CacheRecord> {
        let cache = self.cache.as_ref()?;
        cache.lookup(kind, canonical, &cache.key_for(kind, canonical))
    }

    /// Stores a successful run's summary metrics.
    pub fn store_clean(
        &self,
        kind: &str,
        label: &str,
        canonical: &str,
        metrics: Vec<(String, u64)>,
        wall_seconds: f64,
    ) {
        let Some(cache) = &self.cache else { return };
        let record = CacheRecord {
            kind: kind.to_string(),
            label: label.to_string(),
            canonical: canonical.to_string(),
            fingerprint: cache.fingerprint().to_string(),
            wall_raw: format!("{wall_seconds:.6}"),
            metrics,
            payload: String::new(),
        };
        if let Err(e) = cache.store(&record) {
            eprintln!("failed to store {label} in the cache: {e}");
        }
    }

    /// This run's cache stats as a serialized JSON value (`null` when
    /// no store is attached) — for embedding in campaign reports.
    pub fn stats_json(&self) -> String {
        self.cache
            .as_ref()
            .map_or("null".to_string(), |c| c.stats().to_json_obj().build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> CacheRecord {
        CacheRecord {
            kind: "sweep".to_string(),
            label: "fft/MESI/4c".to_string(),
            canonical: "kind=sweep;demo=1".to_string(),
            fingerprint: code_fingerprint(),
            wall_raw: "0.125000".to_string(),
            metrics: vec![
                ("cycles".to_string(), 123),
                ("mem_fp".to_string(), u64::MAX),
            ],
            payload: "{\"cycles\": 123}".to_string(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tsocc-orch-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_round_trips_exactly() {
        let r = record();
        let parsed = CacheRecord::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn store_then_lookup_hits_and_counts() {
        let dir = tmp_dir("hit");
        let cache = ResultCache::open(&dir).unwrap();
        let r = record();
        let key = r.key();
        assert!(cache.lookup(&r.kind, &r.canonical, &key).is_none());
        cache.store(&r).unwrap();
        let served = cache.lookup(&r.kind, &r.canonical, &key).unwrap();
        assert_eq!(served, r);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.stores), (1, 1, 1));
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn canonical_mismatch_is_never_served() {
        // A (hypothetical) key collision between two different jobs
        // must fall back to recomputation: the stored canonical string
        // is the authoritative identity, not the hash.
        let dir = tmp_dir("collide");
        let cache = ResultCache::open(&dir).unwrap();
        let r = record();
        cache.store(&r).unwrap();
        assert!(cache
            .lookup(&r.kind, "kind=sweep;demo=2", &r.key())
            .is_none());
        assert_eq!(cache.stats().evictions, 1, "colliding record is evicted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_classifies_generations() {
        let dir = tmp_dir("scan");
        let cache = ResultCache::open(&dir).unwrap();
        let fresh = record();
        cache.store(&fresh).unwrap();
        let stale = CacheRecord {
            fingerprint: "0123456789abcdef".to_string(),
            ..record()
        };
        cache.store(&stale).unwrap();
        std::fs::create_dir_all(dir.join("zz")).unwrap();
        std::fs::write(dir.join("zz/zz.json"), "{broken").unwrap();
        let summary = cache.scan();
        assert_eq!((summary.fresh, summary.stale, summary.invalid), (1, 1, 1));
        assert!(summary.bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
