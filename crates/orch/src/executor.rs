//! The work-stealing job executor.
//!
//! Jobs are seeded into a shared **injector** deque; each worker also
//! owns a local deque. A worker prefers its local queue, refills from
//! the injector in small batches when the local queue runs dry, and —
//! only when the injector is empty too — **steals from the back** of
//! another worker's queue, so a worker stuck on one long job (a
//! 128-core sweep point) cannot strand the short jobs queued behind it.
//!
//! Determinism: results land in slots keyed by *job index*, and every
//! job's seed derives from the job's identity ([`crate::jobs::JobSpec`])
//! — never from which worker ran it or in what order — so the report's
//! rows are identical for any worker count, modulo wall-clock timings
//! (asserted across `--jobs {1, 4}` in `tests/orchestrator.rs`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tsocc_bench::json;

use crate::cache::{CacheRecord, ResultCache};
use crate::fingerprint::code_fingerprint;
use crate::jobs::JobSpec;

/// One job's outcome row in the run report.
#[derive(Clone, Debug)]
pub struct JobRow {
    /// Position in the submitted job list.
    pub index: usize,
    /// Job kind tag.
    pub kind: &'static str,
    /// Display label.
    pub label: String,
    /// The content-address the job was looked up / stored under.
    pub key: String,
    /// Whether the result was served from the cache.
    pub cached: bool,
    /// Whether the result is clean (see
    /// [`crate::jobs::JobOutcome::clean`]; cached results are always
    /// clean — violating runs are never stored).
    pub clean: bool,
    /// Wall-clock this run spent on the job (serve time when cached).
    pub wall_seconds: f64,
    /// The *original* compute time as its exact serialized token —
    /// survives a cache round-trip unchanged.
    pub compute_wall_raw: String,
    /// Simulated metrics in the kind's fixed order.
    pub metrics: Vec<(String, u64)>,
    /// Kind-specific payload (the sweep row JSON), or empty.
    pub payload: String,
}

/// The outcome of one executor run.
#[derive(Debug)]
pub struct ExecReport {
    /// Per-job rows, in submission order.
    pub rows: Vec<JobRow>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Successful steals from another worker's local queue.
    pub steals: u64,
    /// End-to-end wall-clock of the run.
    pub wall_seconds: f64,
}

impl ExecReport {
    /// Rows served from the cache.
    pub fn cached_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.cached).count()
    }

    /// Rows that are not clean.
    pub fn failed_rows(&self) -> usize {
        self.rows.iter().filter(|r| !r.clean).count()
    }

    /// Serializes the run as a `tsocc-orch-report/v1` document.
    /// `cache` is `None` under `--no-cache`.
    pub fn to_json(&self, subcommand: &str, cache: Option<&ResultCache>) -> String {
        let jobs = self.rows.iter().map(|r| {
            let metrics = r
                .metrics
                .iter()
                .fold(json::Object::new(), |obj, (name, value)| {
                    obj.u64(name, *value)
                });
            json::Object::new()
                .u64("index", r.index as u64)
                .str("kind", r.kind)
                .str("label", &r.label)
                .str("key", &r.key)
                .raw("cached", if r.cached { "true" } else { "false" })
                .raw("clean", if r.clean { "true" } else { "false" })
                .f64("wall_seconds", r.wall_seconds)
                .raw("compute_wall_seconds", &r.compute_wall_raw)
                .raw("metrics", metrics.build())
                .build()
        });
        json::Object::new()
            .str("schema", "tsocc-orch-report/v1")
            .str("subcommand", subcommand)
            .str("fingerprint", &code_fingerprint())
            .u64("workers", self.workers as u64)
            .u64("steals", self.steals)
            .u64("jobs_total", self.rows.len() as u64)
            .u64("jobs_cached", self.cached_rows() as u64)
            .u64("jobs_failed", self.failed_rows() as u64)
            .raw(
                "cache",
                cache.map_or("null".to_string(), |c| c.stats().to_json_obj().build()),
            )
            .f64("wall_seconds", self.wall_seconds)
            .raw("jobs", json::array(jobs))
            .build()
    }
}

/// Runs one job: cache lookup, compute on miss, store when clean.
fn run_job(index: usize, job: &JobSpec, cache: Option<&ResultCache>) -> JobRow {
    let t = Instant::now();
    let kind = job.kind();
    let label = job.label();
    let canonical = job.canonical();
    let key = match cache {
        Some(c) => c.key_for(kind, &canonical),
        None => crate::cache::cache_key(kind, &canonical, &code_fingerprint()),
    };
    if let Some(c) = cache {
        if let Some(record) = c.lookup(kind, &canonical, &key) {
            return JobRow {
                index,
                kind,
                label,
                key,
                cached: true,
                clean: true,
                wall_seconds: t.elapsed().as_secs_f64(),
                compute_wall_raw: record.wall_raw,
                metrics: record.metrics,
                payload: record.payload,
            };
        }
    }
    let out = job.run();
    // The record keeps the wall time in the exact form the JSON writer
    // emits, so a warm-served row reproduces the cold row byte-for-byte.
    let wall_raw = format!("{:.6}", out.wall.as_secs_f64());
    if let Some(c) = cache {
        if out.clean {
            let record = CacheRecord {
                kind: kind.to_string(),
                label: label.clone(),
                canonical,
                fingerprint: c.fingerprint().to_string(),
                wall_raw: wall_raw.clone(),
                metrics: out.metrics.clone(),
                payload: out.payload.clone(),
            };
            if let Err(e) = c.store(&record) {
                eprintln!("orchestrate: failed to store {label}: {e}");
            }
        }
    }
    JobRow {
        index,
        kind,
        label,
        key,
        cached: false,
        clean: out.clean,
        wall_seconds: t.elapsed().as_secs_f64(),
        compute_wall_raw: wall_raw,
        metrics: out.metrics,
        payload: out.payload,
    }
}

/// Executes `jobs` on `workers` threads (`0` = one per available CPU),
/// looking each job up in `cache` first (pass `None` for `--no-cache`).
/// Returns rows in submission order regardless of schedule.
pub fn execute(jobs: &[JobSpec], workers: usize, cache: Option<&ResultCache>) -> ExecReport {
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = if workers == 0 { auto } else { workers }.clamp(1, jobs.len().max(1));
    let start = Instant::now();

    let injector: Mutex<VecDeque<usize>> = Mutex::new((0..jobs.len()).collect());
    let locals: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    let steals = AtomicU64::new(0);
    let slots: Vec<Mutex<Option<JobRow>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    // Refill batch: enough to amortize the injector lock, small enough
    // to leave most of the queue up for grabs by other workers.
    let batch = (jobs.len() / (2 * workers)).clamp(1, 8);

    std::thread::scope(|s| {
        for w in 0..workers {
            let injector = &injector;
            let locals = &locals;
            let steals = &steals;
            let slots = &slots;
            s.spawn(move || loop {
                // Local queue first (front: oldest of our own refill).
                let mut next = locals[w].lock().unwrap().pop_front();
                // Refill from the shared injector.
                if next.is_none() {
                    let mut inj = injector.lock().unwrap();
                    next = inj.pop_front();
                    if next.is_some() && batch > 1 {
                        let mut local = locals[w].lock().unwrap();
                        for _ in 1..batch {
                            match inj.pop_front() {
                                Some(i) => local.push_back(i),
                                None => break,
                            }
                        }
                    }
                }
                // Steal from the back of a sibling's queue.
                if next.is_none() {
                    for v in (0..workers).filter(|&v| v != w) {
                        if let Some(i) = locals[v].lock().unwrap().pop_back() {
                            steals.fetch_add(1, Ordering::Relaxed);
                            next = Some(i);
                            break;
                        }
                    }
                }
                let Some(i) = next else { break };
                let row = run_job(i, &jobs[i], cache);
                eprintln!(
                    "[{:>7.1?}] {:>3}/{} {:<40} {}{:.3}s",
                    start.elapsed(),
                    i + 1,
                    jobs.len(),
                    row.label,
                    if row.cached { "cached " } else { "" },
                    row.wall_seconds,
                );
                *slots[i].lock().unwrap() = Some(row);
            });
        }
    });

    ExecReport {
        rows: slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("no worker panicked holding a result slot")
                    .expect("every slot filled once the scope joins")
            })
            .collect(),
        workers,
        steals: steals.load(Ordering::Relaxed),
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_bench::sweep::SweepPoint;
    use tsocc_protocols::Protocol;
    use tsocc_workloads::{Benchmark, Scale};

    fn tiny_jobs() -> Vec<JobSpec> {
        [Protocol::Mesi, Protocol::TsoCc(Default::default())]
            .into_iter()
            .flat_map(|protocol| {
                [2usize, 4].into_iter().map(move |n_cores| JobSpec::Sweep {
                    point: SweepPoint {
                        bench: Benchmark::Fft,
                        protocol,
                        n_cores,
                        scale: Scale::Tiny,
                    },
                    base_seed: 3,
                })
            })
            .collect()
    }

    #[test]
    fn rows_are_deterministic_across_worker_counts() {
        let jobs = tiny_jobs();
        let serial = execute(&jobs, 1, None);
        let parallel = execute(&jobs, 4, None);
        assert_eq!(serial.workers, 1);
        assert_eq!(parallel.workers, 4);
        assert_eq!(serial.rows.len(), parallel.rows.len());
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.label, b.label);
            assert_eq!(a.key, b.key);
            assert_eq!(a.metrics, b.metrics, "{}", a.label);
            // Payload rows embed wall-clock fields, which legitimately
            // differ run to run; every simulated field must not.
            let (pa, pb) = (
                tsocc_bench::json::parse(&a.payload).unwrap(),
                tsocc_bench::json::parse(&b.payload).unwrap(),
            );
            for key in [
                "bench",
                "config",
                "n_cores",
                "seed",
                "cycles",
                "instructions",
                "msgs",
                "flits",
                "flit_hops",
                "mem_fp",
            ] {
                assert_eq!(
                    format!("{:?}", pa.get(key)),
                    format!("{:?}", pb.get(key)),
                    "{}.{key}",
                    a.label
                );
            }
        }
    }

    #[test]
    fn empty_job_list_completes() {
        let report = execute(&[], 4, None);
        assert!(report.rows.is_empty());
        assert_eq!(report.steals, 0);
    }
}
