//! The code-version fingerprint folded into every cache key.
//!
//! A cached simulation result is only valid as long as the *code* that
//! produced it would still produce the same simulated metrics. The
//! fingerprint pins that: it hashes the compiled version of every crate
//! whose code can change a simulated metric (cycle counts, message
//! counts, final memory), plus an explicit [`SIM_EPOCH`] bump constant
//! and the build profile. Any version bump — the workspace shares one
//! version, so any release — or an epoch bump invalidates every cached
//! record at lookup time; stale records simply miss and are recomputed.
//!
//! Crates that only *drive* simulations (this crate, `tsocc-bench`'s
//! CLI/reporting layer) are deliberately not part of the fingerprint:
//! changing how results are scheduled or serialized must not throw away
//! results that are still correct.

use crate::hash::Fnv;

/// Manual invalidation epoch for simulated-metric changes that ship
/// without a version bump (e.g. a bug fix during development on an
/// unreleased tree). Bump it to orphan every existing cache record.
pub const SIM_EPOCH: u64 = 1;

/// The `(crate, version)` pairs the fingerprint covers: every crate on
/// the path from a job description to a simulated metric.
pub fn versioned_crates() -> Vec<(&'static str, &'static str)> {
    vec![
        ("tsocc", tsocc::CRATE_VERSION),
        ("tsocc-sim", tsocc_sim::CRATE_VERSION),
        ("tsocc-mem", tsocc_mem::CRATE_VERSION),
        ("tsocc-noc", tsocc_noc::CRATE_VERSION),
        ("tsocc-cpu", tsocc_cpu::CRATE_VERSION),
        ("tsocc-isa", tsocc_isa::CRATE_VERSION),
        ("tsocc-coherence", tsocc_coherence::CRATE_VERSION),
        ("tsocc-mesi", tsocc_mesi::CRATE_VERSION),
        ("tsocc-mesi-coarse", tsocc_mesi_coarse::CRATE_VERSION),
        ("tsocc-proto", tsocc_proto::CRATE_VERSION),
        ("tsocc-protocols", tsocc_protocols::CRATE_VERSION),
        ("tsocc-workloads", tsocc_workloads::CRATE_VERSION),
        ("tsocc-faults", tsocc_faults::CRATE_VERSION),
        ("tsocc-conform", tsocc_conform::CRATE_VERSION),
        ("tsocc-check", tsocc_check::CRATE_VERSION),
    ]
}

/// The fingerprint as 16 lowercase hex digits.
///
/// Debug and release builds fingerprint differently: the simulator's
/// metrics are profile-independent by contract, but debug trees are
/// where unreleased changes live, so they must never poison a release
/// cache (or vice versa).
pub fn code_fingerprint() -> String {
    let mut h = Fnv::new();
    h.eat_str("tsocc-orch-fingerprint/v1");
    h.eat_u64(SIM_EPOCH);
    h.eat_str(if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    });
    for (name, version) in versioned_crates() {
        h.eat_str(name);
        h.eat_str(version);
    }
    format!("{:016x}", h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(code_fingerprint(), code_fingerprint());
        assert_eq!(code_fingerprint().len(), 16);
    }

    #[test]
    fn fingerprint_covers_every_simulation_crate() {
        // The workspace pins one shared version; every entry must
        // resolve to it (a drifted entry would mean a crate left the
        // workspace version without the fingerprint noticing).
        let versions = versioned_crates();
        assert_eq!(versions.len(), 15);
        for (name, version) in &versions {
            assert_eq!(*version, tsocc::CRATE_VERSION, "{name} version drifted");
        }
    }
}
