//! The orchestrator's unit of work and its canonical identity.
//!
//! A [`JobSpec`] is everything needed to (re)compute one result:
//! a sweep point, one deterministic conformance-campaign chunk, or one
//! model-check family. [`JobSpec::canonical`] renders that identity as
//! a stable string — the content the result cache addresses by — and
//! [`JobSpec::run`] computes the result. The contract between the two:
//! **two specs with equal canonical strings produce byte-identical
//! simulated metrics** (under one code fingerprint), and any field
//! change that could move a simulated metric changes the canonical
//! string.
//!
//! The one deliberate exclusion is [`tsocc::Stepper`]: every stepper is
//! proven bit-identical in all simulated outcomes (the stepper-parity
//! test suites diff them across the full sweep matrix), so the run
//! loop is an execution detail, not part of a result's identity — a
//! sweep computed under the sharded stepper is served to an
//! event-driven query and vice versa.

use std::time::{Duration, Instant};

use tsocc::SystemConfig;
use tsocc_bench::sweep::SweepPoint;
use tsocc_check::{check_model, pool_for_lines, CheckOpts};
use tsocc_coherence::FaultPlan;
use tsocc_conform::{run_campaign, CampaignOpts};
use tsocc_protocols::Protocol;
use tsocc_workloads::tso_model::generate_two_thread_programs;

/// One schedulable unit of campaign work.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// One point of a sweep matrix.
    Sweep {
        /// The configuration point.
        point: SweepPoint,
        /// The sweep's base seed (the point derives its own from it).
        base_seed: u64,
    },
    /// One deterministic conformance-campaign chunk: a fixed program
    /// count (`min_programs == max_programs`, zero budget) so the
    /// result is independent of wall clock and worker count.
    Conform {
        /// Display label (`conform/<leg>/chunk<i>`).
        label: String,
        /// The full campaign parameter set.
        opts: CampaignOpts,
    },
    /// One exhaustive model-check family: every two-thread program of
    /// `ops` operations per thread, checked to exhaustion on one
    /// protocol.
    Check {
        /// Protocol under check.
        protocol: Protocol,
        /// Core count (threads beyond the program's two stay idle).
        cores: usize,
        /// Address-pool cache lines (1 or 2).
        lines: usize,
        /// Ops per thread in the systematic family.
        ops: usize,
    },
}

/// What running a job produced.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Simulated metrics in the job kind's fixed order.
    pub metrics: Vec<(String, u64)>,
    /// Kind-specific serialized payload (the sweep row JSON), or empty.
    pub payload: String,
    /// Compute wall-clock time.
    pub wall: Duration,
    /// Whether the result is clean (no violations, complete). Only
    /// clean results are cached: a violating campaign run is always
    /// recomputed so its full diagnostics (shrunk reproducers, litmus
    /// text) are regenerated rather than summarized from a cache line.
    pub clean: bool,
}

/// Renders the parts of a [`SystemConfig`] that determine simulated
/// metrics as one stable line — the machine half of a sweep job's
/// canonical identity.
///
/// Geometry is *resolved* before rendering (`mesh: None` and an
/// explicit equal `Some((rows, cols))` canonicalize identically), and
/// the field order is fixed here, independent of builder call order.
/// `stepper` is deliberately absent; see the module docs.
pub fn canonical_config(cfg: &SystemConfig) -> String {
    let shape = cfg.shape();
    format!(
        "protocol={};n_cores={};n_mem={};mesh={}x{};l2_banks={};core={:?};l1={:?};l2={:?};\
         l2_latency={};mem_latency={};noc={:?};seed={};faults={:?}",
        cfg.protocol.protocol_name(),
        cfg.n_cores,
        cfg.n_mem,
        shape.mesh.rows(),
        shape.mesh.cols(),
        cfg.l2_banks,
        cfg.core,
        cfg.l1_params,
        cfg.l2_params,
        cfg.l2_latency,
        cfg.mem_latency,
        cfg.noc,
        cfg.seed,
        cfg.faults,
    )
}

fn canonical_campaign(opts: &CampaignOpts) -> String {
    // Every field of `CampaignOpts` except `workers`: the worker count
    // is host parallelism, and the campaign engine derives all
    // randomness from per-program seeds, so it cannot move a metric of
    // the deterministic (zero-budget, fixed-count) chunks the
    // orchestrator schedules. Budgeted campaigns are wall-clock-shaped;
    // their budget is part of the key, and a cached record represents
    // one valid execution of that spec.
    let protocols: Vec<String> = opts.protocols.iter().map(Protocol::name).collect();
    format!(
        "seed={};budget_ms={};min_programs={};max_programs={};iters={};protocols={};\
         gen={:?};oracle={:?};max_states={};jitter={};shrink_iters={};max_violations={};\
         faults={:?}",
        opts.seed,
        opts.budget.as_millis(),
        opts.min_programs,
        opts.max_programs,
        opts.iters_per_program,
        protocols.join(","),
        opts.gen,
        opts.oracle,
        opts.max_states,
        opts.jitter,
        opts.shrink_iters,
        opts.max_violations,
        opts.faults,
    )
}

impl JobSpec {
    /// The job kind tag (the cache record's `kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Sweep { .. } => "sweep",
            JobSpec::Conform { .. } => "conform",
            JobSpec::Check { .. } => "check",
        }
    }

    /// Human-readable job label for reports and progress lines.
    pub fn label(&self) -> String {
        match self {
            JobSpec::Sweep { point, .. } => format!(
                "sweep/{}/{}/{}c",
                point.bench.name(),
                point.protocol.name(),
                point.n_cores
            ),
            JobSpec::Conform { label, .. } => label.clone(),
            JobSpec::Check {
                protocol,
                cores,
                lines,
                ops,
            } => format!("check/{}/{}c{}l{}o", protocol.name(), cores, lines, ops),
        }
    }

    /// The job's canonical identity: the exact content string the
    /// result cache addresses by. See the module docs for the
    /// equality/sensitivity contract.
    pub fn canonical(&self) -> String {
        match self {
            JobSpec::Sweep { point, base_seed } => {
                // The resolved machine (with the point's derived seed
                // installed) plus the workload identity. The base seed
                // is not keyed directly — only through the derived
                // per-point seed, which is what the simulator consumes.
                format!(
                    "kind=sweep;bench={};scale={:?};{}",
                    point.bench.name(),
                    point.scale,
                    canonical_config(&point.system_config(*base_seed)),
                )
            }
            JobSpec::Conform { opts, .. } => {
                format!("kind=conform;{}", canonical_campaign(opts))
            }
            JobSpec::Check {
                protocol,
                cores,
                lines,
                ops,
            } => {
                let o = CheckOpts::default();
                format!(
                    "kind=check;protocol={};cores={};lines={};ops={};max_schedules={};\
                     max_steps={};oracle_max_states={}",
                    protocol.name(),
                    cores,
                    lines,
                    ops,
                    o.max_schedules,
                    o.max_steps,
                    o.oracle_max_states,
                )
            }
        }
    }

    /// Computes the job.
    pub fn run(&self) -> JobOutcome {
        match self {
            JobSpec::Sweep { point, base_seed } => {
                let r = point.run(*base_seed);
                JobOutcome {
                    metrics: vec![
                        ("seed".to_string(), r.seed),
                        ("cycles".to_string(), r.stats.cycles),
                        ("instructions".to_string(), r.stats.instructions),
                        ("msgs".to_string(), r.stats.noc.total_messages()),
                        ("flits".to_string(), r.stats.total_flits()),
                        ("flit_hops".to_string(), r.stats.noc.flit_hops.get()),
                        ("mem_fp".to_string(), r.mem_fp),
                    ],
                    payload: r.to_json(),
                    wall: r.wall,
                    clean: true,
                }
            }
            JobSpec::Conform { opts, .. } => {
                let t = Instant::now();
                let report = run_campaign(opts);
                JobOutcome {
                    metrics: vec![
                        (
                            "programs_checked".to_string(),
                            report.programs_checked as u64,
                        ),
                        (
                            "programs_skipped".to_string(),
                            report.programs_skipped as u64,
                        ),
                        ("sim_runs".to_string(), report.sim_runs),
                        ("states_total".to_string(), report.states_total),
                        ("max_state_space".to_string(), report.max_state_space as u64),
                        (
                            "allowed_outcomes_total".to_string(),
                            report.allowed_outcomes_total,
                        ),
                        (
                            "observed_outcomes_total".to_string(),
                            report.observed_outcomes_total,
                        ),
                        ("violations_total".to_string(), report.violations_total),
                    ],
                    payload: String::new(),
                    wall: t.elapsed(),
                    clean: report.violations_total == 0,
                }
            }
            JobSpec::Check {
                protocol,
                cores,
                lines,
                ops,
            } => {
                let t = Instant::now();
                let opts = CheckOpts::default();
                let pool = pool_for_lines(*lines);
                let family = generate_two_thread_programs(*ops);
                let mut schedules = 0u64;
                let mut transitions = 0u64;
                let mut sleep_blocked = 0u64;
                let mut violations = 0u64;
                let mut complete = true;
                for program in &family {
                    let mut program = program.clone();
                    while program.len() < *cores {
                        program.push(Vec::new());
                    }
                    let report = check_model(protocol, FaultPlan::none(), &program, &pool, &opts)
                        .expect("oracle state space fits the default bound");
                    schedules += report.schedules;
                    transitions += report.transitions;
                    sleep_blocked += report.sleep_blocked;
                    violations += report.violations.len() as u64;
                    complete &= report.complete;
                }
                JobOutcome {
                    metrics: vec![
                        ("programs".to_string(), family.len() as u64),
                        ("schedules".to_string(), schedules),
                        ("transitions".to_string(), transitions),
                        ("sleep_blocked".to_string(), sleep_blocked),
                        ("violations_total".to_string(), violations),
                        ("complete".to_string(), complete as u64),
                    ],
                    payload: String::new(),
                    wall: t.elapsed(),
                    clean: violations == 0 && complete,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_bench::sweep::SweepPoint;
    use tsocc_workloads::{Benchmark, Scale};

    fn point() -> SweepPoint {
        SweepPoint {
            bench: Benchmark::Fft,
            protocol: Protocol::Mesi,
            n_cores: 4,
            scale: Scale::Tiny,
        }
    }

    #[test]
    fn sweep_canonical_excludes_the_stepper_and_pins_the_seed() {
        let job = JobSpec::Sweep {
            point: point(),
            base_seed: 7,
        };
        let canon = job.canonical();
        // No stepper key and no stepper variant: every stepper produces
        // bit-identical results, so the choice must not split the cache.
        // (`faults=FaultPlan { .. stepper: None }` names an injection
        // *site* and is fine — fault plans DO change simulated metrics.)
        assert!(!canon.contains(";stepper="), "{canon}");
        for variant in ["EventDriven", "Reference", "ParallelShards"] {
            assert!(!canon.contains(variant), "{canon}");
        }
        assert!(
            canon.contains(&format!("seed={}", point().seed(7))),
            "{canon}"
        );
        // A different base seed changes the derived seed, hence the key.
        let other = JobSpec::Sweep {
            point: point(),
            base_seed: 8,
        };
        assert_ne!(canon, other.canonical());
    }

    #[test]
    fn sweep_run_metrics_match_the_payload_row() {
        let job = JobSpec::Sweep {
            point: point(),
            base_seed: 7,
        };
        let out = job.run();
        assert!(out.clean);
        let row = tsocc_bench::json::parse(&out.payload).unwrap();
        for (name, value) in &out.metrics {
            assert_eq!(
                row.get(name).and_then(|v| v.as_u64()),
                Some(*value),
                "metric {name} diverges from the payload row"
            );
        }
    }

    #[test]
    fn check_job_runs_clean_on_mesi() {
        let job = JobSpec::Check {
            protocol: Protocol::Mesi,
            cores: 2,
            lines: 1,
            ops: 1,
        };
        let out = job.run();
        assert!(out.clean);
        let get = |name: &str| {
            out.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(get("programs") > 0);
        assert!(get("schedules") > 0);
        assert_eq!(get("violations_total"), 0);
        assert_eq!(get("complete"), 1);
    }
}
