//! The declarative campaign manifest (`tsocc-campaign-manifest/v1`) and
//! its expansion into jobs.
//!
//! A manifest is a JSON document listing **legs**; each leg expands to
//! one or more [`JobSpec`]s with fully deterministic per-job seeds
//! (derived from the manifest seed and the job's position, never from
//! scheduling). The shape follows the config-matrix-as-manifest idiom:
//! the matrix lives in data, the expansion rules live here, and the
//! executor treats every job identically.
//!
//! ```json
//! {
//!   "schema": "tsocc-campaign-manifest/v1",
//!   "seed": 7,
//!   "legs": [
//!     {"kind": "sweep", "bench": "fft", "scale": "tiny",
//!      "cores": [2, 4], "protocols": ["MESI", "TSO-CC-4-basic"]},
//!     {"kind": "conform", "protocols": ["MESI", "TSO-CC-4-12-3"],
//!      "threads": 3, "programs": 40, "chunk": 20, "iters": 2},
//!     {"kind": "check", "protocols": ["MESI"], "cores": 2,
//!      "lines": 1, "ops": 2}
//!   ]
//! }
//! ```
//!
//! Leg kinds:
//!
//! - **sweep** — one job per `cores × protocols` point of `bench` at
//!   `scale`. `protocols` defaults to the full sweep set, `bench` to
//!   fft, `scale` to small, `cores` to `[2, 4]`.
//! - **conform** — `programs` conformance programs split into
//!   `chunk`-sized jobs. Each chunk is a zero-budget, fixed-count
//!   campaign (`min_programs == max_programs == chunk`) under its own
//!   derived seed, so a chunk's result is independent of wall clock and
//!   worker count — the property that makes it cacheable.
//! - **check** — one exhaustive model-check family per protocol
//!   (every two-thread program of `ops` ops per thread over a
//!   `lines`-line pool).

use std::time::Duration;

use tsocc_bench::json::{self, Value};
use tsocc_bench::sweep::SweepPoint;
use tsocc_conform::{CampaignOpts, GenConfig};
use tsocc_protocols::Protocol;
use tsocc_sim::rng::SplitMix64;
use tsocc_workloads::{Benchmark, Scale};

use crate::hash::Fnv;
use crate::jobs::JobSpec;

/// The manifest compiled into its schedulable jobs.
#[derive(Debug)]
pub struct Manifest {
    /// Base seed every leg derives its job seeds from.
    pub seed: u64,
    /// The expanded job list, in leg order.
    pub jobs: Vec<JobSpec>,
}

/// The built-in manifest `orchestrate campaign` runs when no
/// `--manifest` is given: a small three-leg smoke matrix exercising
/// every leg kind.
pub const DEFAULT_MANIFEST: &str = r#"{
  "schema": "tsocc-campaign-manifest/v1",
  "seed": 7,
  "legs": [
    {"kind": "sweep", "bench": "fft", "scale": "tiny", "cores": [2, 4]},
    {"kind": "conform", "protocols": ["MESI", "TSO-CC-4-12-3"],
     "threads": 3, "programs": 40, "chunk": 20, "iters": 2},
    {"kind": "check", "protocols": ["MESI", "MESI-P2-G2", "TSO-CC-4-basic"],
     "cores": 2, "lines": 1, "ops": 2}
  ]
}"#;

/// Derives the seed of chunk `chunk` of leg `leg`: a hash of the
/// manifest seed and the job's *position*, so inserting a leg shifts
/// later legs' seeds but scheduling never does.
fn derive_seed(base: u64, leg: u64, chunk: u64) -> u64 {
    let mut h = Fnv::new();
    h.eat_u64(base);
    h.eat_u64(leg);
    h.eat_u64(chunk);
    SplitMix64::new(h.finish()).next_u64()
}

fn parse_protocols(leg: &Value, default: Vec<Protocol>) -> Result<Vec<Protocol>, String> {
    let Some(list) = leg.get("protocols") else {
        return Ok(default);
    };
    let items = list
        .as_arr()
        .ok_or_else(|| "\"protocols\" must be an array of names".to_string())?;
    items
        .iter()
        .map(|v| {
            let name = v
                .as_str()
                .ok_or_else(|| "\"protocols\" entries must be strings".to_string())?;
            Protocol::from_name(name).ok_or_else(|| format!("unknown protocol {name:?}"))
        })
        .collect()
}

fn parse_usize(leg: &Value, name: &str, default: usize) -> Result<usize, String> {
    match leg.get(name) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| format!("{name:?} must be an unsigned integer")),
    }
}

/// Parses a `tsocc-campaign-manifest/v1` document and expands its legs.
///
/// # Errors
///
/// A description of the first malformed field (bad JSON, wrong schema,
/// unknown leg kind / protocol / benchmark / scale).
pub fn parse_manifest(src: &str) -> Result<Manifest, String> {
    let doc = json::parse(src)?;
    match doc.get("schema").and_then(Value::as_str) {
        Some("tsocc-campaign-manifest/v1") => {}
        other => return Err(format!("manifest schema is {other:?}")),
    }
    let seed = match doc.get("seed") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| "\"seed\" must be an unsigned integer".to_string())?,
    };
    let legs = doc
        .get("legs")
        .and_then(Value::as_arr)
        .ok_or_else(|| "manifest needs a \"legs\" array".to_string())?;

    let mut jobs = Vec::new();
    for (leg_idx, leg) in legs.iter().enumerate() {
        match leg.get("kind").and_then(Value::as_str) {
            Some("sweep") => {
                let bench_name = leg.get("bench").and_then(Value::as_str).unwrap_or("fft");
                let bench = Benchmark::ALL
                    .into_iter()
                    .find(|b| b.name() == bench_name)
                    .ok_or_else(|| format!("unknown benchmark {bench_name:?}"))?;
                let scale = match leg.get("scale").and_then(Value::as_str).unwrap_or("small") {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale {other:?}")),
                };
                let cores: Vec<usize> = match leg.get("cores") {
                    None => vec![2, 4],
                    Some(v) => v
                        .as_arr()
                        .ok_or_else(|| "\"cores\" must be an array".to_string())?
                        .iter()
                        .map(|n| {
                            n.as_u64()
                                .map(|n| n as usize)
                                .ok_or_else(|| "\"cores\" entries must be integers".to_string())
                        })
                        .collect::<Result<_, _>>()?,
                };
                let protocols = parse_protocols(leg, Protocol::sweep_configs())?;
                for &n_cores in &cores {
                    for &protocol in &protocols {
                        jobs.push(JobSpec::Sweep {
                            point: SweepPoint {
                                bench,
                                protocol,
                                n_cores,
                                scale,
                            },
                            base_seed: seed,
                        });
                    }
                }
            }
            Some("conform") => {
                let protocols = parse_protocols(leg, CampaignOpts::default().protocols)?;
                let threads = parse_usize(leg, "threads", GenConfig::default().threads)?;
                let programs = parse_usize(leg, "programs", 40)?;
                let chunk = parse_usize(leg, "chunk", 20)?.max(1);
                let iters = parse_usize(leg, "iters", 2)? as u64;
                let chunks = programs.div_ceil(chunk);
                for chunk_idx in 0..chunks {
                    let count = chunk.min(programs - chunk_idx * chunk);
                    jobs.push(JobSpec::Conform {
                        label: format!("conform/leg{leg_idx}/chunk{chunk_idx}"),
                        opts: CampaignOpts {
                            seed: derive_seed(seed, leg_idx as u64, chunk_idx as u64),
                            workers: 1,
                            budget: Duration::ZERO,
                            min_programs: count,
                            max_programs: count,
                            iters_per_program: iters,
                            protocols: protocols.clone(),
                            gen: GenConfig {
                                threads,
                                ..GenConfig::default()
                            },
                            ..CampaignOpts::default()
                        },
                    });
                }
            }
            Some("check") => {
                let protocols = parse_protocols(leg, Protocol::sweep_configs())?;
                let cores = parse_usize(leg, "cores", 2)?.max(2);
                let lines = parse_usize(leg, "lines", 1)?;
                let ops = parse_usize(leg, "ops", 2)?;
                for protocol in protocols {
                    jobs.push(JobSpec::Check {
                        protocol,
                        cores,
                        lines,
                        ops,
                    });
                }
            }
            other => return Err(format!("leg {leg_idx} has unknown kind {other:?}")),
        }
    }
    Ok(Manifest { seed, jobs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_manifest_expands_to_every_leg_kind() {
        let m = parse_manifest(DEFAULT_MANIFEST).unwrap();
        assert_eq!(m.seed, 7);
        let sweeps = m.jobs.iter().filter(|j| j.kind() == "sweep").count();
        let conforms = m.jobs.iter().filter(|j| j.kind() == "conform").count();
        let checks = m.jobs.iter().filter(|j| j.kind() == "check").count();
        // 2 core counts × the 9 sweep configs; 40 programs / 20-chunks;
        // 3 check protocols.
        assert_eq!(sweeps, 2 * Protocol::sweep_configs().len());
        assert_eq!(conforms, 2);
        assert_eq!(checks, 3);
    }

    #[test]
    fn conform_chunks_get_distinct_deterministic_seeds() {
        let m = parse_manifest(DEFAULT_MANIFEST).unwrap();
        let seeds: Vec<u64> = m
            .jobs
            .iter()
            .filter_map(|j| match j {
                JobSpec::Conform { opts, .. } => Some(opts.seed),
                _ => None,
            })
            .collect();
        assert_eq!(seeds.len(), 2);
        assert_ne!(seeds[0], seeds[1]);
        let again = parse_manifest(DEFAULT_MANIFEST).unwrap();
        let replay: Vec<u64> = again
            .jobs
            .iter()
            .filter_map(|j| match j {
                JobSpec::Conform { opts, .. } => Some(opts.seed),
                _ => None,
            })
            .collect();
        assert_eq!(seeds, replay);
        // Chunk campaigns must be deterministic: fixed count, no budget.
        for job in &m.jobs {
            if let JobSpec::Conform { opts, .. } = job {
                assert_eq!(opts.budget, Duration::ZERO);
                assert_eq!(opts.min_programs, opts.max_programs);
                assert_eq!(opts.workers, 1);
            }
        }
    }

    #[test]
    fn malformed_manifests_are_rejected_with_context() {
        for (src, needle) in [
            ("{}", "schema"),
            (r#"{"schema": "tsocc-campaign-manifest/v1"}"#, "legs"),
            (
                r#"{"schema": "tsocc-campaign-manifest/v1",
                    "legs": [{"kind": "dance"}]}"#,
                "kind",
            ),
            (
                r#"{"schema": "tsocc-campaign-manifest/v1",
                    "legs": [{"kind": "check", "protocols": ["NOPE"]}]}"#,
                "NOPE",
            ),
        ] {
            let err = parse_manifest(src).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }
}
