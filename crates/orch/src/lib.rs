//! Campaign orchestrator: a content-addressed result cache and a
//! work-stealing job executor over the simulator's sweep, conformance,
//! and model-checking campaigns.
//!
//! Most campaign work between two commits is *unchanged* work: the same
//! sweep point under the same machine description produces the same
//! simulated metrics, yet the one-shot binaries recompute all of it.
//! This crate treats a simulation result as a persistent, cheaply
//! re-servable artifact instead:
//!
//! - [`jobs::JobSpec`] pins a unit of work's **canonical identity** —
//!   the resolved machine description, workload, scale, and derived
//!   seed, rendered as a stable string.
//! - [`cache::ResultCache`] stores one immutable JSON record per
//!   result, addressed by a 128-bit hash of that identity plus the
//!   [`fingerprint::code_fingerprint`] of every simulated-metric-
//!   affecting crate. Changed code misses; unchanged jobs are served
//!   (after byte-level validation) without re-simulating.
//! - [`executor::execute`] fans a job list out over scoped worker
//!   threads with work stealing: an idle worker refills from a shared
//!   injector deque and, when that runs dry, steals from the back of a
//!   sibling's queue, so one long 128-core point cannot strand the
//!   queue behind it. Results are keyed by job index and all seeds by
//!   job identity, so any worker count produces identical rows.
//! - [`manifest`] expands a declarative `tsocc-campaign-manifest/v1`
//!   document (sweep points, conformance program chunks, model-check
//!   families) into jobs.
//!
//! The `orchestrate` binary fronts all of it with `sweep`, `campaign`
//! and `status` subcommands; `conform_campaign`, `fault_campaign` and
//! `model_check` live in this crate too, so their `--cache-dir` flag
//! can route through the same store.

pub mod cache;
pub mod executor;
pub mod fingerprint;
pub mod hash;
pub mod jobs;
pub mod manifest;

pub use cache::{cache_key, BinCache, CacheRecord, CacheStats, ResultCache};
pub use executor::{execute, ExecReport, JobRow};
pub use fingerprint::code_fingerprint;
pub use jobs::{canonical_config, JobOutcome, JobSpec};
pub use manifest::{parse_manifest, Manifest, DEFAULT_MANIFEST};

/// This crate's compiled version (not part of the code fingerprint:
/// the orchestrator schedules and serializes results, it cannot change
/// them).
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");
