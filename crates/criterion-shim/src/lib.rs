#![warn(missing_docs)]

//! A minimal, dependency-free stand-in for [criterion.rs] so `cargo
//! bench` works offline.
//!
//! Only the API subset used by the `tsocc-bench` benches is provided:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Measurement is deliberately simple — a short warm-up, then a
//! fixed number of timed samples — and reports the per-iteration median
//! and min/max to stdout. For statistically rigorous numbers, point the
//! `criterion` dependency of `tsocc-bench` back at the registry crate;
//! no bench source changes are needed.
//!
//! [criterion.rs]: https://github.com/bheisler/criterion.rs

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Samples collected per benchmark (each sample times one batch).
const SAMPLES: usize = 11;
/// Target wall-clock budget per benchmark; batch sizes adapt to it.
const TARGET: Duration = Duration::from_millis(300);

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Drives the iteration loop of one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, calling it repeatedly: a calibration pass picks a
    /// batch size aiming at `TARGET` total, then `SAMPLES` batches
    /// are timed.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: time one call to size the batches.
        let t0 = Instant::now();
        std_black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = TARGET / (SAMPLES as u32);
        self.iters_per_sample =
            (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        self.samples.clear();
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std_black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];
        println!(
            "{name:<48} time: [{} {} {}]  ({} iters x {} samples)",
            fmt_ns(lo),
            fmt_ns(median),
            fmt_ns(hi),
            self.iters_per_sample,
            per_iter.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut b);
        b.report(&full);
        self
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// The top-level benchmark driver (criterion's `Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let name = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut b);
        b.report(&name);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { name, _c: self }
    }
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `main`, running every group, mirroring criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert_eq!(b.samples.len(), SAMPLES);
        assert!(b.iters_per_sample >= 1);
    }

    #[test]
    fn group_runs_functions() {
        let mut c = Criterion::default();
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| {
            b.iter(|| black_box(2 + 2));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
