#![warn(missing_docs)]

//! A minimal, dependency-free stand-in for [proptest] so the
//! property-based tests run offline.
//!
//! Implements the subset of the proptest 1.x API used in this
//! repository: the [`proptest!`] macro (with `proptest_config`),
//! [`Strategy`] for integer ranges / tuples / [`any`], `prop_map`,
//! [`prop_oneof!`], [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! - inputs are sampled from a deterministic per-test PRNG (seeded from
//!   the test name and case index), so failures reproduce exactly on
//!   every machine without a persistence file;
//! - there is **no shrinking**: a failing case reports the panic from
//!   the raw sampled input;
//! - `prop_assert*` panic immediately instead of returning `Err`.
//!
//! [proptest]: https://github.com/proptest-rs/proptest

use std::ops::Range;

/// Runner configuration (`ProptestConfig::with_cases(n)`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// An explicit property failure (`return Err(TestCaseError::fail(..))`
/// inside a property body).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic test-case PRNG (SplitMix64 over a name/case hash).
pub struct TestRng(u64);

impl TestRng {
    /// The generator for one (property, case-index) pair.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h ^ ((case as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($s:ident $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A 0);
tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);

/// Types with a canonical full-domain strategy (proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// The strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$(Box::new($strategy) as _),+])
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(pat in strategy, ...) {}`
/// becomes a `#[test]` that samples its inputs for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut __rng);)*
                    // Bodies may `return Err(TestCaseError::fail(..))`,
                    // proptest-style; run them in a fallible closure.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = __outcome {
                        panic!("property {} failed on case {}: {e}", stringify!($name), __case);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = collection::vec((0u8..5, any::<u32>()), 1..9);
        let a = Strategy::sample(&s, &mut TestRng::for_case("d", 7));
        let b = Strategy::sample(&s, &mut TestRng::for_case("d", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(x in 1u64..100, pair in (0usize..4, any::<bool>())) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(pair.0 < 4);
        }

        #[test]
        fn oneof_and_map_compose(v in collection::vec(prop_oneof![
            (0u64..8).prop_map(|x| x * 2),
            (0u64..8).prop_map(|x| x * 2 + 1),
        ], 1..20)) {
            prop_assert!(v.iter().all(|&x| x < 16u64));
        }
    }
}
