#![warn(missing_docs)]

//! MESI with a **limited-pointer / coarse-sharing-vector directory** —
//! the classic storage-reduced directory baseline (Dir_i_B / coarse
//! vector in the literature) that full-map directories like the paper's
//! MESI are traditionally compared against, and a natural third point
//! between MESI's exact full vector and TSO-CC's no-vector design.
//!
//! The protocol *is* MESI: this crate reuses `tsocc-mesi`'s L1 policy
//! verbatim (private caches cannot observe the directory encoding) and
//! its generic L2 policy, instantiated with a [`PtrVector`] sharer set
//! instead of the full bit vector:
//!
//! - up to [`MesiCoarseConfig::pointers`] sharers are tracked exactly
//!   (one core-id pointer each);
//! - when a line gains more sharers than there are pointers, the set
//!   falls back to a **coarse vector** with one bit per group of
//!   [`MesiCoarseConfig::granularity`] consecutive cores. Invalidations
//!   then fan out to every core of every marked group — conservative
//!   but correct (MESI L1s ack invalidations for absent lines blindly,
//!   exactly as they do for stale full-vector bits after silent
//!   evictions).
//!
//! With `pointers >=` the number of cores the fallback never triggers
//! and the protocol is **cycle-for-cycle identical** to full-vector
//! MESI (asserted by `tests/chassis_parity.rs`); with few pointers and
//! coarse groups it trades storage for extra invalidation traffic —
//! the axis the paper's storage argument (§2, Figure 2) is about.

use tsocc_coherence::{L1Controller, L2Controller, MachineShape, ProtocolFactory};
use tsocc_mesi::{check_sharer_capacity, MesiFactory, MesiL2Config, SharerSet};

/// Upper bound on exact sharer pointers per line (the encoding budget:
/// eight 16-bit pointers fit the 128-bit word a full vector would use).
pub const MAX_POINTERS: u32 = 8;

/// Configuration of the limited-pointer / coarse-vector directory.
///
/// # Examples
///
/// ```
/// use tsocc_mesi_coarse::MesiCoarseConfig;
///
/// let cfg = MesiCoarseConfig::new(4, 4);
/// assert_eq!(cfg.name(), "MESI-P4-G4");
/// assert_eq!(MesiCoarseConfig::default().name(), "MESI-P4-G4");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MesiCoarseConfig {
    /// Exact sharer pointers per line (1..=[`MAX_POINTERS`]).
    pub pointers: u32,
    /// Cores per coarse-vector bit after pointer overflow (>= 1).
    pub granularity: u32,
}

impl Default for MesiCoarseConfig {
    /// Four pointers with four-core groups: the common Dir_4_CV point.
    fn default() -> Self {
        MesiCoarseConfig::new(4, 4)
    }
}

impl MesiCoarseConfig {
    /// A configuration with `pointers` exact pointers and
    /// `granularity`-core coarse groups (both clamped to valid ranges).
    pub fn new(pointers: u32, granularity: u32) -> Self {
        MesiCoarseConfig {
            pointers: pointers.clamp(1, MAX_POINTERS),
            granularity: granularity.max(1),
        }
    }

    /// The configuration's display name, `MESI-P<pointers>-G<granularity>`.
    pub fn name(&self) -> String {
        format!("MESI-P{}-G{}", self.pointers, self.granularity)
    }

    /// The pointer budget, defended against clamp-bypassing struct
    /// literals (the fields are public).
    fn pointer_budget(&self) -> u32 {
        self.pointers.clamp(1, MAX_POINTERS)
    }

    /// The coarse group a core belongs to (a literal-built
    /// `granularity: 0` degrades to one core per group, not a panic).
    fn group_of(&self, core: usize) -> usize {
        core / self.granularity.max(1) as usize
    }
}

/// A limited-pointer sharer set with coarse-vector overflow.
///
/// `Exact` tracks up to [`MesiCoarseConfig::pointers`] sharers by core
/// id; `Coarse` is one bit per [`MesiCoarseConfig::granularity`]-core
/// group (so up to 128 groups). Once coarse, a set stays coarse until
/// the directory rebuilds it (GetX or eviction empties it; a downgrade
/// reseeds it with two exact pointers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PtrVector {
    /// Up to `pointers` exact sharer ids.
    Exact {
        /// The pointer slots; only the first `n` are meaningful.
        ptrs: [u16; MAX_POINTERS as usize],
        /// Number of valid pointers.
        n: u8,
    },
    /// Coarse fallback: one bit per core group.
    Coarse(u128),
}

impl SharerSet for PtrVector {
    type Cfg = MesiCoarseConfig;

    fn empty(_: &MesiCoarseConfig) -> Self {
        PtrVector::Exact {
            ptrs: [0; MAX_POINTERS as usize],
            n: 0,
        }
    }

    fn add(&mut self, cfg: &MesiCoarseConfig, core: usize) -> bool {
        match self {
            PtrVector::Exact { ptrs, n } => {
                let held = ptrs[..*n as usize].contains(&(core as u16));
                if held {
                    return false;
                }
                if (*n as u32) < cfg.pointer_budget() {
                    ptrs[*n as usize] = core as u16;
                    *n += 1;
                    return false;
                }
                // Pointer overflow: collapse to the coarse group vector.
                let mut bits = 1u128 << cfg.group_of(core);
                for &p in &ptrs[..*n as usize] {
                    bits |= 1u128 << cfg.group_of(p as usize);
                }
                *self = PtrVector::Coarse(bits);
                true
            }
            PtrVector::Coarse(bits) => {
                *bits |= 1u128 << cfg.group_of(core);
                false
            }
        }
    }

    fn holds(&self, cfg: &MesiCoarseConfig, core: usize) -> Option<bool> {
        match self {
            PtrVector::Exact { ptrs, n } => Some(ptrs[..*n as usize].contains(&(core as u16))),
            PtrVector::Coarse(bits) => {
                if bits & (1u128 << cfg.group_of(core)) == 0 {
                    Some(false)
                } else {
                    None // group bit set: membership unknown
                }
            }
        }
    }

    fn may_hold(&self, cfg: &MesiCoarseConfig, core: usize) -> bool {
        match self {
            PtrVector::Exact { ptrs, n } => ptrs[..*n as usize].contains(&(core as u16)),
            PtrVector::Coarse(bits) => bits & (1u128 << cfg.group_of(core)) != 0,
        }
    }

    fn capacity(cfg: &MesiCoarseConfig) -> Option<usize> {
        // The coarse fallback has one group bit per `granularity`
        // consecutive cores in a u128; exact pointers store u16 ids.
        let coarse = (u128::BITS as usize).saturating_mul(cfg.granularity.max(1) as usize);
        Some(coarse.min(u16::MAX as usize + 1))
    }
}

/// Builds MESI-coarse L1/L2 controllers for any machine shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MesiCoarseFactory {
    /// Directory parameters (pointer budget, group granularity).
    pub cfg: MesiCoarseConfig,
}

impl MesiCoarseFactory {
    /// A factory for one directory configuration.
    pub fn new(cfg: MesiCoarseConfig) -> Self {
        MesiCoarseFactory { cfg }
    }
}

impl ProtocolFactory for MesiCoarseFactory {
    fn protocol_name(&self) -> String {
        self.cfg.name()
    }

    fn l1(&self, core: usize, shape: &MachineShape) -> Box<dyn L1Controller> {
        // The L1 side of MESI is oblivious to the directory encoding:
        // delegate so the two MESI variants can never drift apart.
        MesiFactory.l1(core, shape)
    }

    fn l2(&self, tile: usize, shape: &MachineShape) -> Box<dyn L2Controller> {
        let mut ctl = MesiL2Config {
            tile,
            n_cores: shape.n_cores,
            n_mem: shape.n_mem,
            params: shape.l2_params,
            latency: shape.l2_latency,
        }
        .build_with::<PtrVector>(self.cfg);
        ctl.chassis.faults = tsocc_coherence::FaultState::for_l2(&shape.faults, tile);
        Box::new(ctl)
    }

    fn validate_shape(&self, shape: &MachineShape) -> Result<(), String> {
        shape.validate()?;
        check_sharer_capacity::<PtrVector>(&self.cfg, shape.n_cores, &self.cfg.name())
    }
}

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_coherence::MeshTopology;
    use tsocc_mem::CacheParams;

    fn cfg(pointers: u32, granularity: u32) -> MesiCoarseConfig {
        MesiCoarseConfig::new(pointers, granularity)
    }

    #[test]
    fn config_names_and_clamping() {
        assert_eq!(cfg(4, 4).name(), "MESI-P4-G4");
        assert_eq!(cfg(0, 0).pointers, 1);
        assert_eq!(cfg(0, 0).granularity, 1);
        assert_eq!(cfg(99, 1).pointers, MAX_POINTERS);
    }

    #[test]
    fn literal_configs_bypassing_new_are_defended_at_use_sites() {
        // Public fields allow struct literals that skip new()'s clamp;
        // add() and group_of() must stay in bounds anyway.
        let c = MesiCoarseConfig {
            pointers: 16,
            granularity: 0,
        };
        let mut s = PtrVector::empty(&c);
        for core in 0..12 {
            s.add(&c, core); // must overflow at MAX_POINTERS, not panic
        }
        assert!(matches!(s, PtrVector::Coarse(_)));
        assert!(s.may_hold(&c, 11));
    }

    #[test]
    fn exact_mode_tracks_sharers_precisely() {
        let c = cfg(2, 4);
        let mut s = PtrVector::empty(&c);
        assert!(!s.add(&c, 3));
        assert!(!s.add(&c, 3), "re-adding a sharer is a no-op");
        assert!(!s.add(&c, 5));
        assert_eq!(s.holds(&c, 3), Some(true));
        assert_eq!(s.holds(&c, 4), Some(false));
        assert!(s.may_hold(&c, 5));
        assert!(!s.may_hold(&c, 0));
    }

    #[test]
    fn overflow_falls_back_to_coarse_groups() {
        let c = cfg(2, 4);
        let mut s = PtrVector::empty(&c);
        s.add(&c, 0); // group 0
        s.add(&c, 5); // group 1
        assert!(s.add(&c, 9), "third sharer overflows two pointers");
        // Groups 0, 1 and 2 are marked: every member may hold a copy,
        // exact membership is unknown for marked groups...
        assert_eq!(s.holds(&c, 1), None);
        assert!(s.may_hold(&c, 1) && s.may_hold(&c, 6) && s.may_hold(&c, 11));
        // ...and unmarked groups are definitely empty.
        assert_eq!(s.holds(&c, 12), Some(false));
        assert!(!s.may_hold(&c, 12));
        // Coarse sets stay coarse and absorb new sharers by group.
        assert!(!s.add(&c, 13));
        assert!(s.may_hold(&c, 15));
    }

    #[test]
    fn wide_pointer_budget_never_overflows_small_machines() {
        let c = cfg(8, 1);
        let mut s = PtrVector::empty(&c);
        for core in 0..8 {
            assert!(!s.add(&c, core));
        }
        for core in 0..8 {
            assert_eq!(s.holds(&c, core), Some(true));
        }
    }

    #[test]
    fn factory_builds_quiescent_controllers() {
        let f = MesiCoarseFactory::new(cfg(2, 2));
        assert_eq!(f.protocol_name(), "MESI-P2-G2");
        let shape = MachineShape {
            n_cores: 4,
            n_tiles: 4,
            n_mem: 2,
            mesh: MeshTopology::for_tiles(4),
            l2_banks: 1,
            l1_params: CacheParams::new(8, 2),
            l2_params: CacheParams::new(16, 4),
            l1_issue_latency: 1,
            l2_latency: 4,
            faults: tsocc_coherence::FaultPlan::none(),
        };
        assert!(f.l1(0, &shape).is_quiescent());
        assert!(f.l2(3, &shape).is_quiescent());
    }
}
