//! Strongly-typed simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in clock cycles.
///
/// `Cycle` is a newtype over `u64` so that cycle arithmetic cannot be
/// accidentally mixed with other integer quantities (addresses, counts).
///
/// # Examples
///
/// ```
/// use tsocc_sim::Cycle;
///
/// let start = Cycle::new(10);
/// let end = start + 5;
/// assert_eq!(end.as_u64(), 15);
/// assert_eq!(end - start, 5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// The first cycle of a simulation.
    pub const ZERO: Cycle = Cycle(0);

    /// A cycle value that compares larger than any reachable simulation
    /// time; useful as an "infinite deadline" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration in cycles.
    #[inline]
    pub const fn saturating_add(self, rhs: u64) -> Self {
        Cycle(self.0.saturating_add(rhs))
    }

    /// Returns the later of two cycle values.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Number of cycles from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: Self) -> u64 {
        debug_assert!(earlier.0 <= self.0, "negative cycle delta");
        self.0 - earlier.0
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(raw: u64) -> Self {
        Cycle(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let c = Cycle::new(100);
        assert_eq!((c + 23) - c, 23);
        let mut m = c;
        m += 7;
        assert_eq!(m.as_u64(), 107);
    }

    #[test]
    fn ordering_and_max() {
        assert!(Cycle::ZERO < Cycle::new(1));
        assert_eq!(Cycle::new(5).max(Cycle::new(9)), Cycle::new(9));
        assert_eq!(Cycle::new(9).max(Cycle::new(5)), Cycle::new(9));
        assert!(Cycle::MAX > Cycle::new(u64::MAX - 1));
    }

    #[test]
    fn since_counts_elapsed_cycles() {
        assert_eq!(Cycle::new(42).since(Cycle::new(40)), 2);
        assert_eq!(Cycle::ZERO.since(Cycle::ZERO), 0);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(Cycle::MAX.saturating_add(1), Cycle::MAX);
        assert_eq!(Cycle::new(1).saturating_add(2), Cycle::new(3));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(3).to_string(), "cycle 3");
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn since_panics_on_negative_delta() {
        let _ = Cycle::new(1).since(Cycle::new(2));
    }
}
