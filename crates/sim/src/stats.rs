//! Simulation statistics primitives.
//!
//! Counters and histograms are intentionally plain data: the per-figure
//! aggregation logic lives with the harness, which only needs raw event
//! counts out of the simulator.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use tsocc_sim::Counter;
///
/// let mut c = Counter::default();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

/// An accumulating sample statistic: count, sum, min, max and mean.
///
/// Used for latencies (e.g. the RMW latency of the paper's Figure 8).
///
/// # Examples
///
/// ```
/// use tsocc_sim::Histogram;
///
/// let mut h = Histogram::default();
/// h.record(10);
/// h.record(20);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean(), 15.0);
/// assert_eq!(h.min(), Some(10));
/// assert_eq!(h.max(), Some(20));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of samples recorded.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub const fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub const fn max(&self) -> Option<u64> {
        self.max
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} min={:?} max={:?}",
            self.count,
            self.mean(),
            self.min,
            self.max
        )
    }
}

/// Computes the geometric mean of a slice of positive ratios.
///
/// The paper reports `gmean` rows in Figures 3 and 4; this helper is used
/// by the harness to produce the same aggregate. Entries that are zero or
/// negative are ignored (they would otherwise poison the logarithm).
///
/// # Examples
///
/// ```
/// use tsocc_sim::stats::geometric_mean;
///
/// let g = geometric_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// assert_eq!(geometric_mean(&[]), 0.0);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    let mut n = 0usize;
    let mut log_sum = 0.0f64;
    for &v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Computes the arithmetic mean of a slice, `0.0` when empty.
///
/// # Examples
///
/// ```
/// use tsocc_sim::stats::arithmetic_mean;
/// assert_eq!(arithmetic_mean(&[1.0, 3.0]), 2.0);
/// ```
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        c += 10;
        assert_eq!(c.get(), 20);
    }

    #[test]
    fn histogram_tracks_extremes() {
        let mut h = Histogram::new();
        for v in [5, 1, 9, 3] {
            h.record(v);
        }
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.sum(), 18);
        assert_eq!(h.mean(), 4.5);
    }

    #[test]
    fn histogram_empty_mean_is_zero() {
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(2);
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(30));
        assert_eq!(a.sum(), 42);
    }

    #[test]
    fn merge_with_empty_keeps_extremes() {
        let mut a = Histogram::new();
        a.record(7);
        a.merge(&Histogram::new());
        assert_eq!(a.min(), Some(7));
        assert_eq!(a.max(), Some(7));
    }

    #[test]
    fn gmean_matches_hand_computation() {
        let g = geometric_mean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_skips_nonpositive() {
        let g = geometric_mean(&[0.0, -1.0, 3.0]);
        assert!((g - 3.0).abs() < 1e-12);
    }

    #[test]
    fn amean_handles_empty() {
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }
}
