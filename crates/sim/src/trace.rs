//! Lightweight, zero-cost-when-disabled event tracing.
//!
//! Protocol debugging lives and dies by message traces. [`TraceSink`]
//! collects formatted lines when enabled and discards them (without
//! formatting) when disabled, so the hot path pays only a branch.

use std::fmt;

use crate::Cycle;

/// Collects trace lines for post-mortem protocol debugging.
///
/// # Examples
///
/// ```
/// use tsocc_sim::{Cycle, trace::TraceSink};
///
/// let mut sink = TraceSink::disabled();
/// sink.emit(Cycle::ZERO, || "never formatted".to_string());
/// assert!(sink.lines().is_empty());
///
/// let mut sink = TraceSink::enabled();
/// sink.emit(Cycle::new(5), || format!("L1[0] GetS 0x{:x}", 0x40));
/// assert_eq!(sink.lines().len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceSink {
    enabled: bool,
    lines: Vec<String>,
}

impl TraceSink {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        TraceSink {
            enabled: false,
            lines: Vec::new(),
        }
    }

    /// A sink that records every emitted line.
    pub fn enabled() -> Self {
        TraceSink {
            enabled: true,
            lines: Vec::new(),
        }
    }

    /// Whether lines are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records a line; the closure is only invoked when enabled.
    #[inline]
    pub fn emit<F>(&mut self, at: Cycle, line: F)
    where
        F: FnOnce() -> String,
    {
        if self.enabled {
            self.lines.push(format!("[{:>10}] {}", at.as_u64(), line()));
        }
    }

    /// Recorded lines, oldest first.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Drops all recorded lines.
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// Returns the last `n` lines joined for error messages.
    pub fn tail(&self, n: usize) -> String {
        let start = self.lines.len().saturating_sub(n);
        self.lines[start..].join("\n")
    }
}

impl fmt::Display for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lines.is_empty() {
            write!(f, "<empty trace>")
        } else {
            write!(f, "{}", self.lines.join("\n"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_skips_formatting() {
        let mut sink = TraceSink::disabled();
        let mut called = false;
        sink.emit(Cycle::ZERO, || {
            called = true;
            String::new()
        });
        assert!(!called, "closure must not run when disabled");
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn enabled_sink_records_in_order() {
        let mut sink = TraceSink::enabled();
        sink.emit(Cycle::new(1), || "a".into());
        sink.emit(Cycle::new(2), || "b".into());
        assert_eq!(sink.lines().len(), 2);
        assert!(sink.lines()[0].contains('a'));
        assert!(sink.lines()[1].contains('b'));
    }

    #[test]
    fn tail_returns_suffix() {
        let mut sink = TraceSink::enabled();
        for i in 0..5 {
            sink.emit(Cycle::new(i), || format!("line{i}"));
        }
        let t = sink.tail(2);
        assert!(t.contains("line3") && t.contains("line4"));
        assert!(!t.contains("line2"));
    }

    #[test]
    fn clear_empties() {
        let mut sink = TraceSink::enabled();
        sink.emit(Cycle::ZERO, || "x".into());
        sink.clear();
        assert!(sink.lines().is_empty());
        assert_eq!(sink.to_string(), "<empty trace>");
    }
}
