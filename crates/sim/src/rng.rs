//! Deterministic pseudo-random number generation.
//!
//! The simulator uses its own small PRNGs rather than the `rand` crate so
//! that every simulation is bit-exactly reproducible across platforms and
//! dependency upgrades. [`SplitMix64`] is used for seeding and cheap
//! streams; [`Xoshiro256StarStar`] is the general-purpose generator used
//! by workload generators and timing perturbation.

/// The SplitMix64 generator (Steele, Lea & Flood).
///
/// Extremely small state, passes BigCrush when used as a 64-bit stream,
/// and is the canonical seeder for the xoshiro family.
///
/// # Examples
///
/// ```
/// use tsocc_sim::rng::SplitMix64;
///
/// let mut rng = SplitMix64::new(7);
/// let first = rng.next_u64();
/// assert_ne!(first, rng.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed is valid.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 bits of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0)
    }
}

/// The xoshiro256** generator (Blackman & Vigna).
///
/// The workhorse generator for workload address streams and timing
/// perturbation. Not cryptographically secure; not intended to be.
///
/// # Examples
///
/// ```
/// use tsocc_sim::rng::Xoshiro256StarStar;
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(123);
/// let x = rng.range(0, 10);
/// assert!(x < 10);
/// assert!(rng.chance(1.0));
/// assert!(!rng.chance(0.0));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the full 256-bit state from a single 64-bit value via
    /// SplitMix64, as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64 bits of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[lo, hi)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.range(0, n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent child generator; handy for giving each
    /// simulated thread its own stream.
    pub fn fork(&mut self) -> Self {
        Xoshiro256StarStar::seed_from_u64(self.next_u64())
    }
}

impl Default for Xoshiro256StarStar {
    fn default() -> Self {
        Xoshiro256StarStar::seed_from_u64(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First output for seed 0 from the public-domain reference
        // implementation (widely published test vector).
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.range(10, 17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.range(0, 7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let _ = rng.range(5, 5);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        assert!(rng.chance(1.5));
        assert!(!rng.chance(-0.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = Xoshiro256StarStar::seed_from_u64(7);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
