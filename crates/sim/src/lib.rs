#![warn(missing_docs)]

//! Deterministic cycle-driven simulation kernel for the TSO-CC reproduction.
//!
//! This crate provides the foundations every other simulator crate builds
//! on: a strongly-typed cycle counter ([`Cycle`]), a deterministic PRNG
//! family ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`]), simulation
//! statistics ([`stats::Counter`], [`stats::Histogram`]) and a lightweight
//! trace facility ([`trace::TraceSink`]).
//!
//! The simulator is deterministic given a seed — even under the sharded
//! parallel stepper, whose synchronization protocol is constructed so
//! that thread scheduling can never influence a simulated outcome. This
//! is a deliberate design decision so that litmus-test results and
//! benchmark figures are exactly reproducible across runs and machines.
//!
//! # Examples
//!
//! ```
//! use tsocc_sim::{Cycle, rng::SplitMix64};
//!
//! let mut now = Cycle::ZERO;
//! now += 3;
//! assert_eq!(now, Cycle::new(3));
//!
//! let mut rng = SplitMix64::new(42);
//! let a = rng.next_u64();
//! let b = SplitMix64::new(42).next_u64();
//! assert_eq!(a, b, "deterministic given the seed");
//! ```

pub mod cycle;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod trace;

pub use cycle::Cycle;
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use sched::{SchedStats, WakeQueue};
pub use stats::{Counter, Histogram};

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");
