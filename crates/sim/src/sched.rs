//! An indexed pending-event queue for the event-driven scheduler.
//!
//! [`WakeQueue`] is a **radix heap** (a monotone priority queue bucketed
//! by the highest bit in which a key differs from the queue's floor)
//! over absolute wake cycles, with **lazy decrease-key**: re-arming a
//! component's wake bumps a per-component generation stamp instead of
//! searching for the stale entry, and stale entries are skipped (and
//! counted) when they surface. Both operations are O(1) amortized in
//! the monotone access pattern of a discrete-event simulation, so
//! picking the next event no longer costs a min-scan over every
//! component in the machine.
//!
//! # Monotonicity and the floor
//!
//! A radix heap requires keys pushed after a pop to be no smaller than
//! the last popped key (the *floor*). The simulator's wake contract
//! almost guarantees this — components re-arm for *future* cycles — but
//! the queue does not trust it: [`WakeQueue::set`] clamps keys to the
//! floor. The clamp is exact for the scheduler's purposes: the floor
//! never passes `horizon` (the next cycle the run loop could possibly
//! execute), so a clamped entry still fires no later than the cycle at
//! which the reference semantics would have acted on it.
//!
//! # Examples
//!
//! ```
//! use tsocc_sim::sched::WakeQueue;
//!
//! let mut q = WakeQueue::new(3);
//! q.set(0, 10);
//! q.set(1, 5);
//! q.set(1, 7); // re-arm: the key-5 entry is now stale
//! let mut due = Vec::new();
//! q.pop_due(7, &mut due);
//! assert_eq!(due, vec![1]);
//! assert_eq!(q.next_wake(8), 10);
//! assert_eq!(q.stats().stale_skips, 1);
//! ```

/// Scheduler counters, reported per run in the system's `RunStats` so
/// scheduler regressions are visible in benchmark-artifact diffs.
///
/// These count *host-side* queue traffic, not simulated events: the
/// reference stepper (which never touches the queue) reports zeros, and
/// the counters are deliberately excluded from `RunStats` equality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Entries pushed into the queue (`set` with a finite wake).
    pub pushes: u64,
    /// Live entries popped as due.
    pub events_popped: u64,
    /// Stale entries (superseded by a later `set`) skipped and dropped.
    pub stale_skips: u64,
}

impl SchedStats {
    /// Accumulates another queue's counters into this one — how the
    /// sharded parallel stepper folds its per-shard queues into the
    /// single per-run scheduler report.
    pub fn merge(&mut self, other: SchedStats) {
        self.pushes += other.pushes;
        self.events_popped += other.events_popped;
        self.stale_skips += other.stale_skips;
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    key: u64,
    id: u32,
    gen: u32,
}

/// Number of radix buckets: one per possible highest-differing-bit
/// position of a `u64` key, plus bucket 0 for keys equal to the floor.
const BUCKETS: usize = 65;

/// A monotone indexed min-queue of absolute wake cycles, one slot per
/// component id, with generation-stamped lazy invalidation.
///
/// See the [module documentation](self) for the design.
#[derive(Clone, Debug)]
pub struct WakeQueue {
    /// Lower bound on every live key; bucket 0 holds keys equal to it.
    floor: u64,
    buckets: Vec<Vec<Entry>>,
    /// Current generation per id; an entry is live iff its stamp
    /// matches. `set` bumps the stamp, so at most one live entry per id
    /// exists at any time.
    gens: Vec<u32>,
    stats: SchedStats,
}

impl WakeQueue {
    /// An empty queue for ids `0..n_ids` with floor 0.
    pub fn new(n_ids: usize) -> Self {
        WakeQueue {
            floor: 0,
            buckets: vec![Vec::new(); BUCKETS],
            gens: vec![0; n_ids],
            stats: SchedStats::default(),
        }
    }

    /// Clears the queue for a fresh run: `n_ids` slots, the given
    /// floor, all counters zeroed.
    pub fn reset(&mut self, n_ids: usize, floor: u64) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.gens.clear();
        self.gens.resize(n_ids, 0);
        self.floor = floor;
        self.stats = SchedStats::default();
    }

    /// Run counters so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    fn bucket_of(&self, key: u64) -> usize {
        debug_assert!(key >= self.floor);
        if key == self.floor {
            0
        } else {
            64 - (key ^ self.floor).leading_zeros() as usize
        }
    }

    /// Re-arms `id` to wake at `key` (lazy decrease/increase-key): any
    /// previous entry for `id` becomes stale. `u64::MAX` means "never"
    /// — the previous entry is invalidated and nothing is pushed. Keys
    /// below the floor are clamped up to it (see the module docs).
    pub fn set(&mut self, id: usize, key: u64) {
        let gen = self.gens[id].wrapping_add(1);
        self.gens[id] = gen;
        if key == u64::MAX {
            return;
        }
        let key = key.max(self.floor);
        let b = self.bucket_of(key);
        self.buckets[b].push(Entry {
            key,
            id: id as u32,
            gen,
        });
        self.stats.pushes += 1;
    }

    /// Invalidates `id`'s pending entry without scheduling a new one.
    pub fn clear(&mut self, id: usize) {
        self.set(id, u64::MAX);
    }

    /// Locates the minimum live key, pruning stale entries encountered
    /// along the way. Advances the floor to at most
    /// `min(min_live_key, horizon)` — never past `horizon`, so keys
    /// pushed at future steps (all `>= horizon`) are never clamped into
    /// the future by an over-eager floor.
    fn find_min(&mut self, horizon: u64) -> Option<u64> {
        loop {
            // Prune stale entries off bucket 0; any live entry there
            // has the minimum possible key (== floor).
            while let Some(e) = self.buckets[0].last() {
                if self.gens[e.id as usize] == e.gen {
                    return Some(self.floor);
                }
                self.buckets[0].pop();
                self.stats.stale_skips += 1;
            }
            let b = (1..BUCKETS).find(|&b| !self.buckets[b].is_empty())?;
            let mut bucket = std::mem::take(&mut self.buckets[b]);
            let before = bucket.len();
            let gens = &self.gens;
            bucket.retain(|e| gens[e.id as usize] == e.gen);
            self.stats.stale_skips += (before - bucket.len()) as u64;
            if bucket.is_empty() {
                self.buckets[b] = bucket;
                continue;
            }
            let min = bucket.iter().map(|e| e.key).min().unwrap();
            let new_floor = min.min(horizon);
            if new_floor > self.floor {
                // Re-bucket relative to the advanced floor; when the
                // floor reaches `min`, the minimum lands in bucket 0
                // (strictly lower buckets: the radix-heap amortization).
                self.floor = new_floor;
                for e in bucket.drain(..) {
                    let nb = self.bucket_of(e.key);
                    self.buckets[nb].push(e);
                }
                // An entry may re-bucket into `b` itself when the
                // horizon capped the floor below the minimum key; only
                // hand the drained scratch back if `b` stayed empty.
                if self.buckets[b].is_empty() {
                    self.buckets[b] = bucket;
                }
                continue;
            }
            // Horizon already at the floor: report without moving.
            self.buckets[b] = bucket;
            return Some(min);
        }
    }

    /// Pops every live entry with key `<= now` into `out` (order
    /// unspecified; callers sort or demultiplex by id class). Entries
    /// for popped ids are consumed; the caller re-arms them via
    /// [`WakeQueue::set`] after processing.
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<u32>) {
        loop {
            let Some(min) = self.find_min(now.saturating_add(1)) else {
                return;
            };
            if min > now {
                return;
            }
            // `min <= now < horizon`, so find_min advanced the floor to
            // `min` and bucket 0 holds every minimum-key entry.
            debug_assert_eq!(min, self.floor);
            let mut b0 = std::mem::take(&mut self.buckets[0]);
            for e in b0.drain(..) {
                if self.gens[e.id as usize] == e.gen {
                    out.push(e.id);
                    self.stats.events_popped += 1;
                } else {
                    self.stats.stale_skips += 1;
                }
            }
            self.buckets[0] = b0;
        }
    }

    /// The minimum pending wake cycle, or `u64::MAX` if none. `horizon`
    /// caps how far the internal floor may advance — pass the next
    /// cycle the caller could possibly execute (typically `now + 1`).
    pub fn next_wake(&mut self, horizon: u64) -> u64 {
        self.find_min(horizon).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_due(q: &mut WakeQueue, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        q.pop_due(now, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn pops_in_key_order() {
        let mut q = WakeQueue::new(4);
        q.set(0, 30);
        q.set(1, 10);
        q.set(2, 20);
        assert_eq!(q.next_wake(0), 10);
        assert_eq!(drain_due(&mut q, 10), vec![1]);
        assert_eq!(drain_due(&mut q, 25), vec![2]);
        assert_eq!(drain_due(&mut q, 25), Vec::<u32>::new());
        assert_eq!(drain_due(&mut q, 30), vec![0]);
        assert_eq!(q.next_wake(31), u64::MAX);
    }

    #[test]
    fn rearm_invalidates_previous_entry() {
        let mut q = WakeQueue::new(2);
        q.set(0, 5);
        q.set(0, 50);
        assert_eq!(drain_due(&mut q, 10), Vec::<u32>::new());
        assert_eq!(drain_due(&mut q, 50), vec![0]);
        assert_eq!(q.stats().stale_skips, 1);
        assert_eq!(q.stats().events_popped, 1);
        assert_eq!(q.stats().pushes, 2);
    }

    #[test]
    fn clear_cancels_without_rescheduling() {
        let mut q = WakeQueue::new(1);
        q.set(0, 5);
        q.clear(0);
        assert_eq!(drain_due(&mut q, 100), Vec::<u32>::new());
        assert_eq!(q.next_wake(101), u64::MAX);
    }

    #[test]
    fn max_key_means_never() {
        let mut q = WakeQueue::new(1);
        q.set(0, u64::MAX);
        assert_eq!(q.stats().pushes, 0);
        assert_eq!(q.next_wake(1), u64::MAX);
    }

    #[test]
    fn several_ids_due_at_same_cycle() {
        let mut q = WakeQueue::new(5);
        for id in 0..5 {
            q.set(id, 7);
        }
        assert_eq!(drain_due(&mut q, 7), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn floor_clamps_past_keys_to_the_next_executable_cycle() {
        let mut q = WakeQueue::new(2);
        q.set(0, 100);
        // Advance the floor by draining up to cycle 90.
        assert_eq!(drain_due(&mut q, 90), Vec::<u32>::new());
        // A contract-violating past key is clamped, not lost, and fires
        // no later than the next executed cycle.
        q.set(1, 3);
        assert_eq!(drain_due(&mut q, 91), vec![1]);
        assert_eq!(drain_due(&mut q, 100), vec![0]);
    }

    #[test]
    fn horizon_caps_floor_advance() {
        let mut q = WakeQueue::new(2);
        q.set(0, 500);
        // Peek far ahead but cap the floor at 11.
        assert_eq!(q.next_wake(11), 500);
        // A later push below 500 but above the horizon must not clamp.
        q.set(1, 60);
        assert_eq!(q.next_wake(11), 60);
        assert_eq!(drain_due(&mut q, 60), vec![1]);
        assert_eq!(drain_due(&mut q, 500), vec![0]);
    }

    #[test]
    fn reset_clears_entries_and_stats() {
        let mut q = WakeQueue::new(2);
        q.set(0, 5);
        q.set(1, 6);
        q.reset(3, 4);
        assert_eq!(q.next_wake(4), u64::MAX);
        assert_eq!(q.stats(), SchedStats::default());
        q.set(2, 9);
        assert_eq!(drain_due(&mut q, 9), vec![2]);
    }

    #[test]
    fn stats_merge_accumulates_all_counters() {
        let mut a = SchedStats {
            pushes: 1,
            events_popped: 2,
            stale_skips: 3,
        };
        a.merge(SchedStats {
            pushes: 10,
            events_popped: 20,
            stale_skips: 30,
        });
        assert_eq!(
            a,
            SchedStats {
                pushes: 11,
                events_popped: 22,
                stale_skips: 33,
            }
        );
    }

    #[test]
    fn interleaved_churn_matches_naive_expectation() {
        let mut q = WakeQueue::new(8);
        let mut expected: Vec<(u64, usize)> = Vec::new();
        for id in 0..8usize {
            let key = 10 + (id as u64 * 37) % 90;
            q.set(id, key);
            expected.push((key, id));
        }
        // Re-arm half of them.
        for id in (0..8usize).step_by(2) {
            let key = 200 + id as u64;
            q.set(id, key);
            expected.retain(|&(_, i)| i != id);
            expected.push((key, id));
        }
        expected.sort_unstable();
        let mut got = Vec::new();
        for now in [50, 99, 199, 210] {
            let mut out = Vec::new();
            q.pop_due(now, &mut out);
            out.sort_unstable();
            got.extend(out.into_iter().map(|id| id as usize));
        }
        let want: Vec<usize> = expected.iter().map(|&(_, id)| id).collect();
        // Same multiset of ids overall, grouped by due time.
        let mut want_sorted = want.clone();
        want_sorted.sort_unstable();
        let mut got_sorted = got.clone();
        got_sorted.sort_unstable();
        assert_eq!(got_sorted, want_sorted);
    }
}
