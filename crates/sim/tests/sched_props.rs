//! Property tests pinning [`WakeQueue`] against a `BinaryHeap`
//! reference model under random set/clear/pop churn.
//!
//! The model is the textbook lazy-deletion priority queue: a max-down
//! `BinaryHeap<Reverse<(key, id)>>` plus a `desired[id]` map recording
//! each id's latest requested wake (`u64::MAX` = none). The harness
//! replays one random op sequence against both structures and checks:
//!
//! - **Pop membership is exact.** As long as pop times strictly
//!   advance (the monotone contract every stepper obeys), the queue's
//!   floor clamping can never move an entry across a pop boundary: a
//!   clamped key is at most `prev_pop + 1 <= next_pop`, and clamping
//!   never lowers a key. So `pop_due(now)` must return *precisely* the
//!   model's due ids, every time — not just a superset or subset.
//! - **`next_wake` is exact beyond the horizon, bounded within it.**
//!   Keys at or past `now + 1` are never clamped (the floor trails the
//!   horizon), so when the model minimum is `>= now + 1` the queue must
//!   report it exactly. An already-due minimum may have been clamped
//!   anywhere up to `now + 1`, so there the queue's answer need only
//!   stay within `[model_min, now + 1]`.
//! - **Counters account for every entry.** `pushes` equals the number
//!   of finite `set`s, `events_popped` the total ids ever popped, and
//!   every finite push is eventually popped or skipped as stale once
//!   the queue drains (conservation: nothing is lost or double-counted).
//!
//! [`WakeQueue`]: tsocc_sim::WakeQueue

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use tsocc_sim::WakeQueue;

/// Component-id space for the random campaigns. Small enough that ids
/// collide often (re-arm churn is the interesting path), large enough
/// that several live entries coexist per bucket.
const N_IDS: usize = 12;

/// One randomized queue operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Re-arm `id` to wake `dk` cycles from the current time.
    Set { id: usize, dk: u64 },
    /// Re-arm `id` to a key *behind* the current time (stresses the
    /// floor clamp: the queue may store a later key than asked, but the
    /// entry must still fire on the very next pop).
    SetPast { id: usize, back: u64 },
    /// Invalidate `id`'s pending wake.
    Clear { id: usize },
    /// Advance time by `dt >= 1` and pop everything due.
    Pop { dt: u64 },
}

/// The reference model: lazy-deletion binary heap + desired-key map.
struct Model {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Latest requested wake per id; `u64::MAX` means none pending.
    desired: Vec<u64>,
}

impl Model {
    fn new() -> Self {
        Model {
            heap: BinaryHeap::new(),
            desired: vec![u64::MAX; N_IDS],
        }
    }

    fn set(&mut self, id: usize, key: u64) {
        self.desired[id] = key;
        if key != u64::MAX {
            self.heap.push(Reverse((key, id as u32)));
        }
    }

    /// Minimum live desired key, or `u64::MAX` if none.
    fn min(&self) -> u64 {
        self.desired.iter().copied().min().unwrap_or(u64::MAX)
    }

    /// Pops every live id with key `<= now`, consuming it.
    fn pop_due(&mut self, now: u64) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some(&Reverse((key, id))) = self.heap.peek() {
            if key > now {
                break;
            }
            self.heap.pop();
            // Lazy deletion: only the entry matching the desired key is
            // live; ids may appear multiple times with stale keys.
            if self.desired[id as usize] == key {
                self.desired[id as usize] = u64::MAX;
                out.push(id);
            }
        }
        out
    }
}

/// Strategy for one op, weighted toward re-arms (`Set` listed twice)
/// since re-arm churn is the queue's hot path.
fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..N_IDS, 0u64..40).prop_map(|(id, dk)| Op::Set { id, dk }),
        (0usize..N_IDS, 0u64..40).prop_map(|(id, dk)| Op::Set { id, dk }),
        (0usize..N_IDS, 1u64..20).prop_map(|(id, back)| Op::SetPast { id, back }),
        (0usize..N_IDS).prop_map(|id| Op::Clear { id }),
        (1u64..15).prop_map(|dt| Op::Pop { dt }),
    ]
}

/// Replays `ops` against queue and model in lockstep, checking pop
/// membership and the `next_wake` bound after every step. Returns
/// `(queue, finite_sets, total_popped, final_now)` for the stats leg.
fn replay(ops: &[Op]) -> (WakeQueue, u64, u64, u64) {
    let mut q = WakeQueue::new(N_IDS);
    let mut m = Model::new();
    let mut now = 0u64;
    let mut finite_sets = 0u64;
    let mut total_popped = 0u64;
    let mut due = Vec::new();
    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Set { id, dk } => {
                q.set(id, now + dk);
                m.set(id, now + dk);
                finite_sets += 1;
            }
            Op::SetPast { id, back } => {
                let key = now.saturating_sub(back);
                q.set(id, key);
                m.set(id, key);
                finite_sets += 1;
            }
            Op::Clear { id } => {
                q.clear(id);
                m.set(id, u64::MAX);
            }
            Op::Pop { dt } => {
                now += dt;
                due.clear();
                q.pop_due(now, &mut due);
                due.sort_unstable();
                let mut want = m.pop_due(now);
                want.sort_unstable();
                assert_eq!(due, want, "step {step}: pop membership at now={now}");
                total_popped += due.len() as u64;
            }
        }
        // `next_wake` contract after every op: exact past the horizon,
        // clamped no further than the horizon before it.
        let nw = q.next_wake(now + 1);
        let want = m.min();
        if want > now {
            assert_eq!(nw, want, "step {step}: next_wake at now={now}");
        } else {
            assert!(
                (want..=now + 1).contains(&nw),
                "step {step}: next_wake {nw} outside [{want}, {}] at now={now}",
                now + 1
            );
        }
    }
    // Drain: everything still pending must fire by the model's own
    // maximum desired key — plus one cycle, because the `next_wake`
    // probes above may have clamped a past-key entry up to `now + 1`,
    // and the strictly-advancing contract requires the final pop to
    // land past that horizon too.
    let horizon = m
        .desired
        .iter()
        .copied()
        .filter(|&k| k != u64::MAX)
        .max()
        .unwrap_or(now)
        .max(now)
        + 1;
    due.clear();
    q.pop_due(horizon, &mut due);
    due.sort_unstable();
    let mut want = m.pop_due(horizon);
    want.sort_unstable();
    assert_eq!(due, want, "final drain at now={horizon}");
    total_popped += due.len() as u64;
    assert_eq!(
        q.next_wake(horizon + 1),
        u64::MAX,
        "queue not empty after drain"
    );
    assert_eq!(m.min(), u64::MAX, "model not empty after drain");
    (q, finite_sets, total_popped, horizon)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn queue_matches_binary_heap_model(ops in collection::vec(op_strategy(), 1..120)) {
        replay(&ops);
    }

    /// Counter conservation: every finite `set` is a push, and once the
    /// queue drains every push has been popped live or skipped stale —
    /// no entry is lost, none is counted twice.
    #[test]
    fn stats_account_for_every_entry(ops in collection::vec(op_strategy(), 1..120)) {
        let (q, finite_sets, total_popped, _) = replay(&ops);
        let stats = q.stats();
        prop_assert_eq!(stats.pushes, finite_sets);
        prop_assert_eq!(stats.events_popped, total_popped);
        prop_assert_eq!(stats.pushes, stats.events_popped + stats.stale_skips);
    }

    /// `reset` must leave no residue: replaying a second, different
    /// campaign on a reset queue behaves exactly like a fresh one.
    #[test]
    fn reset_forgets_everything(
        first in collection::vec(op_strategy(), 1..60),
        second in collection::vec(op_strategy(), 1..60),
    ) {
        let (mut q, _, _, _) = replay(&first);
        q.reset(N_IDS, 0);
        prop_assert_eq!(q.stats(), tsocc_sim::SchedStats::default());
        let mut m = Model::new();
        let mut now = 0u64;
        let mut due = Vec::new();
        for &op in &second {
            match op {
                Op::Set { id, dk } => {
                    q.set(id, now + dk);
                    m.set(id, now + dk);
                }
                Op::SetPast { id, back } => {
                    let key = now.saturating_sub(back);
                    q.set(id, key);
                    m.set(id, key);
                }
                Op::Clear { id } => {
                    q.clear(id);
                    m.set(id, u64::MAX);
                }
                Op::Pop { dt } => {
                    now += dt;
                    due.clear();
                    q.pop_due(now, &mut due);
                    due.sort_unstable();
                    let mut want = m.pop_due(now);
                    want.sort_unstable();
                    prop_assert_eq!(&due, &want, "reset replay at now={}", now);
                }
            }
        }
    }
}
