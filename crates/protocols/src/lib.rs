#![warn(missing_docs)]

//! Protocol registry: one convenient enum over every built-in
//! [`ProtocolFactory`].
//!
//! The system assembly (`tsocc` crate) is protocol-agnostic — it builds
//! controllers through a [`ProtocolHandle`] and never names MESI or
//! TSO-CC. This crate sits on the *other* side of that seam: it depends
//! on every concrete protocol crate and packages them behind the closed
//! [`Protocol`] enum that tests, examples and the evaluation harness
//! use to enumerate configurations (e.g. [`Protocol::paper_configs`]).
//!
//! `Protocol` itself implements [`ProtocolFactory`], so any API that
//! accepts `impl Into<ProtocolHandle>` accepts a `Protocol` directly:
//!
//! ```
//! use tsocc_coherence::ProtocolHandle;
//! use tsocc_protocols::Protocol;
//!
//! let handle: ProtocolHandle = Protocol::Mesi.into();
//! assert_eq!(handle.protocol_name(), "MESI");
//! # use tsocc_coherence::ProtocolFactory;
//! ```
//!
//! A protocol living outside this enum needs no registration: implement
//! `ProtocolFactory` in its own crate and pass the factory wherever a
//! `Protocol` would go.

use tsocc_coherence::{L1Controller, L2Controller, MachineShape, ProtocolFactory};
use tsocc_mesi::MesiFactory;
use tsocc_proto::{TsoCcConfig, TsoCcFactory};

/// Which coherence protocol the system runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// The MESI directory baseline with a full sharing vector.
    Mesi,
    /// TSO-CC in any of its configurations (§4.2); includes
    /// CC-shared-to-L2 via [`TsoCcConfig::cc_shared_to_l2`].
    TsoCc(TsoCcConfig),
}

impl Protocol {
    /// The paper's name for this configuration (Figure 3 legend).
    pub fn name(&self) -> String {
        match self {
            Protocol::Mesi => "MESI".to_string(),
            Protocol::TsoCc(cfg) => cfg.name(),
        }
    }

    /// All seven configurations evaluated in the paper, in figure
    /// order.
    pub fn paper_configs() -> Vec<Protocol> {
        vec![
            Protocol::Mesi,
            Protocol::TsoCc(TsoCcConfig::cc_shared_to_l2()),
            Protocol::TsoCc(TsoCcConfig::basic()),
            Protocol::TsoCc(TsoCcConfig::noreset()),
            Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
            Protocol::TsoCc(TsoCcConfig::realistic(12, 0)),
            Protocol::TsoCc(TsoCcConfig::realistic(9, 3)),
        ]
    }
}

impl ProtocolFactory for Protocol {
    fn protocol_name(&self) -> String {
        self.name()
    }

    fn l1(&self, core: usize, shape: &MachineShape) -> Box<dyn L1Controller> {
        match self {
            Protocol::Mesi => MesiFactory.l1(core, shape),
            Protocol::TsoCc(cfg) => TsoCcFactory::new(*cfg).l1(core, shape),
        }
    }

    fn l2(&self, tile: usize, shape: &MachineShape) -> Box<dyn L2Controller> {
        match self {
            Protocol::Mesi => MesiFactory.l2(tile, shape),
            Protocol::TsoCc(cfg) => TsoCcFactory::new(*cfg).l2(tile, shape),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_seven_with_unique_names() {
        let configs = Protocol::paper_configs();
        assert_eq!(configs.len(), 7);
        let mut names: Vec<String> = configs.iter().map(|c| c.name()).collect();
        assert_eq!(names[0], "MESI");
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7, "names must be distinct");
    }

    #[test]
    fn enum_delegates_to_concrete_factories() {
        use tsocc_mem::CacheParams;
        let shape = MachineShape {
            n_cores: 2,
            n_tiles: 2,
            n_mem: 1,
            l1_params: CacheParams::new(8, 2),
            l2_params: CacheParams::new(16, 4),
            l1_issue_latency: 1,
            l2_latency: 4,
        };
        for p in Protocol::paper_configs() {
            assert!(p.l1(0, &shape).is_quiescent(), "{}", p.name());
            assert!(p.l2(1, &shape).is_quiescent(), "{}", p.name());
        }
    }
}
