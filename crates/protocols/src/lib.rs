#![warn(missing_docs)]

//! Protocol registry: one convenient enum over every built-in
//! [`ProtocolFactory`].
//!
//! The system assembly (`tsocc` crate) is protocol-agnostic — it builds
//! controllers through a [`ProtocolHandle`](tsocc_coherence::ProtocolHandle)
//! and never names MESI or
//! TSO-CC. This crate sits on the *other* side of that seam: it depends
//! on every concrete protocol crate and packages them behind the closed
//! [`Protocol`] enum that tests, examples and the evaluation harness
//! use to enumerate configurations (e.g. [`Protocol::paper_configs`]).
//!
//! `Protocol` itself implements [`ProtocolFactory`], so any API that
//! accepts `impl Into<ProtocolHandle>` accepts a `Protocol` directly:
//!
//! ```
//! use tsocc_coherence::ProtocolHandle;
//! use tsocc_protocols::Protocol;
//!
//! let handle: ProtocolHandle = Protocol::Mesi.into();
//! assert_eq!(handle.protocol_name(), "MESI");
//! # use tsocc_coherence::ProtocolFactory;
//! ```
//!
//! A protocol living outside this enum needs no registration: implement
//! `ProtocolFactory` in its own crate and pass the factory wherever a
//! `Protocol` would go.

use tsocc_coherence::{
    CoherenceDiscipline, L1Controller, L2Controller, MachineShape, ProtocolFactory,
};
use tsocc_mesi::MesiFactory;
use tsocc_mesi_coarse::{MesiCoarseConfig, MesiCoarseFactory};
use tsocc_proto::{TsoCcConfig, TsoCcFactory};

/// Which coherence protocol the system runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// The MESI directory baseline with a full sharing vector.
    Mesi,
    /// MESI with a limited-pointer / coarse-sharing-vector directory —
    /// the storage-reduced directory baseline, a policy over the same
    /// chassis and L1 rules as [`Protocol::Mesi`].
    MesiCoarse(MesiCoarseConfig),
    /// TSO-CC in any of its configurations (§4.2); includes
    /// CC-shared-to-L2 via [`TsoCcConfig::cc_shared_to_l2`].
    TsoCc(TsoCcConfig),
}

impl Protocol {
    /// The paper's name for this configuration (Figure 3 legend);
    /// MESI-coarse points are named `MESI-P<pointers>-G<granularity>`.
    pub fn name(&self) -> String {
        match self {
            Protocol::Mesi => "MESI".to_string(),
            Protocol::MesiCoarse(cfg) => cfg.name(),
            Protocol::TsoCc(cfg) => cfg.name(),
        }
    }

    /// All seven configurations evaluated in the paper, in figure
    /// order.
    pub fn paper_configs() -> Vec<Protocol> {
        vec![
            Protocol::Mesi,
            Protocol::TsoCc(TsoCcConfig::cc_shared_to_l2()),
            Protocol::TsoCc(TsoCcConfig::basic()),
            Protocol::TsoCc(TsoCcConfig::noreset()),
            Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
            Protocol::TsoCc(TsoCcConfig::realistic(12, 0)),
            Protocol::TsoCc(TsoCcConfig::realistic(9, 3)),
        ]
    }

    /// The sweep-baseline matrix: every paper configuration plus the
    /// limited-pointer directory points `BENCH_sweep.json` tracks (the
    /// balanced Dir_4_CV default and a one-pointer configuration that
    /// exercises the coarse fallback on every sharing pattern).
    pub fn sweep_configs() -> Vec<Protocol> {
        let mut configs = Protocol::paper_configs();
        configs.push(Protocol::MesiCoarse(MesiCoarseConfig::default()));
        configs.push(Protocol::MesiCoarse(MesiCoarseConfig::new(1, 4)));
        configs
    }

    /// Parses a configuration display name back into a `Protocol` —
    /// the inverse of [`Protocol::name`] for every name produced by
    /// [`Protocol::sweep_configs`]-style enumerations, plus arbitrary
    /// `MESI-P<p>-G<g>` and `TSO-CC-4-<ts>-<wg>` points.
    pub fn from_name(name: &str) -> Option<Protocol> {
        match name {
            "MESI" => return Some(Protocol::Mesi),
            "CC-shared-to-L2" => return Some(Protocol::TsoCc(TsoCcConfig::cc_shared_to_l2())),
            "TSO-CC-4-basic" => return Some(Protocol::TsoCc(TsoCcConfig::basic())),
            "TSO-CC-4-noreset" => return Some(Protocol::TsoCc(TsoCcConfig::noreset())),
            _ => {}
        }
        // Parametric names must round-trip exactly: a config whose
        // constructor would clamp or rename the requested parameters
        // (e.g. MESI-P16-G4, TSO-CC-4-62-0) is rejected rather than
        // silently running something other than what was named.
        if let Some(rest) = name.strip_prefix("MESI-P") {
            let (p, g) = rest.split_once("-G")?;
            let cfg = MesiCoarseConfig::new(p.parse().ok()?, g.parse().ok()?);
            return (cfg.name() == name).then_some(Protocol::MesiCoarse(cfg));
        }
        if let Some(rest) = name.strip_prefix("TSO-CC-4-") {
            let (ts, wg) = rest.split_once('-')?;
            let cfg = TsoCcConfig::realistic(ts.parse().ok()?, wg.parse().ok()?);
            return (cfg.name() == name).then_some(Protocol::TsoCc(cfg));
        }
        None
    }
}

impl ProtocolFactory for Protocol {
    fn protocol_name(&self) -> String {
        self.name()
    }

    fn l1(&self, core: usize, shape: &MachineShape) -> Box<dyn L1Controller> {
        match self {
            Protocol::Mesi => MesiFactory.l1(core, shape),
            Protocol::MesiCoarse(cfg) => MesiCoarseFactory::new(*cfg).l1(core, shape),
            Protocol::TsoCc(cfg) => TsoCcFactory::new(*cfg).l1(core, shape),
        }
    }

    fn l2(&self, tile: usize, shape: &MachineShape) -> Box<dyn L2Controller> {
        match self {
            Protocol::Mesi => MesiFactory.l2(tile, shape),
            Protocol::MesiCoarse(cfg) => MesiCoarseFactory::new(*cfg).l2(tile, shape),
            Protocol::TsoCc(cfg) => TsoCcFactory::new(*cfg).l2(tile, shape),
        }
    }

    fn validate_shape(&self, shape: &MachineShape) -> Result<(), String> {
        match self {
            Protocol::Mesi => MesiFactory.validate_shape(shape),
            Protocol::MesiCoarse(cfg) => MesiCoarseFactory::new(*cfg).validate_shape(shape),
            Protocol::TsoCc(cfg) => TsoCcFactory::new(*cfg).validate_shape(shape),
        }
    }

    fn coherence_discipline(&self) -> CoherenceDiscipline {
        match self {
            Protocol::Mesi => MesiFactory.coherence_discipline(),
            Protocol::MesiCoarse(cfg) => MesiCoarseFactory::new(*cfg).coherence_discipline(),
            Protocol::TsoCc(cfg) => TsoCcFactory::new(*cfg).coherence_discipline(),
        }
    }
}

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_seven_with_unique_names() {
        let configs = Protocol::paper_configs();
        assert_eq!(configs.len(), 7);
        let mut names: Vec<String> = configs.iter().map(|c| c.name()).collect();
        assert_eq!(names[0], "MESI");
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7, "names must be distinct");
    }

    #[test]
    fn sweep_configs_extend_paper_configs_with_mesi_coarse() {
        let configs = Protocol::sweep_configs();
        assert_eq!(configs.len(), 9);
        assert_eq!(&configs[..7], &Protocol::paper_configs()[..]);
        assert!(configs
            .iter()
            .any(|c| c.name() == MesiCoarseConfig::default().name()));
    }

    #[test]
    fn names_round_trip_through_from_name() {
        for p in Protocol::sweep_configs() {
            assert_eq!(Protocol::from_name(&p.name()), Some(p), "{}", p.name());
        }
        assert_eq!(
            Protocol::from_name("MESI-P2-G8"),
            Some(Protocol::MesiCoarse(MesiCoarseConfig::new(2, 8)))
        );
        assert_eq!(Protocol::from_name("bogus"), None);
        assert_eq!(Protocol::from_name("MESI-P2"), None);
        // Out-of-range parameters would be silently clamped by the
        // constructors; the parser must reject them instead.
        assert_eq!(Protocol::from_name("MESI-P16-G4"), None);
        assert_eq!(Protocol::from_name("MESI-P0-G4"), None);
        assert_eq!(
            Protocol::from_name("TSO-CC-4-62-0"),
            None,
            "that is noreset"
        );
    }

    #[test]
    fn enum_delegates_to_concrete_factories() {
        use tsocc_coherence::MeshTopology;
        use tsocc_mem::CacheParams;
        let shape = MachineShape {
            n_cores: 2,
            n_tiles: 2,
            n_mem: 1,
            mesh: MeshTopology::for_tiles(2),
            l2_banks: 1,
            l1_params: CacheParams::new(8, 2),
            l2_params: CacheParams::new(16, 4),
            l1_issue_latency: 1,
            l2_latency: 4,
            faults: tsocc_coherence::FaultPlan::none(),
        };
        for p in Protocol::sweep_configs() {
            assert!(p.l1(0, &shape).is_quiescent(), "{}", p.name());
            assert!(p.l2(1, &shape).is_quiescent(), "{}", p.name());
        }
    }
}
