//! The conservative-parallel sharded run loop behind
//! [`Stepper::ParallelShards`](crate::Stepper::ParallelShards).
//!
//! # Design
//!
//! Tiles (a core + its L1 + its L2 slice) are split into contiguous
//! shards, one scoped worker thread each; memory controllers are
//! chunked across the same shards. The coordinator owns the mesh and
//! simulated time and advances the machine in **windows** of cycles
//! bounded by the mesh's minimum message latency
//! ([`tsocc_noc::NocConfig::min_message_latency`]): a message injected
//! at cycle `t` cannot arrive anywhere before `t + lookahead`, so
//! within a window `[T0, E)` with `E <= T0 + lookahead` no component
//! can observe anything another shard does — each worker can execute
//! its shard's cycles of the window with no synchronization at all.
//! This is classic conservative parallel discrete-event simulation
//! (null-message-free, window-synchronized).
//!
//! # Selective participation
//!
//! A window is dispatched only to the shards that can possibly act in
//! it: a shard participates iff an arrival was delivered to it at the
//! window's first cycle or its wake queue holds an entry below the
//! window end. Any other shard would execute zero cycles and leave its
//! lane untouched (its worker loop starts at `max(wake, T0) >= E`), so
//! skipping it outright is behavior-identical — the coordinator keeps
//! a cached copy of each lane's `(wake, running, busy)` and re-reads
//! only participating lanes. Participants are driven through per-shard
//! [`Gate`]s rather than a global barrier, and the coordinator runs
//! the first participant inline — *all* of them when the host has a
//! single CPU, where handing work to a sleeping thread costs a context
//! switch and overlaps with nothing.
//!
//! # Event-driven shards
//!
//! Within a window each worker is **event-driven, not cycle-stepped**:
//! the shard owns a [`WakeQueue`] over shard-local component ids (its
//! cores, L1s, L2 slices and memory-controller chunk) plus the same
//! per-controller wake/busy caches the serial indexed stepper uses, so
//! a cycle visits only the components that are *due* (popped from the
//! queue) or *touched* (a window arrival landed on them), and the
//! worker jumps simulated time straight to the shard's next local wake
//! instead of polling every owned component every cycle. This is the
//! per-shard analog of `System::step_indexed`, and the reason 128-core
//! windows cost O(active components) instead of O(machine).
//!
//! # Determinism
//!
//! Bit-identical results to the serial steppers — on **any** worker
//! count — follow from three invariants:
//!
//! 1. Inside a window, each worker executes exactly the reference
//!    stepper's per-cycle phases (deliver, core tick, tile tick,
//!    drain), restricted to its shard, with the reference conditions
//!    verbatim on the due-or-touched candidate set. Shards are disjoint
//!    and windows end before any in-flight or newly injected message
//!    can arrive, so restriction changes nothing; every skipped
//!    component provably satisfies the same "untouched and not due"
//!    conditions under which the reference phases are no-ops (the
//!    `System::step_indexed` argument, applied per shard).
//! 2. Workers never touch the mesh. Every outgoing message is recorded
//!    with its injection cycle and its global drain position
//!    `(class, controller index)`; after the window the coordinator
//!    replays the merged record **stably sorted by that position** —
//!    the exact injection order the serial steppers produce — so the
//!    mesh's order-sensitive link-contention and tie-break state
//!    evolves identically.
//! 3. Window boundaries are capped at the next in-flight arrival and
//!    at the serial loop's deadlock/timeout horizons, so arrivals,
//!    [`RunError::Timeout`] and [`RunError::Deadlock`] are observed at
//!    exactly the cycles the serial steppers observe them.
//!
//! `tests/parallel_stepper_parity.rs` checks the full `RunStats` and
//! final memory image against [`Stepper::Reference`] across the sweep
//! matrix; the in-tree tests below cover shard-count edge cases.
//!
//! [`Stepper::Reference`]: crate::Stepper::Reference

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use tsocc_coherence::{Agent, CacheController, L1Controller, L2Controller, MemCtrl, NetMsg};
use tsocc_cpu::Core;
use tsocc_isa::Program;
use tsocc_mem::{LineAddr, LineData};
use tsocc_noc::MeshTopology;
use tsocc_sim::{Cycle, WakeQueue};

use crate::Stepper;

/// What `degrade_and_rerun` needs to rebuild a fresh machine: the
/// per-core programs and the initial DRAM image, captured at entry
/// when the run starts from cycle zero.
type EntrySnapshot = (Vec<Program>, Vec<(LineAddr, LineData)>);

use super::{RunError, System, DEADLOCK_WINDOW};
use crate::stats::RunStats;

/// Poison-tolerant lock. A panicking shard worker poisons whatever
/// mutex it held; the panic itself is already captured in the
/// coordinator's failure flag, so every other thread treats the data
/// as ordinary (it will be discarded wholesale on degradation) rather
/// than cascading panics through the gate protocol.
fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One outgoing message, tagged with its injection cycle and its
/// global drain position so the coordinator can replay the serial
/// steppers' exact mesh injection order: ascending cycle, then class
/// (L1 = 0, L2 = 1, memory = 2), then controller index, preserving
/// each controller's own outbox order (the sort is stable).
struct SendRec {
    cycle: u64,
    class: u8,
    idx: u32,
    msg: NetMsg,
}

/// Coordinator/worker mailbox, one per shard. Locked by the owner of
/// the current phase only: workers hold it for the whole window,
/// the coordinator between windows — the barriers hand it off.
#[derive(Default)]
struct Lane {
    /// Messages arriving at the window's first cycle (in, from the
    /// coordinator).
    arrivals: Vec<NetMsg>,
    /// Messages injected during the window (out, to the coordinator).
    sends: Vec<SendRec>,
    /// The shard's earliest self-driven wake cycle after the window.
    wake: u64,
    /// Unfinished cores in the shard.
    running: usize,
    /// Non-quiescent controllers in the shard.
    busy: usize,
    /// Cycles the shard actually executed this window.
    processed: u64,
    /// The last cycle index the shard executed this window (valid only
    /// when `processed > 0`).
    last_processed: u64,
}

/// Coordinator-to-worker command, one slot per shard.
#[derive(Clone, Copy)]
enum Cmd {
    /// No window assigned; the worker sleeps.
    Sleep,
    /// Execute the window `[start, end)` and publish the lane.
    Go { start: u64, end: u64 },
    /// The worker finished its window (lane published).
    Done,
    /// The run is over; the worker thread returns.
    Exit,
}

/// Per-shard wake-up gate. Unlike a global barrier, gates let the
/// coordinator wake **only the shards that can possibly act** in a
/// window (an arrival landed on them, or their own wake queue has an
/// entry inside the window); every other worker sleeps through the
/// window untouched, which is what makes one-cycle windows — the common
/// case under the default single-cycle mesh lookahead — affordable.
struct Gate {
    cmd: Mutex<Cmd>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            cmd: Mutex::new(Cmd::Sleep),
            cv: Condvar::new(),
        }
    }

    /// Coordinator side: assign a command and wake the worker.
    fn post(&self, cmd: Cmd) {
        *plock(&self.cmd) = cmd;
        self.cv.notify_all();
    }

    /// Coordinator side: block until the worker reports `Done`, then
    /// reset the gate to `Sleep`.
    fn wait_done(&self) {
        let mut cmd = plock(&self.cmd);
        while !matches!(*cmd, Cmd::Done) {
            cmd = self.cv.wait(cmd).unwrap_or_else(PoisonError::into_inner);
        }
        *cmd = Cmd::Sleep;
    }

    /// Worker side: block until a window is assigned (`Go`) or the run
    /// ends (`Exit`).
    fn await_window(&self) -> Option<(u64, u64)> {
        let mut cmd = plock(&self.cmd);
        loop {
            match *cmd {
                Cmd::Go { start, end } => return Some((start, end)),
                Cmd::Exit => return None,
                _ => cmd = self.cv.wait(cmd).unwrap_or_else(PoisonError::into_inner),
            }
        }
    }
}

/// One worker's disjoint slice of the machine: a contiguous tile range
/// (cores, L1s, L2s and their cached-state vectors) plus a chunk of
/// the memory controllers.
struct Shard<'a> {
    /// Global index of the first owned tile.
    tile_lo: usize,
    cores: &'a mut [Core],
    l1s: &'a mut [Box<dyn L1Controller>],
    l2s: &'a mut [Box<dyn L2Controller>],
    l1_msg_gen: &'a mut [u64],
    l2_msg_gen: &'a mut [u64],
    l1_wake: &'a mut [Cycle],
    l2_wake: &'a mut [Cycle],
    l1_busy: &'a mut [bool],
    l2_busy: &'a mut [bool],
    core_done: &'a mut [bool],
    /// Global index of the first owned memory controller.
    mem_lo: usize,
    mems: &'a mut [MemCtrl],
    mem_msg_gen: &'a mut [u64],
    mem_wake: &'a mut [Cycle],
    mem_busy: &'a mut [bool],
    /// Local step-generation counter. Starts at the system's serial
    /// `steps` so stamps written here stay below every future serial
    /// generation; each shard counts independently (stamps are only
    /// ever compared shard-locally while the parallel run lasts).
    gen: u64,
    /// Earliest cycle any owned component can act on its own.
    wake: u64,
    running: usize,
    busy: usize,
    /// Drain scratch (no per-cycle allocation).
    outbuf: Vec<NetMsg>,
    /// The shard's indexed pending-event queue, lent from
    /// `System::shard_queues` so its bucket storage is reused across
    /// runs. Shard-local id layout over the owned slices: cores
    /// `0..n`, L1s `n..2n`, L2s `2n..3n`, memory controllers
    /// `3n..3n + m`.
    queue: &'a mut WakeQueue,
    /// Scratch id sets reused by every shard cycle (no per-cycle
    /// allocation): queue pops, then per-class candidate lists.
    due_ids: Vec<u32>,
    cand_core: Vec<u32>,
    drain_l1: Vec<u32>,
    tick_l2: Vec<u32>,
    drain_l2: Vec<u32>,
    drain_mem: Vec<u32>,
    /// Window-arrival scratch, swapped with the lane's arrival buffer
    /// at window start (kept on the shard so the inline and the
    /// worker-thread execution paths share it).
    arr_buf: Vec<NetMsg>,
    /// Injected stepper fault ([`tsocc_coherence::StepperFault`]):
    /// panic before executing any cycle at or after this cycle.
    /// `None` for a healthy shard.
    panic_at: Option<u64>,
}

impl Shard<'_> {
    /// Recomputes every cached value for the shard from component
    /// state and (re)builds the shard's wake queue — the per-shard
    /// analog of `System::prime_queue`, run once by the coordinator
    /// before the workers start. The one full scan of the run: every
    /// later shard cycle visits only due-or-touched components.
    fn prime(&mut self, now: Cycle) {
        let n = self.cores.len();
        self.queue.reset(3 * n + self.mems.len(), now.as_u64());
        let mut running = 0;
        for (i, core) in self.cores.iter().enumerate() {
            let done = core.is_done();
            self.core_done[i] = done;
            running += usize::from(!done);
            // Sampled at `now` so cores due at the window's very first
            // cycle are already in the queue.
            self.queue.set(i, core.next_event(now).as_u64());
        }
        self.running = running;
        let mut busy = 0;
        for (i, l1) in self.l1s.iter().enumerate() {
            self.l1_wake[i] = l1.next_event();
            self.l1_busy[i] = !l1.is_quiescent();
            busy += usize::from(self.l1_busy[i]);
            self.queue.set(n + i, self.l1_wake[i].as_u64());
        }
        for (i, l2) in self.l2s.iter().enumerate() {
            self.l2_wake[i] = l2.next_event();
            self.l2_busy[i] = !l2.is_quiescent();
            busy += usize::from(self.l2_busy[i]);
            self.queue.set(2 * n + i, self.l2_wake[i].as_u64());
        }
        for (j, mem) in self.mems.iter().enumerate() {
            self.mem_wake[j] = mem.next_event();
            self.mem_busy[j] = !mem.is_quiescent();
            busy += usize::from(self.mem_busy[j]);
            self.queue.set(3 * n + j, self.mem_wake[j].as_u64());
        }
        self.busy = busy;
        self.wake = self.queue.next_wake(now.as_u64());
    }

    /// Executes one simulated cycle for this shard: the reference
    /// stepper's phases with the reference conditions verbatim,
    /// restricted to the shard's **due-or-touched** components (the
    /// per-shard `System::step_indexed`), recording would-be mesh
    /// injections into `sends` instead of touching the mesh.
    fn process_cycle(&mut self, t: Cycle, arrivals: &mut Vec<NetMsg>, sends: &mut Vec<SendRec>) {
        self.gen += 1;
        let gen = self.gen;
        let n = self.cores.len();
        let (l1b, l2b, memb) = (n, 2 * n, 3 * n);

        // Components whose queued wake deadline has arrived; each is
        // re-armed below after its class phase runs.
        let mut due_ids = std::mem::take(&mut self.due_ids);
        let mut cand_core = std::mem::take(&mut self.cand_core);
        let mut drain_l1 = std::mem::take(&mut self.drain_l1);
        let mut tick_l2 = std::mem::take(&mut self.tick_l2);
        let mut drain_l2 = std::mem::take(&mut self.drain_l2);
        let mut drain_mem = std::mem::take(&mut self.drain_mem);
        due_ids.clear();
        cand_core.clear();
        drain_l1.clear();
        tick_l2.clear();
        drain_l2.clear();
        drain_mem.clear();
        self.queue.pop_due(t.as_u64(), &mut due_ids);
        for &id in &due_ids {
            let id = id as usize;
            if id < l1b {
                cand_core.push(id as u32);
            } else if id < l2b {
                drain_l1.push((id - l1b) as u32);
            } else if id < memb {
                drain_l2.push((id - l2b) as u32);
            } else {
                drain_mem.push((id - memb) as u32);
            }
        }

        // 1. Dispatch the window's arrivals (non-empty only at the
        // window's first cycle), preserving the coordinator's
        // deterministic delivery order per controller and recording
        // which components they touch.
        for nm in arrivals.drain(..) {
            match nm.dst {
                Agent::L1(i) => {
                    let i = i - self.tile_lo;
                    if self.l1_msg_gen[i] != gen {
                        cand_core.push(i as u32);
                    }
                    self.l1s[i].handle_message(t, nm.src, nm.msg);
                    self.l1_msg_gen[i] = gen;
                }
                Agent::L2(i) => {
                    let i = i - self.tile_lo;
                    if self.l2_msg_gen[i] != gen {
                        tick_l2.push(i as u32);
                        drain_l2.push(i as u32);
                    }
                    self.l2s[i].handle_message(t, nm.src, nm.msg);
                    self.l2_msg_gen[i] = gen;
                }
                Agent::Mem(j) => {
                    let j = j - self.mem_lo;
                    if self.mem_msg_gen[j] != gen {
                        drain_mem.push(j as u32);
                    }
                    self.mems[j].handle_message(t, nm.src, nm.msg);
                    self.mem_msg_gen[j] = gen;
                }
            }
        }

        // 2. Cores execute against their L1s. Condition verbatim from
        // the reference step; candidates outside the due/touched sets
        // would fail it anyway.
        cand_core.sort_unstable();
        cand_core.dedup();
        let next = t + 1;
        for &i in &cand_core {
            let i = i as usize;
            let core = &mut self.cores[i];
            if self.l1_msg_gen[i] == gen || core.next_event(t) <= t {
                core.tick(t, self.l1s[i].as_mut());
                self.l1_msg_gen[i] = gen;
            }
            let done = core.is_done();
            if done != self.core_done[i] {
                self.core_done[i] = done;
                if done {
                    self.running -= 1;
                } else {
                    self.running += 1;
                }
            }
            self.queue.set(i, core.next_event(next).as_u64());
        }

        // 3. Touched tiles advance (queued-request replay).
        tick_l2.sort_unstable();
        tick_l2.dedup();
        for &i in &tick_l2 {
            let i = i as usize;
            if self.l2_msg_gen[i] == gen {
                self.l2s[i].tick(t);
            }
        }

        // 4. Drain ready outboxes — ascending index within each class —
        // tagging each message with its global drain position for the
        // coordinator's ordered replay.
        drain_l1.extend_from_slice(&cand_core);
        drain_l1.sort_unstable();
        drain_l1.dedup();
        for &i in &drain_l1 {
            let i = i as usize;
            if self.l1_msg_gen[i] == gen || self.l1_wake[i] <= t {
                let l1 = &mut self.l1s[i];
                l1.drain_outbox(t, &mut self.outbuf);
                for nm in self.outbuf.drain(..) {
                    sends.push(SendRec {
                        cycle: t.as_u64(),
                        class: 0,
                        idx: (self.tile_lo + i) as u32,
                        msg: nm,
                    });
                }
                let busy = !l1.is_quiescent();
                if busy != self.l1_busy[i] {
                    self.l1_busy[i] = busy;
                    if busy {
                        self.busy += 1;
                    } else {
                        self.busy -= 1;
                    }
                }
                self.l1_wake[i] = l1.next_event();
                self.queue.set(l1b + i, self.l1_wake[i].as_u64());
            }
        }
        drain_l2.sort_unstable();
        drain_l2.dedup();
        for &i in &drain_l2 {
            let i = i as usize;
            if self.l2_msg_gen[i] == gen || self.l2_wake[i] <= t {
                let l2 = &mut self.l2s[i];
                l2.drain_outbox(t, &mut self.outbuf);
                for nm in self.outbuf.drain(..) {
                    sends.push(SendRec {
                        cycle: t.as_u64(),
                        class: 1,
                        idx: (self.tile_lo + i) as u32,
                        msg: nm,
                    });
                }
                let busy = !l2.is_quiescent();
                if busy != self.l2_busy[i] {
                    self.l2_busy[i] = busy;
                    if busy {
                        self.busy += 1;
                    } else {
                        self.busy -= 1;
                    }
                }
                self.l2_wake[i] = l2.next_event();
                self.queue.set(l2b + i, self.l2_wake[i].as_u64());
            }
        }
        drain_mem.sort_unstable();
        drain_mem.dedup();
        for &j in &drain_mem {
            let j = j as usize;
            if self.mem_msg_gen[j] == gen || self.mem_wake[j] <= t {
                let mem = &mut self.mems[j];
                mem.drain_outbox(t, &mut self.outbuf);
                for nm in self.outbuf.drain(..) {
                    sends.push(SendRec {
                        cycle: t.as_u64(),
                        class: 2,
                        idx: (self.mem_lo + j) as u32,
                        msg: nm,
                    });
                }
                let busy = !mem.is_quiescent();
                if busy != self.mem_busy[j] {
                    self.mem_busy[j] = busy;
                    if busy {
                        self.busy += 1;
                    } else {
                        self.busy -= 1;
                    }
                }
                self.mem_wake[j] = mem.next_event();
                self.queue.set(memb + j, self.mem_wake[j].as_u64());
            }
        }
        // The queue minimum (with the floor capped at the next
        // executable cycle) replaces the full-scan wake minimum.
        self.wake = self.queue.next_wake(next.as_u64());

        self.due_ids = due_ids;
        self.cand_core = cand_core;
        self.drain_l1 = drain_l1;
        self.tick_l2 = tick_l2;
        self.drain_l2 = drain_l2;
        self.drain_mem = drain_mem;
    }
}

/// Executes one window for one shard: the shard's due cycles within
/// `[t0, end)`, event-driven at shard granularity (idle shard cycles
/// are skipped via the shard's wake queue), with results published
/// into the lane. Called from a worker thread or — for the first (or,
/// on a host without spare parallelism, every) participating shard —
/// inline on the coordinator thread; the two paths are identical.
fn run_window(shard: &mut Shard<'_>, lane: &Mutex<Lane>, t0: u64, end: u64) {
    let mut arrivals = std::mem::take(&mut shard.arr_buf);
    let mut lane_g = plock(lane);
    std::mem::swap(&mut arrivals, &mut lane_g.arrivals);
    lane_g.processed = 0;
    // Arrivals force the first cycle; otherwise jump straight to
    // the shard's next self-driven wake.
    let mut t = if arrivals.is_empty() {
        shard.wake.max(t0)
    } else {
        t0
    };
    while t < end {
        if let Some(at) = shard.panic_at {
            if t >= at {
                panic!("injected stepper fault: shard worker panics at cycle {t}");
            }
        }
        shard.process_cycle(Cycle::new(t), &mut arrivals, &mut lane_g.sends);
        lane_g.processed += 1;
        lane_g.last_processed = t;
        t = shard.wake.max(t + 1);
    }
    lane_g.wake = shard.wake;
    lane_g.running = shard.running;
    lane_g.busy = shard.busy;
    drop(lane_g);
    shard.arr_buf = arrivals;
}

/// The worker loop: waits for an assigned window, runs it, reports
/// done and sleeps until the next assignment. The shard lives in a
/// mutex cell so the coordinator can also run windows for it inline;
/// the gate protocol guarantees the lock is never contended.
///
/// A panic inside the window — a simulator bug or an injected
/// [`tsocc_coherence::StepperFault`] — is contained here: the flag is
/// raised for the coordinator and `Done` is still posted, so the gate
/// protocol never wedges on a dead worker. The coordinator abandons
/// the parallel run and the caller degrades to a serial re-run.
fn worker(shard: &Mutex<Shard<'_>>, lane: &Mutex<Lane>, gate: &Gate, panicked: &AtomicBool) {
    while let Some((t0, end)) = gate.await_window() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_window(&mut plock(shard), lane, t0, end);
        }));
        if outcome.is_err() {
            panicked.store(true, Ordering::SeqCst);
        }
        gate.post(Cmd::Done);
    }
}

/// Splits `slice` into consecutive chunks of the given sizes.
fn split_sizes<'a, T>(mut slice: &'a mut [T], sizes: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let (head, tail) = slice.split_at_mut(n);
        out.push(head);
        slice = tail;
    }
    debug_assert!(slice.is_empty(), "chunk sizes must cover the slice");
    out
}

/// Sizes of `n` items split into `parts` contiguous chunks, remainder
/// spread over the leading chunks.
fn chunk_sizes(n: usize, parts: usize) -> Vec<usize> {
    let base = n / parts;
    let rem = n % parts;
    (0..parts).map(|i| base + usize::from(i < rem)).collect()
}

fn router_of(topo: &MeshTopology, agent: Agent) -> usize {
    match agent {
        Agent::L1(i) | Agent::L2(i) => i,
        Agent::Mem(j) => topo.corners()[j % 4],
    }
}

impl System {
    /// The sharded conservative-parallel run loop. Bit-identical to
    /// [`System::run_reference`] in every simulated outcome for any
    /// worker count (see the module docs for the argument); host-side
    /// metrics (`steps_executed`, scheduler counters) naturally differ.
    pub(super) fn run_parallel(
        &mut self,
        max_cycles: u64,
        shards: usize,
    ) -> Result<RunStats, RunError> {
        let n_tiles = self.l2s.len();
        let workers = Stepper::ParallelShards { shards }.effective_shards(n_tiles);
        // The trace sink records the serial interleaving; windowed
        // execution would reorder its lines (simulated outcomes are
        // identical, recorded order is not), so tracing — like a
        // degenerate worker count — falls back to the serial scheduler.
        if workers <= 1 || self.trace.is_enabled() || self.cores.len() != n_tiles {
            return self.run_event_driven(max_cycles);
        }

        // Entry snapshot for graceful degradation: if a shard worker
        // panics mid-run the parallel machine state is untrustworthy,
        // so the system is rebuilt from this and re-run on the serial
        // reference stepper. Only a fresh machine can be replayed; a
        // resumed run has in-flight state no snapshot covers (and in
        // practice every run starts fresh).
        let snapshot = if self.now == Cycle::ZERO && self.steps == 0 {
            Some((
                self.cores
                    .iter()
                    .map(|c| c.program().clone())
                    .collect::<Vec<Program>>(),
                self.memory_image(),
            ))
        } else {
            None
        };
        let stepper_fault = self.cfg.faults.stepper;
        let panicked = AtomicBool::new(false);

        let tile_sizes = chunk_sizes(n_tiles, workers);
        let mem_sizes = chunk_sizes(self.mems.len(), workers);
        let mut shard_of_tile = vec![0u32; n_tiles];
        let mut shard_of_mem = vec![0u32; self.mems.len()];
        {
            let (mut t, mut m) = (0, 0);
            for w in 0..workers {
                for _ in 0..tile_sizes[w] {
                    shard_of_tile[t] = w as u32;
                    t += 1;
                }
                for _ in 0..mem_sizes[w] {
                    shard_of_mem[m] = w as u32;
                    m += 1;
                }
            }
        }

        // Queue storage is kept on the system and lent to the shards,
        // so repeated parallel runs reuse the bucket allocations.
        if self.shard_queues.len() < workers {
            self.shard_queues.resize_with(workers, || WakeQueue::new(0));
        }

        // Split the machine into disjoint &mut shard views.
        let System {
            cores,
            l1s,
            l2s,
            mems,
            mesh,
            cfg,
            topo,
            now,
            steps,
            arrivals,
            l1_msg_gen,
            l2_msg_gen,
            mem_msg_gen,
            l1_wake,
            l2_wake,
            mem_wake,
            l1_busy,
            l2_busy,
            mem_busy,
            core_done,
            shard_queues,
            ..
        } = self;
        let topo = *topo;
        let start_gen = *steps;
        let t_start = now.as_u64();

        let mut cores_s = split_sizes(cores, &tile_sizes).into_iter();
        let mut l1s_s = split_sizes(l1s, &tile_sizes).into_iter();
        let mut l2s_s = split_sizes(l2s, &tile_sizes).into_iter();
        let mut l1g_s = split_sizes(l1_msg_gen, &tile_sizes).into_iter();
        let mut l2g_s = split_sizes(l2_msg_gen, &tile_sizes).into_iter();
        let mut l1w_s = split_sizes(l1_wake, &tile_sizes).into_iter();
        let mut l2w_s = split_sizes(l2_wake, &tile_sizes).into_iter();
        let mut l1b_s = split_sizes(l1_busy, &tile_sizes).into_iter();
        let mut l2b_s = split_sizes(l2_busy, &tile_sizes).into_iter();
        let mut done_s = split_sizes(core_done, &tile_sizes).into_iter();
        let mut mems_s = split_sizes(mems, &mem_sizes).into_iter();
        let mut memg_s = split_sizes(mem_msg_gen, &mem_sizes).into_iter();
        let mut memw_s = split_sizes(mem_wake, &mem_sizes).into_iter();
        let mut memb_s = split_sizes(mem_busy, &mem_sizes).into_iter();
        let mut queue_s = shard_queues[..workers].iter_mut();

        let mut shards_v = Vec::with_capacity(workers);
        let (mut tile_lo, mut mem_lo) = (0, 0);
        for w in 0..workers {
            let mut sh = Shard {
                tile_lo,
                cores: cores_s.next().unwrap(),
                l1s: l1s_s.next().unwrap(),
                l2s: l2s_s.next().unwrap(),
                l1_msg_gen: l1g_s.next().unwrap(),
                l2_msg_gen: l2g_s.next().unwrap(),
                l1_wake: l1w_s.next().unwrap(),
                l2_wake: l2w_s.next().unwrap(),
                l1_busy: l1b_s.next().unwrap(),
                l2_busy: l2b_s.next().unwrap(),
                core_done: done_s.next().unwrap(),
                mem_lo,
                mems: mems_s.next().unwrap(),
                mem_msg_gen: memg_s.next().unwrap(),
                mem_wake: memw_s.next().unwrap(),
                mem_busy: memb_s.next().unwrap(),
                gen: start_gen,
                wake: u64::MAX,
                running: 0,
                busy: 0,
                outbuf: Vec::new(),
                queue: queue_s.next().unwrap(),
                due_ids: Vec::new(),
                cand_core: Vec::new(),
                drain_l1: Vec::new(),
                tick_l2: Vec::new(),
                drain_l2: Vec::new(),
                drain_mem: Vec::new(),
                arr_buf: Vec::new(),
                // An out-of-range fault shard clamps to the last
                // shard, so the fault always lands somewhere.
                panic_at: stepper_fault
                    .filter(|f| f.shard.min(workers - 1) == w)
                    .map(|f| f.at_cycle),
            };
            sh.prime(Cycle::new(t_start));
            tile_lo += tile_sizes[w];
            mem_lo += mem_sizes[w];
            shards_v.push(sh);
        }

        let lanes: Vec<Mutex<Lane>> = shards_v
            .iter()
            .map(|sh| {
                Mutex::new(Lane {
                    wake: sh.wake,
                    running: sh.running,
                    busy: sh.busy,
                    ..Lane::default()
                })
            })
            .collect();
        let gates: Vec<Gate> = (0..workers).map(|_| Gate::new()).collect();

        // Coordinator-cached copy of each lane's (wake, running, busy):
        // a shard that sits out a window provably leaves its lane
        // unchanged, so the coordinator reads only participating lanes
        // and keeps global sums over these caches.
        let mut wake_c: Vec<u64> = shards_v.iter().map(|sh| sh.wake).collect();
        let mut running_c: Vec<usize> = shards_v.iter().map(|sh| sh.running).collect();
        let mut busy_c: Vec<usize> = shards_v.iter().map(|sh| sh.busy).collect();

        let lookahead = cfg.noc.min_message_latency();
        let mut total_steps = 0u64;
        let mut arr = std::mem::take(arrivals);

        // Shards live in mutex cells so windows can run on a worker
        // thread or inline on the coordinator; the gate protocol keeps
        // every lock acquisition uncontended.
        let cells: Vec<Mutex<Shard<'_>>> = shards_v.into_iter().map(Mutex::new).collect();
        // On a host with a single CPU, handing windows to worker
        // threads only adds context switches (nothing can overlap);
        // the coordinator then runs every participating shard inline.
        // With spare CPUs, the coordinator runs the first participant
        // itself and overlaps with the dispatched rest.
        let overlap = std::thread::available_parallelism().map_or(1, |n| n.get()) > 1;

        let panicked = &panicked;
        let result: Result<u64, RunError> = std::thread::scope(|scope| {
            for ((cell, lane), gate) in cells.iter().zip(lanes.iter()).zip(gates.iter()) {
                scope.spawn(move || worker(cell, lane, gate, panicked));
            }

            let mut t_now = t_start;
            let mut last_active = t_start;
            let mut g_running: usize = running_c.iter().sum();
            let mut g_busy: usize;
            let mut g_wake: u64;
            let mut sends: Vec<SendRec> = Vec::new();
            let mut parts: Vec<usize> = Vec::with_capacity(workers);
            let mut is_part = vec![false; workers];

            let outcome = loop {
                // Serial-loop-identical termination checks, at the
                // cycles the serial loop would perform them.
                if t_now.saturating_sub(last_active) > DEADLOCK_WINDOW {
                    // `System::run` enriches the outstanding-work
                    // fields from the post-run hang report.
                    break Err(RunError::Deadlock {
                        stalled_at: t_now,
                        cores_unfinished: g_running,
                        busy_controllers: 0,
                        msgs_in_flight: 0,
                        first_blocked_line: None,
                    });
                }
                if t_now >= max_cycles {
                    break Err(RunError::Timeout { max_cycles });
                }

                // Deliver this cycle's arrivals to their owning shards
                // (in mesh pop order — per-controller order is what
                // dispatch order affects, and each controller's
                // messages stay in sequence within one lane). A shard
                // with an arrival must participate in the window.
                arr.clear();
                mesh.deliver_into(Cycle::new(t_now), &mut arr);
                let delivered = !arr.is_empty();
                parts.clear();
                for (_router, nm) in arr.drain(..) {
                    let s = match nm.dst {
                        Agent::L1(i) | Agent::L2(i) => shard_of_tile[i],
                        Agent::Mem(j) => shard_of_mem[j],
                    } as usize;
                    if !is_part[s] {
                        is_part[s] = true;
                        parts.push(s);
                    }
                    plock(&lanes[s]).arrivals.push(nm);
                }

                // The conservative window: nothing in flight or newly
                // injected can land before `t_now + lookahead` or the
                // (post-delivery) next arrival, and the serial loop's
                // deadlock/timeout horizons bound how far it would run.
                let next_arr = mesh.next_arrival().map(Cycle::as_u64).unwrap_or(u64::MAX);
                let end = (t_now + lookahead)
                    .min(next_arr)
                    .min(last_active + DEADLOCK_WINDOW + 1)
                    .min(max_cycles);
                debug_assert!(end > t_now);

                // A shard with no arrivals and no queued wake inside
                // the window would execute zero cycles and leave its
                // lane untouched — skip waking it entirely. Only the
                // remaining shards are dispatched (and later merged).
                for (s, &w) in wake_c.iter().enumerate() {
                    if w < end && !is_part[s] {
                        is_part[s] = true;
                        parts.push(s);
                    }
                }
                let dispatched = if overlap {
                    parts.get(1..).unwrap_or(&[])
                } else {
                    &[]
                };
                for &s in dispatched {
                    gates[s].post(Cmd::Go { start: t_now, end });
                }
                let inline = if overlap {
                    parts.get(..1).unwrap_or(&[])
                } else {
                    &parts[..]
                };
                for &s in inline {
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        run_window(&mut plock(&cells[s]), &lanes[s], t_now, end);
                    }));
                    if outcome.is_err() {
                        panicked.store(true, Ordering::SeqCst);
                    }
                }
                for &s in dispatched {
                    gates[s].wait_done();
                }
                if panicked.load(Ordering::SeqCst) {
                    // A shard died mid-window; its lane and the machine
                    // state it owned are unreliable. Abandon the
                    // parallel run — the tail of `run_parallel` checks
                    // the flag (before the error value, which is a
                    // placeholder here) and degrades to a serial
                    // re-run from the entry snapshot.
                    break Err(RunError::Timeout { max_cycles });
                }

                // Merge participating lanes: ledgers, wake minimum,
                // send records.
                let mut last_proc: Option<u64> = None;
                for &s in &parts {
                    let mut g = plock(&lanes[s]);
                    sends.append(&mut g.sends);
                    wake_c[s] = g.wake;
                    running_c[s] = g.running;
                    busy_c[s] = g.busy;
                    if g.processed > 0 {
                        total_steps += g.processed;
                        last_proc =
                            Some(last_proc.map_or(g.last_processed, |m| m.max(g.last_processed)));
                    }
                    is_part[s] = false;
                }
                g_running = running_c.iter().sum();
                g_busy = busy_c.iter().sum();
                g_wake = wake_c.iter().copied().min().unwrap_or(u64::MAX);

                // Replay the window's injections in the serial drain
                // order; stable sort preserves each controller's own
                // outbox sequence.
                sends.sort_by_key(|r| (r.cycle, r.class, r.idx));
                let mut last_send = None;
                for rec in sends.drain(..) {
                    let src = router_of(&topo, rec.msg.src);
                    let dst = router_of(&topo, rec.msg.dst);
                    let vnet = rec.msg.msg.vnet();
                    let flits = cfg.noc.flits_for_payload(rec.msg.msg.payload_bytes());
                    // Same fault-injected jitter as the serial send
                    // sites: the hash depends only on (cycle, src,
                    // dst, vnet), so every stepper derives the same
                    // delay for the same message.
                    let extra = cfg.faults.noc_extra_delay(rec.cycle, src, dst, vnet);
                    mesh.send_with_delay(
                        Cycle::new(rec.cycle),
                        src,
                        dst,
                        vnet,
                        flits,
                        extra,
                        rec.msg,
                    );
                    last_send = Some(rec.cycle);
                }

                // Activity tracking, reference-equivalent: a step at
                // cycle `c` that delivered or injected makes
                // `last_active = c + 1`.
                if delivered {
                    last_active = last_active.max(t_now + 1);
                }
                if let Some(c) = last_send {
                    last_active = last_active.max(c + 1);
                }

                if g_running == 0 && g_busy == 0 && mesh.is_idle() {
                    // Finished: the serial loops return `T + 1` where
                    // `T` is the last executed cycle (the machine was
                    // already finished at entry if nothing ran).
                    break Ok(last_proc.map_or(t_now + 1, |t| t + 1));
                }

                // Jump to the next cycle with possible work — all of
                // these are >= `end` (workers ran every due cycle in
                // the window), so windows never overlap.
                let next_arr = mesh.next_arrival().map(Cycle::as_u64).unwrap_or(u64::MAX);
                t_now = g_wake
                    .min(next_arr)
                    .min(last_active.saturating_add(DEADLOCK_WINDOW + 1))
                    .min(max_cycles);
            };

            // Release the workers to exit, then the scope joins them.
            for gate in &gates {
                gate.post(Cmd::Exit);
            }
            outcome
        });

        *arrivals = arr;
        *steps += total_steps;
        *now = Cycle::new(match &result {
            Ok(final_cycle) => *final_cycle,
            Err(RunError::Deadlock { stalled_at, .. }) => *stalled_at,
            Err(RunError::Timeout { .. }) => max_cycles,
        });

        if panicked.load(Ordering::SeqCst) {
            // Graceful degradation: the flag outranks `result` (which
            // holds a placeholder error when a shard died).
            return self.degrade_and_rerun(snapshot, max_cycles);
        }
        result.map(|_| self.collect_stats())
    }

    /// Graceful degradation after a shard-worker panic: the parallel
    /// machine state is untrustworthy, so rebuild the system from the
    /// entry snapshot on [`Stepper::Reference`] (with any injected
    /// stepper fault disarmed) and re-run serially. Because every
    /// stepper is bit-identical in simulated outcomes, the re-run's
    /// stats and final memory equal a clean run's; only
    /// [`RunStats::degraded`] records that the fallback happened.
    fn degrade_and_rerun(
        &mut self,
        snapshot: Option<EntrySnapshot>,
        max_cycles: u64,
    ) -> Result<RunStats, RunError> {
        let Some((programs, image)) = snapshot else {
            // A resumed run has no replayable snapshot; surface the
            // failure instead of silently fabricating state.
            panic!("shard worker panicked on a resumed run; no entry snapshot to degrade from");
        };
        let mut cfg = self.cfg.clone();
        cfg.stepper = Stepper::Reference;
        cfg.faults.stepper = None;
        let mut fresh = System::new(cfg, programs);
        let shape = fresh.cfg.shape();
        let n_mem = fresh.cfg.n_mem;
        for (line, data) in image {
            let ctrl = shape.home_tile(line) % n_mem;
            fresh.mems[ctrl].memory_mut().write_line(line, data);
        }
        fresh.degraded_events = self.degraded_events + 1;
        let result = fresh.run(max_cycles);
        *self = fresh;
        result
    }
}
