//! The conservative-parallel sharded run loop behind
//! [`Stepper::ParallelShards`](crate::Stepper::ParallelShards).
//!
//! # Design
//!
//! Tiles (a core + its L1 + its L2 slice) are split into contiguous
//! shards, one scoped worker thread each; memory controllers are
//! chunked across the same shards. The coordinator owns the mesh and
//! simulated time and advances the machine in **windows** of cycles
//! bounded by the mesh's minimum message latency
//! ([`tsocc_noc::NocConfig::min_message_latency`]): a message injected
//! at cycle `t` cannot arrive anywhere before `t + lookahead`, so
//! within a window `[T0, E)` with `E <= T0 + lookahead` no component
//! can observe anything another shard does — each worker can execute
//! its shard's cycles of the window with no synchronization at all.
//! This is classic conservative parallel discrete-event simulation
//! (null-message-free, barrier-per-window).
//!
//! # Determinism
//!
//! Bit-identical results to the serial steppers — on **any** worker
//! count — follow from three invariants:
//!
//! 1. Inside a window, each worker executes exactly the reference
//!    stepper's per-cycle phases (deliver, core tick, tile tick,
//!    drain), restricted to its shard, with the reference conditions
//!    verbatim. Shards are disjoint and windows end before any
//!    in-flight or newly injected message can arrive, so restriction
//!    changes nothing.
//! 2. Workers never touch the mesh. Every outgoing message is recorded
//!    with its injection cycle and its global drain position
//!    `(class, controller index)`; after the window the coordinator
//!    replays the merged record **stably sorted by that position** —
//!    the exact injection order the serial steppers produce — so the
//!    mesh's order-sensitive link-contention and tie-break state
//!    evolves identically.
//! 3. Window boundaries are capped at the next in-flight arrival and
//!    at the serial loop's deadlock/timeout horizons, so arrivals,
//!    [`RunError::Timeout`] and [`RunError::Deadlock`] are observed at
//!    exactly the cycles the serial steppers observe them.
//!
//! `tests/parallel_stepper_parity.rs` checks the full `RunStats` and
//! final memory image against [`Stepper::Reference`] across the sweep
//! matrix; the in-tree tests below cover shard-count edge cases.
//!
//! [`Stepper::Reference`]: crate::Stepper::Reference

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use tsocc_coherence::{Agent, CacheController, L1Controller, L2Controller, MemCtrl, NetMsg};
use tsocc_cpu::Core;
use tsocc_noc::MeshTopology;
use tsocc_sim::Cycle;

use super::{RunError, System, DEADLOCK_WINDOW};
use crate::stats::RunStats;

/// One outgoing message, tagged with its injection cycle and its
/// global drain position so the coordinator can replay the serial
/// steppers' exact mesh injection order: ascending cycle, then class
/// (L1 = 0, L2 = 1, memory = 2), then controller index, preserving
/// each controller's own outbox order (the sort is stable).
struct SendRec {
    cycle: u64,
    class: u8,
    idx: u32,
    msg: NetMsg,
}

/// Coordinator/worker mailbox, one per shard. Locked by the owner of
/// the current phase only: workers hold it for the whole window,
/// the coordinator between windows — the barriers hand it off.
#[derive(Default)]
struct Lane {
    /// Messages arriving at the window's first cycle (in, from the
    /// coordinator).
    arrivals: Vec<NetMsg>,
    /// Messages injected during the window (out, to the coordinator).
    sends: Vec<SendRec>,
    /// The shard's earliest self-driven wake cycle after the window.
    wake: u64,
    /// Unfinished cores in the shard.
    running: usize,
    /// Non-quiescent controllers in the shard.
    busy: usize,
    /// Cycles the shard actually executed this window.
    processed: u64,
    /// The last cycle index the shard executed this window (valid only
    /// when `processed > 0`).
    last_processed: u64,
}

/// Shared coordinator/worker control block.
struct Ctl {
    /// Opens a window (or releases workers to exit when `run` drops).
    start: Barrier,
    /// Closes a window: every worker has published its lane.
    done: Barrier,
    window_start: AtomicU64,
    window_end: AtomicU64,
    run: AtomicBool,
}

/// One worker's disjoint slice of the machine: a contiguous tile range
/// (cores, L1s, L2s and their cached-state vectors) plus a chunk of
/// the memory controllers.
struct Shard<'a> {
    /// Global index of the first owned tile.
    tile_lo: usize,
    cores: &'a mut [Core],
    l1s: &'a mut [Box<dyn L1Controller>],
    l2s: &'a mut [Box<dyn L2Controller>],
    l1_msg_gen: &'a mut [u64],
    l2_msg_gen: &'a mut [u64],
    l1_wake: &'a mut [Cycle],
    l2_wake: &'a mut [Cycle],
    l1_busy: &'a mut [bool],
    l2_busy: &'a mut [bool],
    core_done: &'a mut [bool],
    /// Global index of the first owned memory controller.
    mem_lo: usize,
    mems: &'a mut [MemCtrl],
    mem_msg_gen: &'a mut [u64],
    mem_wake: &'a mut [Cycle],
    mem_busy: &'a mut [bool],
    /// Local step-generation counter. Starts at the system's serial
    /// `steps` so stamps written here stay below every future serial
    /// generation; each shard counts independently (stamps are only
    /// ever compared shard-locally while the parallel run lasts).
    gen: u64,
    /// Earliest cycle any owned component can act on its own.
    wake: u64,
    running: usize,
    busy: usize,
    /// Drain scratch (no per-cycle allocation).
    outbuf: Vec<NetMsg>,
}

impl Shard<'_> {
    /// Recomputes every cached value for the shard from component
    /// state — the per-shard analog of `System::prime_queue`, run once
    /// by the coordinator before the workers start.
    fn prime(&mut self, now: Cycle) {
        let mut running = 0;
        let mut wake = Cycle::MAX;
        for (i, core) in self.cores.iter().enumerate() {
            let done = core.is_done();
            self.core_done[i] = done;
            running += usize::from(!done);
            // Sampled at `now` so cores due at the window's very first
            // cycle are already covered by `wake`.
            wake = wake.min(core.next_event(now));
        }
        self.running = running;
        let mut busy = 0;
        for (i, l1) in self.l1s.iter().enumerate() {
            self.l1_wake[i] = l1.next_event();
            self.l1_busy[i] = !l1.is_quiescent();
            busy += usize::from(self.l1_busy[i]);
            wake = wake.min(self.l1_wake[i]);
        }
        for (i, l2) in self.l2s.iter().enumerate() {
            self.l2_wake[i] = l2.next_event();
            self.l2_busy[i] = !l2.is_quiescent();
            busy += usize::from(self.l2_busy[i]);
            wake = wake.min(self.l2_wake[i]);
        }
        for (j, mem) in self.mems.iter().enumerate() {
            self.mem_wake[j] = mem.next_event();
            self.mem_busy[j] = !mem.is_quiescent();
            busy += usize::from(self.mem_busy[j]);
            wake = wake.min(self.mem_wake[j]);
        }
        self.busy = busy;
        self.wake = wake.as_u64();
    }

    /// Executes one simulated cycle for this shard: the reference
    /// stepper's phases with the reference conditions verbatim,
    /// restricted to the shard, recording would-be mesh injections
    /// into `sends` instead of touching the mesh.
    fn process_cycle(&mut self, t: Cycle, arrivals: &mut Vec<NetMsg>, sends: &mut Vec<SendRec>) {
        self.gen += 1;
        let gen = self.gen;

        // 1. Dispatch the window's arrivals (non-empty only at the
        // window's first cycle), preserving the coordinator's
        // deterministic delivery order per controller.
        for nm in arrivals.drain(..) {
            match nm.dst {
                Agent::L1(i) => {
                    let i = i - self.tile_lo;
                    self.l1s[i].handle_message(t, nm.src, nm.msg);
                    self.l1_msg_gen[i] = gen;
                }
                Agent::L2(i) => {
                    let i = i - self.tile_lo;
                    self.l2s[i].handle_message(t, nm.src, nm.msg);
                    self.l2_msg_gen[i] = gen;
                }
                Agent::Mem(j) => {
                    let j = j - self.mem_lo;
                    self.mems[j].handle_message(t, nm.src, nm.msg);
                    self.mem_msg_gen[j] = gen;
                }
            }
        }

        // 2. Cores execute against their L1s.
        let next = t + 1;
        let mut wake = Cycle::MAX;
        let mut running = 0;
        for (i, (core, l1)) in self.cores.iter_mut().zip(self.l1s.iter_mut()).enumerate() {
            if self.l1_msg_gen[i] == gen || core.next_event(t) <= t {
                core.tick(t, l1.as_mut());
                self.l1_msg_gen[i] = gen;
            }
            let done = core.is_done();
            self.core_done[i] = done;
            running += usize::from(!done);
            wake = wake.min(core.next_event(next));
        }
        self.running = running;

        // 3. Touched tiles advance (queued-request replay).
        for (i, l2) in self.l2s.iter_mut().enumerate() {
            if self.l2_msg_gen[i] == gen {
                l2.tick(t);
            }
        }

        // 4. Drain ready outboxes, tagging each message with its global
        // drain position for the coordinator's ordered replay.
        let mut busy = 0;
        for (i, l1) in self.l1s.iter_mut().enumerate() {
            if self.l1_msg_gen[i] == gen || self.l1_wake[i] <= t {
                l1.drain_outbox(t, &mut self.outbuf);
                for nm in self.outbuf.drain(..) {
                    sends.push(SendRec {
                        cycle: t.as_u64(),
                        class: 0,
                        idx: (self.tile_lo + i) as u32,
                        msg: nm,
                    });
                }
                self.l1_busy[i] = !l1.is_quiescent();
                self.l1_wake[i] = l1.next_event();
            }
            busy += usize::from(self.l1_busy[i]);
            wake = wake.min(self.l1_wake[i]);
        }
        for (i, l2) in self.l2s.iter_mut().enumerate() {
            if self.l2_msg_gen[i] == gen || self.l2_wake[i] <= t {
                l2.drain_outbox(t, &mut self.outbuf);
                for nm in self.outbuf.drain(..) {
                    sends.push(SendRec {
                        cycle: t.as_u64(),
                        class: 1,
                        idx: (self.tile_lo + i) as u32,
                        msg: nm,
                    });
                }
                self.l2_busy[i] = !l2.is_quiescent();
                self.l2_wake[i] = l2.next_event();
            }
            busy += usize::from(self.l2_busy[i]);
            wake = wake.min(self.l2_wake[i]);
        }
        for (j, mem) in self.mems.iter_mut().enumerate() {
            if self.mem_msg_gen[j] == gen || self.mem_wake[j] <= t {
                mem.drain_outbox(t, &mut self.outbuf);
                for nm in self.outbuf.drain(..) {
                    sends.push(SendRec {
                        cycle: t.as_u64(),
                        class: 2,
                        idx: (self.mem_lo + j) as u32,
                        msg: nm,
                    });
                }
                self.mem_busy[j] = !mem.is_quiescent();
                self.mem_wake[j] = mem.next_event();
            }
            busy += usize::from(self.mem_busy[j]);
            wake = wake.min(self.mem_wake[j]);
        }
        self.busy = busy;
        self.wake = wake.as_u64();
    }
}

/// The worker loop: waits for a window, executes the shard's due
/// cycles within it (event-driven at shard granularity — idle shard
/// cycles are skipped via the shard's own wake minimum), publishes the
/// lane and waits for the next window.
fn worker(mut shard: Shard<'_>, lane: &Mutex<Lane>, ctl: &Ctl) {
    let mut arrivals: Vec<NetMsg> = Vec::new();
    loop {
        ctl.start.wait();
        if !ctl.run.load(Ordering::Acquire) {
            return;
        }
        let t0 = ctl.window_start.load(Ordering::Acquire);
        let end = ctl.window_end.load(Ordering::Acquire);
        let mut lane_g = lane.lock().unwrap();
        std::mem::swap(&mut arrivals, &mut lane_g.arrivals);
        lane_g.processed = 0;
        // Arrivals force the first cycle; otherwise jump straight to
        // the shard's next self-driven wake.
        let mut t = if arrivals.is_empty() {
            shard.wake.max(t0)
        } else {
            t0
        };
        while t < end {
            shard.process_cycle(Cycle::new(t), &mut arrivals, &mut lane_g.sends);
            lane_g.processed += 1;
            lane_g.last_processed = t;
            t = shard.wake.max(t + 1);
        }
        lane_g.wake = shard.wake;
        lane_g.running = shard.running;
        lane_g.busy = shard.busy;
        drop(lane_g);
        ctl.done.wait();
    }
}

/// Splits `slice` into consecutive chunks of the given sizes.
fn split_sizes<'a, T>(mut slice: &'a mut [T], sizes: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let (head, tail) = slice.split_at_mut(n);
        out.push(head);
        slice = tail;
    }
    debug_assert!(slice.is_empty(), "chunk sizes must cover the slice");
    out
}

/// Sizes of `n` items split into `parts` contiguous chunks, remainder
/// spread over the leading chunks.
fn chunk_sizes(n: usize, parts: usize) -> Vec<usize> {
    let base = n / parts;
    let rem = n % parts;
    (0..parts).map(|i| base + usize::from(i < rem)).collect()
}

fn router_of(topo: &MeshTopology, agent: Agent) -> usize {
    match agent {
        Agent::L1(i) | Agent::L2(i) => i,
        Agent::Mem(j) => topo.corners()[j % 4],
    }
}

impl System {
    /// The sharded conservative-parallel run loop. Bit-identical to
    /// [`System::run_reference`] in every simulated outcome for any
    /// worker count (see the module docs for the argument); host-side
    /// metrics (`steps_executed`, scheduler counters) naturally differ.
    pub(super) fn run_parallel(
        &mut self,
        max_cycles: u64,
        shards: usize,
    ) -> Result<RunStats, RunError> {
        let n_tiles = self.l2s.len();
        let workers = if shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            shards
        }
        .min(n_tiles);
        // The trace sink records the serial interleaving; windowed
        // execution would reorder its lines (simulated outcomes are
        // identical, recorded order is not), so tracing — like a
        // degenerate worker count — falls back to the serial scheduler.
        if workers <= 1 || self.trace.is_enabled() || self.cores.len() != n_tiles {
            return self.run_event_driven(max_cycles);
        }

        let tile_sizes = chunk_sizes(n_tiles, workers);
        let mem_sizes = chunk_sizes(self.mems.len(), workers);
        let mut shard_of_tile = vec![0u32; n_tiles];
        let mut shard_of_mem = vec![0u32; self.mems.len()];
        {
            let (mut t, mut m) = (0, 0);
            for w in 0..workers {
                for _ in 0..tile_sizes[w] {
                    shard_of_tile[t] = w as u32;
                    t += 1;
                }
                for _ in 0..mem_sizes[w] {
                    shard_of_mem[m] = w as u32;
                    m += 1;
                }
            }
        }

        // Split the machine into disjoint &mut shard views.
        let System {
            cores,
            l1s,
            l2s,
            mems,
            mesh,
            cfg,
            topo,
            now,
            steps,
            arrivals,
            l1_msg_gen,
            l2_msg_gen,
            mem_msg_gen,
            l1_wake,
            l2_wake,
            mem_wake,
            l1_busy,
            l2_busy,
            mem_busy,
            core_done,
            ..
        } = self;
        let topo = *topo;
        let start_gen = *steps;
        let t_start = now.as_u64();

        let mut cores_s = split_sizes(cores, &tile_sizes).into_iter();
        let mut l1s_s = split_sizes(l1s, &tile_sizes).into_iter();
        let mut l2s_s = split_sizes(l2s, &tile_sizes).into_iter();
        let mut l1g_s = split_sizes(l1_msg_gen, &tile_sizes).into_iter();
        let mut l2g_s = split_sizes(l2_msg_gen, &tile_sizes).into_iter();
        let mut l1w_s = split_sizes(l1_wake, &tile_sizes).into_iter();
        let mut l2w_s = split_sizes(l2_wake, &tile_sizes).into_iter();
        let mut l1b_s = split_sizes(l1_busy, &tile_sizes).into_iter();
        let mut l2b_s = split_sizes(l2_busy, &tile_sizes).into_iter();
        let mut done_s = split_sizes(core_done, &tile_sizes).into_iter();
        let mut mems_s = split_sizes(mems, &mem_sizes).into_iter();
        let mut memg_s = split_sizes(mem_msg_gen, &mem_sizes).into_iter();
        let mut memw_s = split_sizes(mem_wake, &mem_sizes).into_iter();
        let mut memb_s = split_sizes(mem_busy, &mem_sizes).into_iter();

        let mut shards_v = Vec::with_capacity(workers);
        let (mut tile_lo, mut mem_lo) = (0, 0);
        for w in 0..workers {
            let mut sh = Shard {
                tile_lo,
                cores: cores_s.next().unwrap(),
                l1s: l1s_s.next().unwrap(),
                l2s: l2s_s.next().unwrap(),
                l1_msg_gen: l1g_s.next().unwrap(),
                l2_msg_gen: l2g_s.next().unwrap(),
                l1_wake: l1w_s.next().unwrap(),
                l2_wake: l2w_s.next().unwrap(),
                l1_busy: l1b_s.next().unwrap(),
                l2_busy: l2b_s.next().unwrap(),
                core_done: done_s.next().unwrap(),
                mem_lo,
                mems: mems_s.next().unwrap(),
                mem_msg_gen: memg_s.next().unwrap(),
                mem_wake: memw_s.next().unwrap(),
                mem_busy: memb_s.next().unwrap(),
                gen: start_gen,
                wake: u64::MAX,
                running: 0,
                busy: 0,
                outbuf: Vec::new(),
            };
            sh.prime(Cycle::new(t_start));
            tile_lo += tile_sizes[w];
            mem_lo += mem_sizes[w];
            shards_v.push(sh);
        }

        let lanes: Vec<Mutex<Lane>> = shards_v
            .iter()
            .map(|sh| {
                Mutex::new(Lane {
                    wake: sh.wake,
                    running: sh.running,
                    busy: sh.busy,
                    ..Lane::default()
                })
            })
            .collect();
        let ctl = Ctl {
            start: Barrier::new(workers + 1),
            done: Barrier::new(workers + 1),
            window_start: AtomicU64::new(0),
            window_end: AtomicU64::new(0),
            run: AtomicBool::new(true),
        };

        let lookahead = cfg.noc.min_message_latency();
        let mut total_steps = 0u64;
        let mut arr = std::mem::take(arrivals);

        let result: Result<u64, RunError> = std::thread::scope(|scope| {
            for (sh, lane) in shards_v.into_iter().zip(lanes.iter()) {
                let ctl = &ctl;
                scope.spawn(move || worker(sh, lane, ctl));
            }

            let mut t_now = t_start;
            let mut last_active = t_start;
            // Only `g_running` can be read before the first merge (the
            // deadlock arm); busy/wake are recomputed per window.
            let mut g_running: usize = lanes.iter().map(|l| l.lock().unwrap().running).sum();
            let mut g_busy: usize;
            let mut g_wake: u64;
            let mut sends: Vec<SendRec> = Vec::new();

            let outcome = loop {
                // Serial-loop-identical termination checks, at the
                // cycles the serial loop would perform them.
                if t_now.saturating_sub(last_active) > DEADLOCK_WINDOW {
                    break Err(RunError::Deadlock {
                        stalled_at: t_now,
                        cores_unfinished: g_running,
                    });
                }
                if t_now >= max_cycles {
                    break Err(RunError::Timeout { max_cycles });
                }

                // Deliver this cycle's arrivals to their owning shards
                // (in mesh pop order — per-controller order is what
                // dispatch order affects, and each controller's
                // messages stay in sequence within one lane).
                arr.clear();
                mesh.deliver_into(Cycle::new(t_now), &mut arr);
                let delivered = !arr.is_empty();
                for (_router, nm) in arr.drain(..) {
                    let s = match nm.dst {
                        Agent::L1(i) | Agent::L2(i) => shard_of_tile[i],
                        Agent::Mem(j) => shard_of_mem[j],
                    } as usize;
                    lanes[s].lock().unwrap().arrivals.push(nm);
                }

                // The conservative window: nothing in flight or newly
                // injected can land before `t_now + lookahead` or the
                // (post-delivery) next arrival, and the serial loop's
                // deadlock/timeout horizons bound how far it would run.
                let next_arr = mesh.next_arrival().map(Cycle::as_u64).unwrap_or(u64::MAX);
                let end = (t_now + lookahead)
                    .min(next_arr)
                    .min(last_active + DEADLOCK_WINDOW + 1)
                    .min(max_cycles);
                debug_assert!(end > t_now);
                ctl.window_start.store(t_now, Ordering::Release);
                ctl.window_end.store(end, Ordering::Release);
                ctl.start.wait();
                // Workers execute the window.
                ctl.done.wait();

                // Merge lanes: ledgers, wake minimum, send records.
                (g_running, g_busy, g_wake) = (0, 0, u64::MAX);
                let mut last_proc: Option<u64> = None;
                for lane in &lanes {
                    let mut g = lane.lock().unwrap();
                    sends.append(&mut g.sends);
                    g_running += g.running;
                    g_busy += g.busy;
                    g_wake = g_wake.min(g.wake);
                    if g.processed > 0 {
                        total_steps += g.processed;
                        last_proc =
                            Some(last_proc.map_or(g.last_processed, |m| m.max(g.last_processed)));
                    }
                }

                // Replay the window's injections in the serial drain
                // order; stable sort preserves each controller's own
                // outbox sequence.
                sends.sort_by_key(|r| (r.cycle, r.class, r.idx));
                let mut last_send = None;
                for rec in sends.drain(..) {
                    let src = router_of(&topo, rec.msg.src);
                    let dst = router_of(&topo, rec.msg.dst);
                    let vnet = rec.msg.msg.vnet();
                    let flits = cfg.noc.flits_for_payload(rec.msg.msg.payload_bytes());
                    mesh.send(Cycle::new(rec.cycle), src, dst, vnet, flits, rec.msg);
                    last_send = Some(rec.cycle);
                }

                // Activity tracking, reference-equivalent: a step at
                // cycle `c` that delivered or injected makes
                // `last_active = c + 1`.
                if delivered {
                    last_active = last_active.max(t_now + 1);
                }
                if let Some(c) = last_send {
                    last_active = last_active.max(c + 1);
                }

                if g_running == 0 && g_busy == 0 && mesh.is_idle() {
                    // Finished: the serial loops return `T + 1` where
                    // `T` is the last executed cycle (the machine was
                    // already finished at entry if nothing ran).
                    break Ok(last_proc.map_or(t_now + 1, |t| t + 1));
                }

                // Jump to the next cycle with possible work — all of
                // these are >= `end` (workers ran every due cycle in
                // the window), so windows never overlap.
                let next_arr = mesh.next_arrival().map(Cycle::as_u64).unwrap_or(u64::MAX);
                t_now = g_wake
                    .min(next_arr)
                    .min(last_active.saturating_add(DEADLOCK_WINDOW + 1))
                    .min(max_cycles);
            };

            // Release the workers to exit, then the scope joins them.
            ctl.run.store(false, Ordering::Release);
            ctl.start.wait();
            outcome
        });

        *arrivals = arr;
        *steps += total_steps;
        *now = Cycle::new(match &result {
            Ok(final_cycle) => *final_cycle,
            Err(RunError::Deadlock { stalled_at, .. }) => *stalled_at,
            Err(RunError::Timeout { .. }) => max_cycles,
        });
        result.map(|_| self.collect_stats())
    }
}
