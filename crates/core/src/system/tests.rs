use tsocc_isa::{Asm, Program, Reg};
use tsocc_mem::Addr;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;

use super::*;
use crate::config::{Stepper, SystemConfig};

fn all_protocols() -> Vec<Protocol> {
    Protocol::paper_configs()
}

fn run_programs(protocol: Protocol, programs: Vec<Program>) -> (System, RunStats) {
    let n = programs.len().max(2);
    let cfg = SystemConfig::builder()
        .small()
        .cores(n)
        .protocol(protocol)
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, programs);
    let stats = sys
        .run(2_000_000)
        .unwrap_or_else(|e| panic!("{}: {e}", protocol.name()));
    (sys, stats)
}

#[test]
fn single_core_store_load_roundtrip_all_protocols() {
    for protocol in all_protocols() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 1234);
        a.store_abs(Reg::R1, 0x4000);
        a.load_abs(Reg::R2, 0x4000);
        a.halt();
        let (sys, _) = run_programs(protocol, vec![a.finish()]);
        assert_eq!(
            sys.core(0).thread().reg(Reg::R2),
            1234,
            "{}",
            protocol.name()
        );
    }
}

#[test]
fn producer_consumer_flag_handshake_all_protocols() {
    // The paper's Figure 1: proc A writes data then flag; proc B spins
    // on flag then must see data (write propagation + r→r order).
    let data = 0x8000u64;
    let flag = 0x8040u64; // different line
    for protocol in all_protocols() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 77);
        a.store_abs(Reg::R1, data); // a1
        a.movi(Reg::R2, 1);
        a.store_abs(Reg::R2, flag); // a2
        a.halt();

        let mut b = Asm::new();
        let spin = b.new_label();
        b.bind(spin);
        b.load_abs(Reg::R1, flag); // b1
        b.beq(Reg::R1, Reg::R0, spin);
        b.load_abs(Reg::R2, data); // b2
        b.halt();

        let (sys, _) = run_programs(protocol, vec![a.finish(), b.finish()]);
        assert_eq!(
            sys.core(1).thread().reg(Reg::R2),
            77,
            "{}: consumer must observe data once flag is visible",
            protocol.name()
        );
    }
}

#[test]
fn rmw_mutual_exclusion_counter_all_protocols() {
    // Four cores each fetch-add the same counter 50 times; the final
    // value must be exactly 200 (RMW atomicity at the L1).
    let counter = 0x9000u64;
    for protocol in all_protocols() {
        let make = || {
            let mut a = Asm::new();
            a.movi(Reg::R1, 1);
            a.movi(Reg::R2, 0);
            let top = a.new_label();
            a.bind(top);
            a.fetch_add(Reg::R3, Reg::R0, counter, Reg::R1);
            a.addi(Reg::R2, Reg::R2, 1);
            a.blt_imm(Reg::R2, 50, top);
            a.halt();
            a.finish()
        };
        let programs = vec![make(), make(), make(), make()];
        let (sys, _) = run_programs(protocol, programs);
        // Read the final value coherently: one more program would be
        // overkill; instead check the sum of returned old values.
        // The largest old value any core saw must be 199 and the
        // counter in memory/caches is 200. We verify via a 5th-core
        // read in other tests; here check monotonic outcome per core.
        let mut max_old = 0;
        for i in 0..4 {
            max_old = max_old.max(sys.core(i).thread().reg(Reg::R3));
        }
        assert_eq!(max_old, 199, "{}", protocol.name());
    }
}

#[test]
fn writes_migrate_between_cores_all_protocols() {
    // Core 0 writes X, signals; core 1 then writes X (ownership
    // transfer), signals; core 0 reads X back.
    let x = 0xa000u64;
    let f1 = 0xa040u64;
    let f2 = 0xa080u64;
    for protocol in all_protocols() {
        let mut a = Asm::new();
        a.movi(Reg::R1, 10);
        a.store_abs(Reg::R1, x);
        a.movi(Reg::R1, 1);
        a.store_abs(Reg::R1, f1);
        let spin = a.new_label();
        a.bind(spin);
        a.load_abs(Reg::R2, f2);
        a.beq(Reg::R2, Reg::R0, spin);
        a.load_abs(Reg::R3, x);
        a.halt();

        let mut b = Asm::new();
        let spin = b.new_label();
        b.bind(spin);
        b.load_abs(Reg::R2, f1);
        b.beq(Reg::R2, Reg::R0, spin);
        b.load_abs(Reg::R4, x);
        b.movi(Reg::R1, 20);
        b.store_abs(Reg::R1, x);
        b.movi(Reg::R1, 1);
        b.store_abs(Reg::R1, f2);
        b.halt();

        let (sys, _) = run_programs(protocol, vec![a.finish(), b.finish()]);
        assert_eq!(sys.core(1).thread().reg(Reg::R4), 10, "{}", protocol.name());
        assert_eq!(
            sys.core(0).thread().reg(Reg::R3),
            20,
            "{}: core 0 must see core 1's write",
            protocol.name()
        );
    }
}

#[test]
fn capacity_evictions_preserve_data_all_protocols() {
    // Write more lines than the tiny L1 (16 lines) and L2 (64 lines)
    // can hold, then read them all back.
    for protocol in all_protocols() {
        let n_lines = 200u64;
        let base = 0x10000u64;
        let mut a = Asm::new();
        // for i in 0..n: mem[base + i*64] = i + 1
        a.movi(Reg::R1, 0);
        let wr = a.new_label();
        a.bind(wr);
        a.muli(Reg::R2, Reg::R1, 64);
        a.addi(Reg::R2, Reg::R2, base);
        a.addi(Reg::R3, Reg::R1, 1);
        a.store(Reg::R3, Reg::R2, 0);
        a.addi(Reg::R1, Reg::R1, 1);
        a.blt_imm(Reg::R1, n_lines, wr);
        // Read back and accumulate into R5.
        a.movi(Reg::R1, 0);
        a.movi(Reg::R5, 0);
        let rd = a.new_label();
        a.bind(rd);
        a.muli(Reg::R2, Reg::R1, 64);
        a.addi(Reg::R2, Reg::R2, base);
        a.load(Reg::R4, Reg::R2, 0);
        a.add(Reg::R5, Reg::R5, Reg::R4);
        a.addi(Reg::R1, Reg::R1, 1);
        a.blt_imm(Reg::R1, n_lines, rd);
        a.halt();

        let (sys, stats) = run_programs(protocol, vec![a.finish()]);
        let expected: u64 = (1..=n_lines).sum();
        assert_eq!(
            sys.core(0).thread().reg(Reg::R5),
            expected,
            "{}",
            protocol.name()
        );
        assert!(
            stats.l2.writebacks.get() > 0,
            "{}: evictions must occur",
            protocol.name()
        );
    }
}

#[test]
fn fence_orders_and_self_invalidates() {
    let mut a = Asm::new();
    a.movi(Reg::R1, 5);
    a.store_abs(Reg::R1, 0x4000);
    a.fence();
    a.load_abs(Reg::R2, 0x4000);
    a.halt();
    let (sys, stats) = run_programs(
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        vec![a.finish()],
    );
    assert_eq!(sys.core(0).thread().reg(Reg::R2), 5);
    assert_eq!(
        stats.l1.selfinv_events[tsocc_coherence::SelfInvCause::Fence.index()].get(),
        1
    );
}

#[test]
fn shared_reads_expire_after_max_acc() {
    // Core 1 takes a Shared copy and reads it many times; the access
    // counter must force re-requests (read_miss_shared > 0).
    let x = 0xb000u64;
    let stop = 0xb040u64;
    let mut writer = Asm::new();
    writer.movi(Reg::R1, 1);
    writer.store_abs(Reg::R1, x);
    // Wait for the reader to finish, then stop.
    let spin = writer.new_label();
    writer.bind(spin);
    writer.load_abs(Reg::R2, stop);
    writer.beq(Reg::R2, Reg::R0, spin);
    writer.halt();

    let mut reader = Asm::new();
    // Force the line to Shared: read after the writer owned it.
    reader.delay(400);
    reader.movi(Reg::R3, 0);
    let top = reader.new_label();
    reader.bind(top);
    reader.load_abs(Reg::R1, x);
    reader.addi(Reg::R3, Reg::R3, 1);
    reader.blt_imm(Reg::R3, 200, top);
    reader.movi(Reg::R1, 1);
    reader.store_abs(Reg::R1, stop);
    reader.halt();

    let (_, stats) = run_programs(
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        vec![writer.finish(), reader.finish()],
    );
    assert!(
        stats.l1.read_miss_shared.get() > 5,
        "expired shared reads: {}",
        stats.l1.read_miss_shared.get()
    );
    assert!(stats.l1.read_hit_shared.get() > 100);
}

#[test]
fn deterministic_across_runs() {
    for protocol in [Protocol::Mesi, Protocol::TsoCc(TsoCcConfig::default())] {
        let build = || {
            let mut a = Asm::new();
            a.rand_delay(50);
            a.movi(Reg::R1, 3);
            a.fetch_add(Reg::R2, Reg::R0, 0xc000, Reg::R1);
            a.halt();
            a.finish()
        };
        let (_, s1) = run_programs(protocol, vec![build(), build()]);
        let (_, s2) = run_programs(protocol, vec![build(), build()]);
        assert_eq!(s1.cycles, s2.cycles, "{}", protocol.name());
        assert_eq!(s1.total_flits(), s2.total_flits(), "{}", protocol.name());
    }
}

#[test]
fn mesi_never_counts_shared_expiry_misses() {
    let mut a = Asm::new();
    a.movi(Reg::R1, 1);
    a.store_abs(Reg::R1, 0x4000);
    a.load_abs(Reg::R2, 0x4000);
    a.halt();
    let (_, stats) = run_programs(Protocol::Mesi, vec![a.finish()]);
    assert_eq!(stats.l1.read_miss_shared.get(), 0);
    assert_eq!(stats.l1.read_hit_sharedro.get(), 0);
}

#[test]
fn timeout_reported_for_infinite_programs() {
    let mut a = Asm::new();
    let top = a.new_label();
    a.bind(top);
    a.load_abs(Reg::R1, 0x4000);
    a.jump(top);
    let cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(Protocol::Mesi)
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, vec![a.finish()]);
    match sys.run(5_000) {
        Err(RunError::Timeout { max_cycles }) => assert_eq!(max_cycles, 5_000),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
#[should_panic]
fn too_many_programs_panics() {
    let cfg = SystemConfig::builder()
        .small()
        .cores(1)
        .protocol(Protocol::Mesi)
        .build()
        .expect("valid config");
    let p = || Program::new(vec![tsocc_isa::Instr::Halt]);
    let _ = System::new(cfg, vec![p(), p(), p()]);
}

#[test]
fn memory_image_is_sorted_and_complete() {
    // The sorted-by-line-address guarantee of `memory_image` (and of
    // `MainMemory::lines` underneath) is what parity tests compare
    // across steppers and protocols; pin it with scrambled writes that
    // land on different memory controllers and far-apart pages.
    let cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(Protocol::Mesi)
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, vec![]);
    let addrs = [0x9_0000u64, 0x40, 0x10_0000, 0x0, 0x80, 0x4_1000, 0xc0];
    for (i, &a) in addrs.iter().enumerate() {
        sys.write_word(Addr::new(a), i as u64 + 1);
    }
    let image = sys.memory_image();
    let mut want: Vec<u64> = addrs
        .iter()
        .map(|a| Addr::new(*a).line().as_u64())
        .collect();
    want.sort_unstable();
    let got: Vec<u64> = image.iter().map(|(l, _)| l.as_u64()).collect();
    assert_eq!(got, want, "memory_image must be sorted by line address");
    for (i, &a) in addrs.iter().enumerate() {
        assert_eq!(sys.read_mem_word(Addr::new(a)), i as u64 + 1);
    }
}

#[test]
fn memory_word_init_visible_to_programs() {
    let mut a = Asm::new();
    a.load_abs(Reg::R1, 0x7000);
    a.halt();
    let cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(Protocol::TsoCc(TsoCcConfig::basic()))
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, vec![a.finish()]);
    sys.write_word(Addr::new(0x7000), 4242);
    sys.run(1_000_000).unwrap();
    assert_eq!(sys.core(0).thread().reg(Reg::R1), 4242);
}

#[test]
fn protocol_trace_records_message_flow() {
    let mut a = Asm::new();
    a.movi(Reg::R1, 5);
    a.store_abs(Reg::R1, 0x4000);
    a.load_abs(Reg::R2, 0x4040);
    a.halt();
    let cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(Protocol::TsoCc(TsoCcConfig::default()))
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, vec![a.finish()]);
    sys.set_trace(true);
    sys.run(1_000_000).unwrap();
    let lines = sys.trace().lines();
    assert!(!lines.is_empty());
    assert!(
        lines.iter().any(|l| l.contains("GetX")),
        "trace: {}",
        sys.trace().tail(10)
    );
    assert!(lines.iter().any(|l| l.contains("GetS")));
    assert!(lines.iter().any(|l| l.contains("MemRead")));
    assert!(lines.iter().any(|l| l.contains("Unblock")));
}

#[test]
fn trace_disabled_by_default() {
    let mut a = Asm::new();
    a.store_abs(Reg::R0, 0x4000);
    a.halt();
    let cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(Protocol::Mesi)
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, vec![a.finish()]);
    sys.run(1_000_000).unwrap();
    assert!(sys.trace().lines().is_empty());
}

/// Two cores ping-ponging a line through the protocol, run under both
/// steppers: everything observable must be bit-identical, while the
/// event-driven scheduler executes fewer host steps.
#[test]
fn steppers_are_bit_identical_on_all_protocols() {
    for protocol in all_protocols() {
        let programs = || {
            let data = 0x8000u64;
            let flag = 0x8040u64;
            let mut a = Asm::new();
            a.movi(Reg::R1, 77);
            a.store_abs(Reg::R1, data);
            a.movi(Reg::R2, 1);
            a.store_abs(Reg::R2, flag);
            a.fence();
            a.halt();
            let mut b = Asm::new();
            let spin = b.new_label();
            b.bind(spin);
            b.load_abs(Reg::R1, flag);
            b.beq(Reg::R1, Reg::R0, spin);
            b.load_abs(Reg::R2, data);
            b.fence();
            b.halt();
            vec![a.finish(), b.finish()]
        };
        let run = |stepper: Stepper| {
            let mut cfg = SystemConfig::builder()
                .small()
                .cores(2)
                .protocol(protocol)
                .build()
                .expect("valid config");
            cfg.stepper = stepper;
            let mut sys = System::new(cfg, programs());
            let stats = sys.run(2_000_000).unwrap();
            (stats, sys.memory_image(), sys.steps_executed())
        };
        let (ev_stats, ev_mem, ev_steps) = run(Stepper::EventDriven);
        let (ref_stats, ref_mem, ref_steps) = run(Stepper::Reference);
        assert_eq!(ev_stats, ref_stats, "{}", protocol.name());
        assert_eq!(ev_mem, ref_mem, "{}", protocol.name());
        assert!(
            ev_steps < ref_steps,
            "{}: {ev_steps} vs {ref_steps} host steps",
            protocol.name()
        );
        assert_eq!(
            ref_steps, ref_stats.cycles,
            "the reference stepper walks every cycle"
        );
    }
}

/// Timeout must be reported identically: same error, same simulated
/// state, regardless of how idle cycles were traversed.
#[test]
fn steppers_agree_on_timeout() {
    let program = || {
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.load_abs(Reg::R1, 0x4000);
        a.jump(top);
        a.finish()
    };
    let run = |stepper: Stepper| {
        let mut cfg = SystemConfig::builder()
            .small()
            .cores(2)
            .protocol(Protocol::Mesi)
            .build()
            .expect("valid config");
        cfg.stepper = stepper;
        let mut sys = System::new(cfg, vec![program()]);
        let err = sys.run(5_000).unwrap_err();
        (err, sys.collect_stats())
    };
    let (ev_err, ev_stats) = run(Stepper::EventDriven);
    let (ref_err, ref_stats) = run(Stepper::Reference);
    assert_eq!(ev_err, ref_err);
    assert_eq!(ev_stats, ref_stats);
}

/// A machine stalled on long memory round trips is exactly where the
/// wake-list pays off: far fewer host steps than simulated cycles.
#[test]
fn event_driven_skips_idle_memory_latency() {
    let mut a = Asm::new();
    for i in 0..8u64 {
        a.load_abs(Reg::R1, 0x4000 + i * 0x1000);
    }
    a.halt();
    let cfg = SystemConfig::builder()
        .small()
        .cores(2)
        .protocol(Protocol::Mesi)
        .build()
        .expect("valid config");
    let mut sys = System::new(cfg, vec![a.finish()]);
    let stats = sys.run(2_000_000).unwrap();
    assert!(
        sys.steps_executed() * 2 < stats.cycles,
        "{} steps for {} cycles: the miss latency should be skipped",
        sys.steps_executed(),
        stats.cycles
    );
}
