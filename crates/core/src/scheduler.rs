//! The scheduler seam: a replayable, choice-at-a-time drive of the
//! coherence controllers for the stateless model checker
//! (`tsocc-check`).
//!
//! [`crate::System`] resolves every race by *timing*: one deterministic
//! interleaving per seed. Model checking needs the opposite — explicit
//! control over every nondeterministic choice so a depth-first search
//! can replay a prefix and branch differently. [`ScheduledSystem`]
//! rebuilds the machine around that need:
//!
//! - **The mesh becomes per-channel FIFO queues.** A channel is a
//!   `(src, dst, vnet)` triple. The real mesh (XY routing, per-link
//!   per-vnet FIFO queues, no fault-injected jitter) delivers any two
//!   messages of one channel in order but freely interleaves messages
//!   of different channels depending on congestion and distance, so
//!   "pop any non-empty channel" is exactly the real network's
//!   nondeterminism, no more and no less.
//! - **The core pipeline becomes an explicit TSO store-buffer shim.**
//!   Each thread runs a list of [`CoreOp`]s: stores enter a FIFO
//!   buffer (its own transition), buffered stores drain to the L1 as a
//!   *separate* transition (TSO's store→load relaxation, mirroring the
//!   flush transition of `tsocc_workloads::tso_model`), loads forward
//!   from the youngest matching buffer entry or bypass to the L1, and
//!   fences/RMWs wait for an empty buffer.
//! - **Time is frozen at [`Cycle::ZERO`].** Latencies (tag arrays, L2,
//!   memory) only order events in the timed simulator; here ordering
//!   *is* the transition sequence, so every internal latency is zero
//!   and a controller is driven to a fixpoint ("settled") after each
//!   transition. This also keeps controller state independent of the
//!   schedule prefix length (no LRU timestamps diverge), which the
//!   checker's partial-order reduction relies on: independent
//!   transitions commute to the *identical* state.
//!
//! The enabled-choice enumeration is deliberately conservative about
//! [`Submit::Retry`]: a retry is a proven no-op (the policies return it
//! before mutating anything), so the choice is disabled until a message
//! delivery to that L1 — the only event that can free the conflicting
//! MSHR — re-enables it. This keeps the search space free of silent
//! self-loops without hiding any real interleaving.

use std::collections::{BTreeMap, VecDeque};

use tsocc_coherence::{
    Agent, CacheController, CoherenceDiscipline, Completion, CoreOp, L1Controller, L2Controller,
    LineAccess, MemCtrl, Msg, NetMsg, Submit,
};
use tsocc_mem::{LineAddr, MainMemory};
use tsocc_noc::VNet;
use tsocc_sim::Cycle;

use crate::config::{ConfigError, SystemConfig};

/// A message channel: every pair of agents is connected by one FIFO
/// queue per virtual network, the checker's sound abstraction of the
/// jitter-free mesh (same-channel messages stay ordered; distinct
/// channels interleave freely).
pub type Channel = (Agent, Agent, VNet);

/// One nondeterministic choice the machine can take next.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Choice {
    /// Thread `thread` executes its next program operation (store →
    /// buffer push; load/fence/RMW → L1 submit or buffer forward).
    Issue {
        /// The issuing thread (= core = L1 index).
        thread: usize,
    },
    /// Thread `thread` drains its oldest buffered store to the L1 —
    /// the store becomes globally orderable here, later than its
    /// program position: the TSO relaxation.
    Drain {
        /// The draining thread.
        thread: usize,
    },
    /// The head message of `channel` is delivered to its destination
    /// controller.
    Deliver {
        /// The (src, dst, vnet) FIFO being popped.
        channel: Channel,
    },
}

/// What one applied [`Choice`] touched — the dependence footprint the
/// checker's dynamic partial-order reduction is computed from.
#[derive(Clone, Debug)]
pub struct StepInfo {
    /// The controller whose state the transition read or wrote: the
    /// issuing thread's L1 for [`Choice::Issue`]/[`Choice::Drain`], the
    /// destination for [`Choice::Deliver`].
    pub ctrl: Agent,
    /// The cache line the transition concerned, when it names one
    /// (the delivered message's line, or the issued op's line).
    pub line: Option<LineAddr>,
    /// Channels this transition pushed messages into (in order, with
    /// duplicates collapsed).
    pub emitted: Vec<Channel>,
}

/// Why [`ScheduledSystem::enabled`] came back empty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Terminal {
    /// Every thread finished, every buffer drained, every channel
    /// empty: a genuine end state whose observations are checkable.
    Done,
    /// Some thread still has work but no transition is enabled — the
    /// protocol lost a message or wedged a resource (this is how the
    /// checker catches `DropInvAck`/`HoldMshr`-style mutations).
    Deadlock,
}

/// What a thread is waiting on after a `Submit::Miss`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Waiting {
    /// A load miss: the completion value is observed.
    Load,
    /// An RMW miss: the completion (old) value is observed.
    Rmw,
}

/// The explicit TSO store-buffer shim standing in for one core
/// pipeline.
#[derive(Debug)]
struct ThreadShim {
    ops: Vec<CoreOp>,
    pc: usize,
    /// FIFO store buffer: `(addr, value)`, oldest first.
    buffer: VecDeque<(tsocc_mem::Addr, u64)>,
    /// The buffer head was accepted by the L1 (`Submit::Miss`) and
    /// awaits its `Completion::Store`; it stays forwardable but no
    /// further store may drain past it (TSO stores commit in order).
    head_issued: bool,
    /// An outstanding load/RMW miss.
    waiting: Option<Waiting>,
    /// `Issue`/`Drain` returned `Submit::Retry`; cleared by the next
    /// message delivery to this thread's L1.
    issue_blocked: bool,
    drain_blocked: bool,
    /// Values observed by loads and RMWs, in program order.
    observed: Vec<u64>,
}

impl ThreadShim {
    fn done(&self) -> bool {
        self.pc == self.ops.len() && self.buffer.is_empty() && self.waiting.is_none()
    }

    /// Youngest buffered store to `addr`, if any (x86-TSO forwarding).
    fn forward(&self, addr: tsocc_mem::Addr) -> Option<u64> {
        self.buffer
            .iter()
            .rev()
            .find(|(a, _)| *a == addr)
            .map(|&(_, v)| v)
    }
}

/// Picks among enabled choices; `None` stops the run. Implemented by
/// the checker's DFS driver and by [`ReplaySchedule`].
pub trait Scheduler {
    /// Returns the index into `enabled` of the choice to apply next.
    fn pick(&mut self, enabled: &[Choice]) -> Option<usize>;
}

/// Replays a recorded choice sequence — the checker's way of driving
/// the system back down an explored prefix before branching.
#[derive(Clone, Debug, Default)]
pub struct ReplaySchedule {
    choices: Vec<Choice>,
    at: usize,
}

impl ReplaySchedule {
    /// A schedule that replays `choices` in order, then stops.
    pub fn new(choices: Vec<Choice>) -> Self {
        ReplaySchedule { choices, at: 0 }
    }
}

impl Scheduler for ReplaySchedule {
    fn pick(&mut self, enabled: &[Choice]) -> Option<usize> {
        let next = self.choices.get(self.at)?;
        let idx = enabled.iter().position(|c| c == next)?;
        self.at += 1;
        Some(idx)
    }
}

/// The machine rebuilt around explicit scheduling: the configured
/// protocol's own L1/L2/memory controllers (built through the same
/// [`tsocc_coherence::ProtocolFactory`] seam as [`crate::System`]),
/// FIFO channels in place of the mesh, and store-buffer shims in place
/// of the core pipelines.
pub struct ScheduledSystem {
    l1s: Vec<Box<dyn L1Controller>>,
    l2s: Vec<Box<dyn L2Controller>>,
    mems: Vec<MemCtrl>,
    channels: BTreeMap<Channel, VecDeque<Msg>>,
    threads: Vec<ThreadShim>,
    wb_capacity: usize,
    discipline: CoherenceDiscipline,
    transitions: u64,
    scratch_msgs: Vec<NetMsg>,
    scratch_completions: Vec<Completion>,
}

impl ScheduledSystem {
    /// Builds the machine for `cfg` with one op list per core.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] if the configuration is invalid or the program
    /// has more threads than the machine has cores.
    pub fn new(cfg: &SystemConfig, programs: Vec<Vec<CoreOp>>) -> Result<Self, ConfigError> {
        cfg.validate().map_err(ConfigError)?;
        if programs.len() != cfg.n_cores {
            return Err(ConfigError(format!(
                "{} thread programs for {} cores",
                programs.len(),
                cfg.n_cores
            )));
        }
        // Zero every latency: transition order, not time, sequences the
        // checked machine (see the module docs).
        let mut shape = cfg.shape();
        shape.l1_issue_latency = 0;
        shape.l2_latency = 0;
        let l1s = (0..cfg.n_cores)
            .map(|i| cfg.protocol.l1(i, &shape))
            .collect();
        let l2s = (0..cfg.n_tiles())
            .map(|t| cfg.protocol.l2(t, &shape))
            .collect();
        let mems = (0..cfg.n_mem)
            .map(|j| MemCtrl::new(j, MainMemory::new(), 0))
            .collect();
        let threads = programs
            .into_iter()
            .map(|ops| ThreadShim {
                ops,
                pc: 0,
                buffer: VecDeque::new(),
                head_issued: false,
                waiting: None,
                issue_blocked: false,
                drain_blocked: false,
                observed: Vec::new(),
            })
            .collect();
        Ok(ScheduledSystem {
            l1s,
            l2s,
            mems,
            channels: BTreeMap::new(),
            threads,
            wb_capacity: cfg.core.write_buffer_entries,
            discipline: cfg.protocol.coherence_discipline(),
            transitions: 0,
            scratch_msgs: Vec::new(),
            scratch_completions: Vec::new(),
        })
    }

    /// The set of enabled choices, in a deterministic order (issues,
    /// drains, then deliveries by channel key).
    pub fn enabled(&self) -> Vec<Choice> {
        let mut out = Vec::new();
        for (t, th) in self.threads.iter().enumerate() {
            if th.waiting.is_none() && th.pc < th.ops.len() {
                let ok = match th.ops[th.pc] {
                    CoreOp::Store(..) => th.buffer.len() < self.wb_capacity,
                    CoreOp::Load(addr) => th.forward(addr).is_some() || !th.issue_blocked,
                    CoreOp::Fence => th.buffer.is_empty(),
                    CoreOp::Rmw(..) => th.buffer.is_empty() && !th.issue_blocked,
                };
                if ok {
                    out.push(Choice::Issue { thread: t });
                }
            }
        }
        for (t, th) in self.threads.iter().enumerate() {
            if !th.buffer.is_empty() && !th.head_issued && !th.drain_blocked {
                out.push(Choice::Drain { thread: t });
            }
        }
        for (&channel, q) in &self.channels {
            if !q.is_empty() {
                out.push(Choice::Deliver { channel });
            }
        }
        out
    }

    /// Classifies an empty enabled set; `None` while choices remain.
    pub fn terminal(&self) -> Option<Terminal> {
        if !self.enabled().is_empty() {
            return None;
        }
        if self.threads.iter().all(ThreadShim::done) {
            Some(Terminal::Done)
        } else {
            Some(Terminal::Deadlock)
        }
    }

    /// Applies one choice (which must currently be enabled) and settles
    /// the touched controller.
    pub fn apply(&mut self, choice: Choice) -> StepInfo {
        self.transitions += 1;
        match choice {
            Choice::Issue { thread } => self.apply_issue(thread),
            Choice::Drain { thread } => self.apply_drain(thread),
            Choice::Deliver { channel } => self.apply_deliver(channel),
        }
    }

    fn apply_issue(&mut self, t: usize) -> StepInfo {
        let op = self.threads[t].ops[self.threads[t].pc];
        let ctrl = Agent::L1(t);
        match op {
            CoreOp::Store(addr, value) => {
                let th = &mut self.threads[t];
                th.buffer.push_back((addr, value));
                th.pc += 1;
                StepInfo {
                    ctrl,
                    line: Some(addr.line()),
                    emitted: Vec::new(),
                }
            }
            CoreOp::Load(addr) => {
                if let Some(v) = self.threads[t].forward(addr) {
                    let th = &mut self.threads[t];
                    th.observed.push(v);
                    th.pc += 1;
                    return StepInfo {
                        ctrl,
                        line: Some(addr.line()),
                        emitted: Vec::new(),
                    };
                }
                match self.l1s[t].submit(Cycle::ZERO, op) {
                    Submit::Hit(v) => {
                        let th = &mut self.threads[t];
                        th.observed.push(v);
                        th.pc += 1;
                    }
                    Submit::Miss => self.threads[t].waiting = Some(Waiting::Load),
                    Submit::Retry => self.threads[t].issue_blocked = true,
                }
                let emitted = self.settle(ctrl);
                StepInfo {
                    ctrl,
                    line: Some(addr.line()),
                    emitted,
                }
            }
            CoreOp::Fence => {
                match self.l1s[t].submit(Cycle::ZERO, op) {
                    Submit::Hit(_) => self.threads[t].pc += 1,
                    other => panic!("fence submit returned {other:?}"),
                }
                let emitted = self.settle(ctrl);
                StepInfo {
                    ctrl,
                    line: None,
                    emitted,
                }
            }
            CoreOp::Rmw(addr, _) => {
                match self.l1s[t].submit(Cycle::ZERO, op) {
                    Submit::Hit(old) => {
                        let th = &mut self.threads[t];
                        th.observed.push(old);
                        th.pc += 1;
                    }
                    Submit::Miss => self.threads[t].waiting = Some(Waiting::Rmw),
                    Submit::Retry => self.threads[t].issue_blocked = true,
                }
                let emitted = self.settle(ctrl);
                StepInfo {
                    ctrl,
                    line: Some(addr.line()),
                    emitted,
                }
            }
        }
    }

    fn apply_drain(&mut self, t: usize) -> StepInfo {
        let ctrl = Agent::L1(t);
        let (addr, value) = *self.threads[t].buffer.front().expect("drain needs a store");
        match self.l1s[t].submit(Cycle::ZERO, CoreOp::Store(addr, value)) {
            Submit::Hit(_) => {
                self.threads[t].buffer.pop_front();
            }
            Submit::Miss => self.threads[t].head_issued = true,
            Submit::Retry => self.threads[t].drain_blocked = true,
        }
        let emitted = self.settle(ctrl);
        StepInfo {
            ctrl,
            line: Some(addr.line()),
            emitted,
        }
    }

    fn apply_deliver(&mut self, channel: Channel) -> StepInfo {
        let (src, dst, _) = channel;
        let msg = self
            .channels
            .get_mut(&channel)
            .and_then(VecDeque::pop_front)
            .expect("deliver needs a queued message");
        let line = msg.line();
        self.ctrl_mut(dst).handle_message(Cycle::ZERO, src, msg);
        let emitted = self.settle(dst);
        if let Agent::L1(t) = dst {
            // Only message handling at this L1 can free an MSHR or
            // writeback entry, so a delivery is the one event that can
            // turn a proven-Retry choice live again.
            self.threads[t].issue_blocked = false;
            self.threads[t].drain_blocked = false;
            self.route_completions(t);
        }
        StepInfo {
            ctrl: dst,
            line,
            emitted,
        }
    }

    /// Runs choices from `scheduler` until it stops, no choice is
    /// enabled, or `max_steps` transitions were applied. Returns the
    /// terminal classification if the run ended in one.
    pub fn run(&mut self, scheduler: &mut impl Scheduler, max_steps: u64) -> Option<Terminal> {
        for _ in 0..max_steps {
            let enabled = self.enabled();
            if enabled.is_empty() {
                return self.terminal();
            }
            let idx = scheduler.pick(&enabled)?;
            self.apply(enabled[idx]);
        }
        None
    }

    /// The values observed by every thread's loads and RMWs, in program
    /// order, concatenated thread-major — the layout of
    /// `tsocc_workloads::tso_model` outcomes.
    pub fn outcome(&self) -> Vec<u64> {
        self.threads
            .iter()
            .flat_map(|t| t.observed.iter().copied())
            .collect()
    }

    /// Per-core view of resident lines and their permissions, for the
    /// coherence axioms.
    pub fn l1_access(&self) -> Vec<Vec<(LineAddr, LineAccess)>> {
        self.l1s.iter().map(|l1| l1.access_lines()).collect()
    }

    /// The configured protocol's declared coherence discipline.
    pub fn discipline(&self) -> CoherenceDiscipline {
        self.discipline
    }

    /// Transitions applied so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Number of threads (= cores).
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    fn ctrl_mut(&mut self, agent: Agent) -> &mut dyn CacheController {
        match agent {
            Agent::L1(i) => self.l1s[i].as_mut(),
            Agent::L2(t) => self.l2s[t].as_mut(),
            Agent::Mem(j) => &mut self.mems[j],
        }
    }

    /// Drives `agent` to its internal fixpoint at the frozen time:
    /// replays queued directory requests, flushes the outbox into the
    /// channels, and repeats until the controller reports no
    /// self-driven work. Returns the channels pushed into.
    fn settle(&mut self, agent: Agent) -> Vec<Channel> {
        let mut emitted = Vec::new();
        for _ in 0..100_000 {
            let next = match agent {
                Agent::L1(i) => self.l1s[i].next_event(),
                Agent::L2(t) => self.l2s[t].next_event(),
                Agent::Mem(j) => self.mems[j].next_event(),
            };
            if next == Cycle::MAX {
                return emitted;
            }
            debug_assert!(next <= Cycle::ZERO, "zero-latency machine woke at {next}");
            let mut out = std::mem::take(&mut self.scratch_msgs);
            out.clear();
            {
                let ctrl = self.ctrl_mut(agent);
                ctrl.tick(Cycle::ZERO);
                ctrl.drain_outbox(Cycle::ZERO, &mut out);
            }
            for m in out.drain(..) {
                let key = (m.src, m.dst, m.msg.vnet());
                if !emitted.contains(&key) {
                    emitted.push(key);
                }
                self.channels.entry(key).or_default().push_back(m.msg);
            }
            self.scratch_msgs = out;
        }
        panic!("controller {agent:?} failed to settle (livelocked protocol?)");
    }

    /// Routes every ready completion at core `t`'s L1 to its shim.
    fn route_completions(&mut self, t: usize) {
        let mut done = std::mem::take(&mut self.scratch_completions);
        done.clear();
        self.l1s[t].drain_completions(&mut done);
        for c in done.drain(..) {
            let th = &mut self.threads[t];
            match c {
                Completion::Load(v) => {
                    let waiting = th.waiting.take().expect("load completion without a miss");
                    debug_assert!(matches!(waiting, Waiting::Load | Waiting::Rmw));
                    th.observed.push(v);
                    th.pc += 1;
                }
                Completion::Store => {
                    debug_assert!(th.head_issued, "store completion without a drained store");
                    th.buffer.pop_front();
                    th.head_issued = false;
                }
            }
        }
        self.scratch_completions = done;
    }
}

impl std::fmt::Debug for ScheduledSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduledSystem")
            .field("threads", &self.threads.len())
            .field("transitions", &self.transitions)
            .field(
                "queued",
                &self.channels.values().map(VecDeque::len).sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_mem::Addr;
    use tsocc_protocols::Protocol;

    const X: u64 = 0x2000;
    const Y: u64 = 0x2008; // same line as X: the 1-line configuration

    fn sys(protocol: Protocol, programs: Vec<Vec<CoreOp>>) -> ScheduledSystem {
        let cfg = SystemConfig::builder()
            .small()
            .cores(programs.len())
            .protocol(protocol)
            .build()
            .unwrap();
        ScheduledSystem::new(&cfg, programs).unwrap()
    }

    fn st(a: u64, v: u64) -> CoreOp {
        CoreOp::Store(Addr::new(a), v)
    }

    fn ld(a: u64) -> CoreOp {
        CoreOp::Load(Addr::new(a))
    }

    /// A first-enabled-choice schedule: drains stores eagerly, delivers
    /// messages in key order. Any fixed policy must reach Done.
    struct FirstChoice;

    impl Scheduler for FirstChoice {
        fn pick(&mut self, _enabled: &[Choice]) -> Option<usize> {
            Some(0)
        }
    }

    #[test]
    fn two_thread_message_passing_reaches_done() {
        for protocol in [
            Protocol::Mesi,
            Protocol::TsoCc(tsocc_proto::TsoCcConfig::default()),
        ] {
            let mut s = sys(protocol, vec![vec![st(X, 1), st(Y, 1)], vec![ld(Y), ld(X)]]);
            let end = s.run(&mut FirstChoice, 10_000);
            assert_eq!(end, Some(Terminal::Done), "{protocol:?}");
            let outcome = s.outcome();
            assert_eq!(outcome.len(), 2, "{protocol:?}: two loads observed");
            // Message passing: y==1 implies x==1 under TSO.
            if outcome[0] == 1 {
                assert_eq!(outcome[1], 1, "{protocol:?}: MP violation {outcome:?}");
            }
        }
    }

    #[test]
    fn store_buffering_outcome_is_reachable_by_delaying_drains() {
        // SB litmus: St x=1; Ld y || St y=1; Ld x. Issue both stores,
        // forward nothing, let both loads read 0 from memory *before*
        // any drain: the classic TSO-only outcome (0,0).
        let mut s = sys(
            Protocol::Mesi,
            vec![vec![st(X, 1), ld(Y)], vec![st(Y, 1), ld(X)]],
        );
        // Both stores enter the buffers.
        s.apply(Choice::Issue { thread: 0 });
        s.apply(Choice::Issue { thread: 1 });
        // Both loads bypass the (non-matching) buffered stores.
        let mut first = FirstChoice;
        // Drive to completion but force loads before drains by issuing
        // them now: each load misses, and deliveries complete them.
        for t in [0, 1] {
            s.apply(Choice::Issue { thread: t });
            while self::pending_load(&s, t) {
                let enabled = s.enabled();
                let deliver = enabled
                    .iter()
                    .position(|c| matches!(c, Choice::Deliver { .. }))
                    .expect("a delivery must be pending");
                s.apply(enabled[deliver]);
            }
        }
        let end = s.run(&mut first, 10_000);
        assert_eq!(end, Some(Terminal::Done));
        assert_eq!(s.outcome(), vec![0, 0], "both loads ran ahead of drains");
    }

    fn pending_load(s: &ScheduledSystem, t: usize) -> bool {
        s.threads[t].waiting.is_some()
    }

    #[test]
    fn store_forwarding_reads_own_buffered_store() {
        let mut s = sys(Protocol::Mesi, vec![vec![st(X, 7), ld(X)]]);
        s.apply(Choice::Issue { thread: 0 });
        // The load must forward from the buffer without touching the L1.
        let info = s.apply(Choice::Issue { thread: 0 });
        assert!(info.emitted.is_empty(), "forwarded load sent {info:?}");
        assert_eq!(s.outcome(), vec![7]);
        assert_eq!(s.run(&mut FirstChoice, 1_000), Some(Terminal::Done));
    }

    #[test]
    fn fence_requires_empty_buffer() {
        let mut s = sys(Protocol::Mesi, vec![vec![st(X, 1), CoreOp::Fence, ld(Y)]]);
        s.apply(Choice::Issue { thread: 0 });
        let enabled = s.enabled();
        assert!(
            !enabled.contains(&Choice::Issue { thread: 0 }),
            "fence must wait for the drain: {enabled:?}"
        );
        assert!(enabled.contains(&Choice::Drain { thread: 0 }));
        assert_eq!(s.run(&mut FirstChoice, 1_000), Some(Terminal::Done));
    }

    #[test]
    fn access_probe_reports_single_writer() {
        let mut s = sys(Protocol::Mesi, vec![vec![st(X, 1)], vec![]]);
        assert_eq!(s.run(&mut FirstChoice, 1_000), Some(Terminal::Done));
        let access = s.l1_access();
        let writers: usize = access
            .iter()
            .map(|l1| {
                l1.iter()
                    .filter(|(l, a)| *l == Addr::new(X).line() && *a == LineAccess::Write)
                    .count()
            })
            .sum();
        assert_eq!(
            writers, 1,
            "exactly the writing core holds the line: {access:?}"
        );
        assert_eq!(s.discipline(), CoherenceDiscipline::Eager);
    }

    #[test]
    fn replay_reproduces_the_same_outcome() {
        let programs = || vec![vec![st(X, 1), ld(Y)], vec![st(Y, 1), ld(X)]];
        let mut s = sys(Protocol::Mesi, programs());
        let mut trace = Vec::new();
        loop {
            let enabled = s.enabled();
            if enabled.is_empty() {
                break;
            }
            // A fixed but non-trivial policy: rotate by trace length.
            let c = enabled[trace.len() % enabled.len()];
            trace.push(c);
            s.apply(c);
        }
        assert_eq!(s.terminal(), Some(Terminal::Done));
        let mut replayed = sys(Protocol::Mesi, programs());
        let end = replayed.run(&mut ReplaySchedule::new(trace), 100_000);
        assert_eq!(end, Some(Terminal::Done));
        assert_eq!(replayed.outcome(), s.outcome());
        assert_eq!(replayed.transitions(), s.transitions());
    }
}
