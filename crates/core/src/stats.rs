//! Whole-run statistics: everything the paper's figures need.

use tsocc_coherence::{L1Stats, L2Stats, SelfInvCause};
use tsocc_noc::NocStats;
use tsocc_sim::{Histogram, SchedStats};

/// Aggregated results of one simulation run.
///
/// Implements `PartialEq` so integration tests can assert bit-identical
/// outcomes across run-loop implementations and thread counts. Equality
/// (and `Debug`, which golden tests snapshot) deliberately cover only
/// **simulated** outcomes: the host-side [`RunStats::sched`] counters
/// differ across steppers by design and are excluded from both.
#[derive(Clone, Default)]
pub struct RunStats {
    /// Execution time in cycles (Figure 3's metric, before
    /// normalization).
    pub cycles: u64,
    /// All L1 statistics summed over cores (Figures 5, 6, 7, 9).
    pub l1: L1Stats,
    /// All L2 statistics summed over tiles.
    pub l2: L2Stats,
    /// Network statistics (Figure 4's total-flits metric).
    pub noc: NocStats,
    /// Instructions executed over all cores.
    pub instructions: u64,
    /// RMW issue-to-complete latency over all cores (Figure 8).
    pub rmw_latency: Histogram,
    /// Load miss latency over all cores.
    pub load_latency: Histogram,
    /// Write-buffer-full stall cycles over all cores.
    pub wb_full_stalls: u64,
    /// Host-side event-queue counters of the indexed event-driven
    /// scheduler (all zero under the reference and parallel steppers,
    /// which do not use the queue). Excluded from equality and `Debug`.
    pub sched: SchedStats,
    /// Times the run degraded from the parallel stepper to a serial
    /// re-run after a shard-worker failure. Host-side resilience
    /// bookkeeping, not a simulated outcome: the re-run's results are
    /// bit-identical to a clean serial run, so — like `sched` — this is
    /// excluded from equality and `Debug`.
    pub degraded: u64,
}

impl PartialEq for RunStats {
    fn eq(&self, other: &Self) -> bool {
        // Every field except `sched` (host-side, stepper-dependent).
        self.cycles == other.cycles
            && self.l1 == other.l1
            && self.l2 == other.l2
            && self.noc == other.noc
            && self.instructions == other.instructions
            && self.rmw_latency == other.rmw_latency
            && self.load_latency == other.load_latency
            && self.wb_full_stalls == other.wb_full_stalls
    }
}

impl Eq for RunStats {}

impl std::fmt::Debug for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Mirrors the derived layout minus `sched`, so golden-string
        // snapshots pin exactly the simulated outcome.
        f.debug_struct("RunStats")
            .field("cycles", &self.cycles)
            .field("l1", &self.l1)
            .field("l2", &self.l2)
            .field("noc", &self.noc)
            .field("instructions", &self.instructions)
            .field("rmw_latency", &self.rmw_latency)
            .field("load_latency", &self.load_latency)
            .field("wb_full_stalls", &self.wb_full_stalls)
            .finish()
    }
}

impl RunStats {
    /// Total network traffic in flits (the Figure 4 metric).
    pub fn total_flits(&self) -> u64 {
        self.noc.flits_injected.get()
    }

    /// Fraction of L1 data-response events that triggered
    /// self-invalidation, per cause (Figure 7 shows these as a
    /// percentage of responses).
    pub fn selfinv_rate_per_miss(&self) -> f64 {
        let misses = self.l1.read_misses() + self.l1.write_misses();
        if misses == 0 {
            return 0.0;
        }
        // Fences are not data responses; exclude them from the rate.
        let events: u64 = SelfInvCause::ALL
            .iter()
            .filter(|c| **c != SelfInvCause::Fence)
            .map(|c| self.l1.selfinv_events[c.index()].get())
            .sum();
        events as f64 / misses as f64
    }

    /// Breakdown of self-invalidation events by cause as fractions of
    /// the total (Figure 9).
    pub fn selfinv_cause_fractions(&self) -> [(SelfInvCause, f64); 4] {
        let total = self.l1.selfinv_total().max(1) as f64;
        SelfInvCause::ALL.map(|c| (c, self.l1.selfinv_events[c.index()].get() as f64 / total))
    }

    /// L1 miss rate over all accesses (Figure 5's y axis).
    pub fn l1_miss_rate(&self) -> f64 {
        let accesses = self.l1.accesses();
        if accesses == 0 {
            return 0.0;
        }
        (self.l1.read_misses() + self.l1.write_misses()) as f64 / accesses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sched_counters_excluded_from_equality_and_debug() {
        let mut a = RunStats::default();
        let b = RunStats::default();
        a.sched.pushes = 99;
        a.sched.events_popped = 5;
        a.sched.stale_skips = 1;
        a.degraded = 1;
        assert_eq!(a, b, "host-side counters must not break parity");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert!(!format!("{a:?}").contains("sched"));
        assert!(!format!("{a:?}").contains("degraded"));
        let c = RunStats {
            cycles: 1,
            ..Default::default()
        };
        assert_ne!(c, b, "simulated fields still compare");
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = RunStats::default();
        assert_eq!(s.selfinv_rate_per_miss(), 0.0);
        assert_eq!(s.l1_miss_rate(), 0.0);
        assert_eq!(s.total_flits(), 0);
    }

    #[test]
    fn selfinv_rate_excludes_fences() {
        let mut s = RunStats::default();
        s.l1.read_miss_invalid.add(10);
        s.l1.record_selfinv(SelfInvCause::Fence, 1);
        s.l1.record_selfinv(SelfInvCause::InvalidTs, 1);
        assert!((s.selfinv_rate_per_miss() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cause_fractions_sum_to_one() {
        let mut s = RunStats::default();
        s.l1.record_selfinv(SelfInvCause::Fence, 0);
        s.l1.record_selfinv(SelfInvCause::AcquireSro, 0);
        s.l1.record_selfinv(SelfInvCause::AcquireSro, 0);
        s.l1.record_selfinv(SelfInvCause::InvalidTs, 0);
        let total: f64 = s.selfinv_cause_fractions().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
