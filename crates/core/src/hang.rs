//! Structured hang diagnosis: what was the machine waiting for when a
//! run deadlocked or timed out?
//!
//! [`crate::System::hang_report`] snapshots every controller's
//! outstanding work (via [`tsocc_coherence::CacheController::probe`])
//! and the in-flight network messages, derives a **wait-for graph**
//! over the controllers, and searches it for a cycle — the classic
//! deadlock witness. For a request wedged by a held MSHR the cycle
//! reads `L1#c -> L2#home -> L1#c`, naming the blocked line on every
//! edge.
//!
//! The report is plain data (no I/O here); `tsocc-bench` serializes it
//! to JSON for CI artifacts.

use tsocc_coherence::CtrlProbe;
use tsocc_mem::LineAddr;

/// One L1 controller with outstanding work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct L1Hang {
    /// The core whose L1 this is.
    pub core: usize,
    /// The controller's outstanding-work snapshot.
    pub probe: CtrlProbe,
}

/// One L2 tile with outstanding work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct L2Hang {
    /// The tile index.
    pub tile: usize,
    /// The controller's outstanding-work snapshot.
    pub probe: CtrlProbe,
}

/// One in-flight network message at hang time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetHang {
    /// Scheduled arrival cycle.
    pub at: u64,
    /// Destination router.
    pub dst: usize,
    /// Message kind (e.g. `"Data"`, `"InvAck"`).
    pub kind: &'static str,
    /// The line the message concerns, when it has one.
    pub line: Option<LineAddr>,
}

/// One wait-for edge: `from` cannot make progress on `line` until `to`
/// acts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// Waiting controller (`"L1#i"` / `"L2#t"`).
    pub from: String,
    /// The controller it waits on.
    pub to: String,
    /// The blocked line.
    pub line: LineAddr,
}

/// A structured snapshot of a hung machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HangReport {
    /// Simulated cycle at which the hang was declared.
    pub at_cycle: u64,
    /// Cores that had not halted.
    pub cores_unfinished: usize,
    /// Controllers with outstanding work.
    pub busy_controllers: usize,
    /// L1s with outstanding work (MSHRs, parked writebacks, queued
    /// outbox messages), ascending core id.
    pub l1s: Vec<L1Hang>,
    /// L2 tiles with outstanding work (busy transaction chains, replay
    /// queues), ascending tile id.
    pub l2s: Vec<L2Hang>,
    /// In-flight mesh messages, sorted by arrival cycle then
    /// destination (a hung machine has few; a timeout may have many).
    pub in_flight: Vec<NetHang>,
    /// The wait-for graph: every derived edge, deterministic order.
    pub edges: Vec<WaitEdge>,
    /// A wait-for cycle, if one exists: the deadlock witness, as the
    /// closed edge path. Empty when no cycle was found (e.g. the hang
    /// is a lost message rather than a circular wait).
    pub cycle: Vec<WaitEdge>,
}

impl HangReport {
    /// Whether the wait-for graph contains a cycle.
    pub fn has_cycle(&self) -> bool {
        !self.cycle.is_empty()
    }

    /// The smallest blocked line address over every MSHR, parked
    /// writeback and busy transaction — a deterministic one-line
    /// summary for error messages.
    pub fn first_blocked_line(&self) -> Option<LineAddr> {
        let l1 = self
            .l1s
            .iter()
            .flat_map(|h| h.probe.mshr_lines.iter().chain(h.probe.wb_lines.iter()))
            .copied();
        let l2 = self
            .l2s
            .iter()
            .flat_map(|h| h.probe.busy.iter().map(|b| b.line));
        l1.chain(l2).min()
    }

    /// One-line human summary (the full structure is for the JSON
    /// artifact).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "hang at cycle {}: {} cores unfinished, {} busy controllers, \
             {} L1(s) and {} L2(s) with outstanding work, {} message(s) in flight",
            self.at_cycle,
            self.cores_unfinished,
            self.busy_controllers,
            self.l1s.len(),
            self.l2s.len(),
            self.in_flight.len(),
        );
        if let Some(edge) = self.cycle.first() {
            s.push_str(&format!(
                "; wait-for cycle of {} edge(s) on {}",
                self.cycle.len(),
                edge.line
            ));
        }
        s
    }
}

/// Builds the wait-for edge list and finds a cycle. Nodes are dense
/// indices: L1s `0..n_cores`, L2s `n_cores..n_cores + n_tiles`.
///
/// Edges:
/// - `L1#i -> L2#home(X)` for every MSHR or parked writeback on line
///   `X` (the miss or eviction cannot finish until the home tile
///   responds);
/// - `L2#t -> L1#j` for every busy transaction on line `X` at tile `t`
///   where L1 `j` also has `X` outstanding (the directory is blocked
///   on that L1's unblock / data / ack).
pub(crate) fn wait_graph(
    n_cores: usize,
    l1s: &[L1Hang],
    l2s: &[L2Hang],
    home_tile: impl Fn(LineAddr) -> usize,
) -> (Vec<WaitEdge>, Vec<WaitEdge>) {
    let name = |node: usize| {
        if node < n_cores {
            format!("L1#{node}")
        } else {
            format!("L2#{}", node - n_cores)
        }
    };
    // (from, to, line), deduplicated, deterministic order.
    let mut raw: Vec<(usize, usize, LineAddr)> = Vec::new();
    for h in l1s {
        for &line in h.probe.mshr_lines.iter().chain(h.probe.wb_lines.iter()) {
            raw.push((h.core, n_cores + home_tile(line), line));
        }
    }
    for h in l2s {
        for b in &h.probe.busy {
            for l1 in l1s {
                if l1
                    .probe
                    .mshr_lines
                    .iter()
                    .chain(l1.probe.wb_lines.iter())
                    .any(|&x| x == b.line)
                {
                    raw.push((n_cores + h.tile, l1.core, b.line));
                }
            }
        }
    }
    raw.sort_unstable_by_key(|&(f, t, l)| (f, t, l));
    raw.dedup();

    // DFS cycle search over the dense node ids.
    let n_nodes = raw.iter().map(|&(f, t, _)| f.max(t) + 1).max().unwrap_or(0);
    let mut adj: Vec<Vec<(usize, LineAddr)>> = vec![Vec::new(); n_nodes];
    for &(f, t, l) in &raw {
        adj[f].push((t, l));
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n_nodes];
    let mut cycle_path: Vec<(usize, usize, LineAddr)> = Vec::new();
    fn dfs(
        u: usize,
        adj: &[Vec<(usize, LineAddr)>],
        color: &mut [u8],
        path: &mut Vec<(usize, usize, LineAddr)>,
        cycle: &mut Vec<(usize, usize, LineAddr)>,
    ) -> bool {
        color[u] = 1;
        for &(v, l) in &adj[u] {
            if color[v] == 1 {
                // Found: the cycle is the path suffix from v, plus the
                // closing edge.
                let start = path.iter().position(|&(f, _, _)| f == v).unwrap_or(0);
                cycle.extend(path[start..].iter().copied());
                cycle.push((u, v, l));
                return true;
            }
            if color[v] == 0 {
                path.push((u, v, l));
                if dfs(v, adj, color, path, cycle) {
                    return true;
                }
                path.pop();
            }
        }
        color[u] = 2;
        false
    }
    let mut path = Vec::new();
    for u in 0..n_nodes {
        if color[u] == 0 && dfs(u, &adj, &mut color, &mut path, &mut cycle_path) {
            break;
        }
    }

    let edges = raw
        .iter()
        .map(|&(f, t, l)| WaitEdge {
            from: name(f),
            to: name(t),
            line: l,
        })
        .collect();
    let cycle = cycle_path
        .iter()
        .map(|&(f, t, l)| WaitEdge {
            from: name(f),
            to: name(t),
            line: l,
        })
        .collect();
    (edges, cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_coherence::{BusyProbe, CtrlProbe};

    fn l1(core: usize, mshr: &[u64]) -> L1Hang {
        L1Hang {
            core,
            probe: CtrlProbe {
                mshr_lines: mshr.iter().map(|&l| LineAddr::new(l)).collect(),
                ..CtrlProbe::default()
            },
        }
    }

    fn l2(tile: usize, busy: &[u64]) -> L2Hang {
        L2Hang {
            tile,
            probe: CtrlProbe {
                busy: busy
                    .iter()
                    .map(|&l| BusyProbe {
                        line: LineAddr::new(l),
                        need_unblock: true,
                        need_owner_data: false,
                        queued: 0,
                    })
                    .collect(),
                ..CtrlProbe::default()
            },
        }
    }

    #[test]
    fn mutual_wait_is_a_cycle_naming_the_line() {
        // L1#1 waits on L2#0 for line 0x80; L2#0's transaction on 0x80
        // waits on L1#1 — the held-MSHR deadlock shape.
        let (edges, cycle) = wait_graph(
            2,
            &[l1(1, &[0x80])],
            &[l2(0, &[0x80])],
            |_| 0, // every line homes at tile 0
        );
        assert_eq!(edges.len(), 2);
        assert!(!cycle.is_empty(), "must find the 2-cycle");
        assert!(cycle.iter().all(|e| e.line == LineAddr::new(0x80)));
        let nodes: Vec<&str> = cycle.iter().map(|e| e.from.as_str()).collect();
        assert!(
            nodes.contains(&"L1#1") && nodes.contains(&"L2#0"),
            "{nodes:?}"
        );
    }

    #[test]
    fn acyclic_wait_reports_no_cycle() {
        // L1#0 waits on L2#1, but the tile is not busy: a lost-message
        // hang, not a circular wait.
        let (edges, cycle) = wait_graph(2, &[l1(0, &[0x40])], &[], |_| 1);
        assert_eq!(edges.len(), 1);
        assert!(cycle.is_empty());
    }
}
