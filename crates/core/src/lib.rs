#![warn(missing_docs)]

//! Full-system assembly for the TSO-CC reproduction.
//!
//! This crate wires the substrates into the paper's Table 2 machine:
//! n cores (each a [`tsocc_cpu::Core`] with a private L1), n NUCA L2
//! tiles co-located with the cores on a 2D mesh, and four memory
//! controllers at the mesh corners — running either the MESI baseline
//! or any TSO-CC configuration.
//!
//! Entry points:
//!
//! - [`SystemConfig`] — machine selection; carries a
//!   [`tsocc_coherence::ProtocolFactory`] handle, so this crate depends
//!   on no concrete protocol (MESI and TSO-CC plug in from their own
//!   crates, usually via the `tsocc_protocols::Protocol` enum),
//! - [`System`] — build with programs, [`System::run`] to completion,
//! - [`RunStats`] — every metric behind the paper's Figures 3–9.
//!
//! The analytic storage-overhead model of Figure 2 / Table 1 lives with
//! the protocol it models, in `tsocc_proto::storage`.
//!
//! # Examples
//!
//! ```
//! use tsocc::{System, SystemConfig};
//! use tsocc_isa::{Asm, Reg};
//! use tsocc_protocols::Protocol;
//!
//! // One core stores then loads through the full memory system.
//! let mut asm = Asm::new();
//! asm.movi(Reg::R1, 99);
//! asm.store_abs(Reg::R1, 0x1000);
//! asm.load_abs(Reg::R2, 0x1000);
//! asm.halt();
//!
//! let cfg = SystemConfig::builder()
//!     .small()
//!     .cores(2)
//!     .protocol(Protocol::TsoCc(Default::default()))
//!     .build()
//!     .expect("valid config");
//! let mut sys = System::new(cfg, vec![asm.finish()]);
//! let stats = sys.run(100_000).expect("terminates");
//! assert_eq!(sys.core(0).thread().reg(Reg::R2), 99);
//! assert!(stats.cycles > 0);
//! ```

pub mod config;
pub mod hang;
pub mod scheduler;
pub mod stats;
pub mod system;

pub use config::{ConfigError, Stepper, SystemConfig, SystemConfigBuilder};
pub use hang::HangReport;
pub use scheduler::{
    Channel, Choice, ReplaySchedule, ScheduledSystem, Scheduler, StepInfo, Terminal,
};
pub use stats::RunStats;
pub use system::{RunError, System};
// The fault-injection axis, re-exported so experiment drivers can
// build plans without naming the substrate crates.
pub use tsocc_coherence::{FaultPlan, NocFault, ProtocolFault, StepperFault};

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");
