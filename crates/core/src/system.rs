//! The simulated machine and its run loop.

use tsocc_coherence::{Agent, CacheController, L1Controller, L2Controller, MemCtrl, NetMsg};
use tsocc_cpu::Core;
use tsocc_isa::Program;
use tsocc_mem::{Addr, MainMemory};
use tsocc_noc::{Mesh, MeshTopology};
use tsocc_sim::{trace::TraceSink, Cycle};

use crate::config::SystemConfig;
use crate::stats::RunStats;

/// Why a run did not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The run exceeded the cycle budget while still making progress.
    Timeout {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// No component made progress for a long time while cores were
    /// still unfinished: a protocol deadlock (this is a simulator bug
    /// if it ever fires).
    Deadlock {
        /// The cycle at which progress stopped.
        stalled_at: u64,
        /// How many cores were still running.
        cores_unfinished: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Timeout { max_cycles } => {
                write!(f, "run exceeded {max_cycles} cycles")
            }
            RunError::Deadlock {
                stalled_at,
                cores_unfinished,
            } => write!(
                f,
                "deadlock at cycle {stalled_at} with {cores_unfinished} cores unfinished"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// The full simulated machine: cores + L1s + L2 tiles + memory
/// controllers on a 2D mesh.
///
/// See the [crate-level documentation](crate) for an example.
pub struct System {
    cfg: SystemConfig,
    topo: MeshTopology,
    cores: Vec<Core>,
    l1s: Vec<Box<dyn L1Controller>>,
    l2s: Vec<Box<dyn L2Controller>>,
    mems: Vec<MemCtrl>,
    mesh: Mesh<NetMsg>,
    now: Cycle,
    trace: TraceSink,
}

impl System {
    /// Builds a machine running one program per core. Cores beyond
    /// `programs.len()` idle (an empty program halts immediately).
    ///
    /// # Panics
    ///
    /// Panics if more programs than cores are supplied.
    pub fn new(cfg: SystemConfig, programs: Vec<Program>) -> Self {
        assert!(
            programs.len() <= cfg.n_cores,
            "{} programs for {} cores",
            programs.len(),
            cfg.n_cores
        );
        let topo = MeshTopology::for_tiles(cfg.n_tiles());
        let mut programs = programs;
        while programs.len() < cfg.n_cores {
            programs.push(Program::new(vec![tsocc_isa::Instr::Halt]));
        }
        let cores: Vec<Core> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Core::new(i, p, cfg.core, cfg.seed.wrapping_add(i as u64 * 7919)))
            .collect();
        let shape = cfg.shape();
        let l1s: Vec<Box<dyn L1Controller>> = (0..cfg.n_cores)
            .map(|i| cfg.protocol.l1(i, &shape))
            .collect();
        let l2s: Vec<Box<dyn L2Controller>> = (0..cfg.n_tiles())
            .map(|t| cfg.protocol.l2(t, &shape))
            .collect();
        let mems: Vec<MemCtrl> = (0..cfg.n_mem)
            .map(|j| MemCtrl::new(j, MainMemory::new(), cfg.mem_latency))
            .collect();
        let mesh = Mesh::new(topo, cfg.noc);
        System {
            cfg,
            topo,
            cores,
            l1s,
            l2s,
            mems,
            mesh,
            now: Cycle::ZERO,
            trace: TraceSink::disabled(),
        }
    }

    /// Enables or disables per-message protocol tracing (off by
    /// default; the disabled path costs one branch per message).
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// The recorded protocol trace (one line per delivered message).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The machine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Access to core `i` (final registers for litmus outcomes).
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// The memory controller owning `addr`'s line.
    fn mem_ctrl_of(&self, addr: Addr) -> usize {
        let tile = addr.line().home(self.cfg.n_tiles());
        tile % self.cfg.n_mem
    }

    /// Initializes one memory word before the run.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        let ctrl = self.mem_ctrl_of(addr);
        self.mems[ctrl].memory_mut().write_word(addr, value);
    }

    /// Reads one memory word from DRAM. Note that after a run, the most
    /// recent value of a line may still live dirty in a cache; programs
    /// should read results through their own loads (or fence before
    /// halting) when exact final values matter.
    pub fn read_mem_word(&self, addr: Addr) -> u64 {
        let ctrl = self.mem_ctrl_of(addr);
        self.mems[ctrl].memory().read_word(addr)
    }

    fn router_of(&self, agent: Agent) -> usize {
        match agent {
            Agent::L1(i) | Agent::L2(i) => i,
            Agent::Mem(j) => {
                let corners = self.topo.corners();
                corners[j % 4]
            }
        }
    }

    fn dispatch(&mut self, now: Cycle, nm: NetMsg) {
        self.trace
            .emit(now, || format!("{} -> {}: {:?}", nm.src, nm.dst, nm.msg));
        match nm.dst {
            Agent::L1(i) => self.l1s[i].handle_message(now, nm.src, nm.msg),
            Agent::L2(i) => self.l2s[i].handle_message(now, nm.src, nm.msg),
            Agent::Mem(j) => self.mems[j].handle_message(now, nm.src, nm.msg),
        }
    }

    /// Advances the machine one cycle; returns whether any component
    /// showed activity (message movement).
    fn step(&mut self) -> bool {
        let now = self.now;
        let mut active = false;

        // 1. Deliver arrived network messages.
        let arrivals = self.mesh.deliver(now);
        active |= !arrivals.is_empty();
        for (_router, nm) in arrivals {
            self.dispatch(now, nm);
        }

        // 2. Cores execute against their L1s.
        for (core, l1) in self.cores.iter_mut().zip(self.l1s.iter_mut()) {
            core.tick(now, l1.as_mut());
        }

        // 3. Controllers advance (queued-request replay).
        for l2 in &mut self.l2s {
            l2.tick(now);
        }

        // 4. Inject ready outgoing messages into the mesh.
        let mut outgoing: Vec<NetMsg> = Vec::new();
        for l1 in &mut self.l1s {
            outgoing.extend(l1.drain_outbox(now));
        }
        for l2 in &mut self.l2s {
            outgoing.extend(l2.drain_outbox(now));
        }
        for mem in &mut self.mems {
            outgoing.extend(mem.drain_outbox(now));
        }
        active |= !outgoing.is_empty();
        for nm in outgoing {
            let src = self.router_of(nm.src);
            let dst = self.router_of(nm.dst);
            let vnet = nm.msg.vnet();
            let flits = self.cfg.noc.flits_for_payload(nm.msg.payload_bytes());
            self.mesh.send(now, src, dst, vnet, flits, nm);
        }

        self.now += 1;
        active
    }

    /// Whether every core has finished and the machine is quiescent.
    pub fn is_finished(&self) -> bool {
        self.cores.iter().all(Core::is_done)
            && self.l1s.iter().all(|c| c.is_quiescent())
            && self.l2s.iter().all(|c| c.is_quiescent())
            && self.mems.iter().all(|c| c.is_quiescent())
            && self.mesh.is_idle()
    }

    /// Runs until every core halts and the machine drains, or until
    /// `max_cycles`.
    ///
    /// # Errors
    ///
    /// [`RunError::Timeout`] if the budget is exceeded;
    /// [`RunError::Deadlock`] if nothing moves for a long stretch while
    /// cores are unfinished.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunStats, RunError> {
        // A generous quiet window: random backoffs and memory round
        // trips are far shorter than this.
        const DEADLOCK_WINDOW: u64 = 200_000;
        let mut last_active = self.now;
        while self.now.as_u64() < max_cycles {
            let active = self.step();
            if active {
                last_active = self.now;
            }
            if self.is_finished() {
                return Ok(self.collect_stats());
            }
            if self.now - last_active > DEADLOCK_WINDOW {
                return Err(RunError::Deadlock {
                    stalled_at: self.now.as_u64(),
                    cores_unfinished: self.cores.iter().filter(|c| !c.is_done()).count(),
                });
            }
        }
        Err(RunError::Timeout { max_cycles })
    }

    /// Aggregates all statistics (valid at any point, typically after
    /// [`System::run`]).
    pub fn collect_stats(&self) -> RunStats {
        let mut stats = RunStats {
            cycles: self.now.as_u64(),
            noc: self.mesh.stats().clone(),
            ..RunStats::default()
        };
        for l1 in &self.l1s {
            stats.l1.merge(L1Controller::stats(l1.as_ref()));
        }
        for l2 in &self.l2s {
            stats.l2.merge(L2Controller::stats(l2.as_ref()));
        }
        for core in &self.cores {
            let cs = core.stats();
            stats.instructions += cs.instructions.get();
            stats.rmw_latency.merge(&cs.rmw_latency);
            stats.load_latency.merge(&cs.load_latency);
            stats.wb_full_stalls += cs.wb_full_stalls.get();
        }
        stats
    }
}

#[cfg(test)]
mod tests;
