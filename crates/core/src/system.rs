//! The simulated machine and its run loop.

use tsocc_coherence::{Agent, CacheController, L1Controller, L2Controller, MemCtrl, NetMsg};
use tsocc_cpu::Core;
use tsocc_isa::Program;
use tsocc_mem::{Addr, LineAddr, LineData, MainMemory};
use tsocc_noc::{Mesh, MeshTopology};
use tsocc_sim::{trace::TraceSink, Cycle, WakeQueue};

use crate::config::{ConfigError, Stepper, SystemConfig};
use crate::hang::{HangReport, L1Hang, L2Hang, NetHang};
use crate::stats::RunStats;

/// Cycles without message movement after which a run with unfinished
/// cores is declared deadlocked. A generous quiet window: random
/// backoffs and memory round trips are far shorter than this.
const DEADLOCK_WINDOW: u64 = 200_000;

/// Why a run did not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The run exceeded the cycle budget while still making progress.
    Timeout {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// No component made progress for a long time while cores were
    /// still unfinished: a protocol deadlock (this is a simulator bug
    /// if it ever fires — unless a fault plan injected one on purpose).
    Deadlock {
        /// The cycle at which progress stopped.
        stalled_at: u64,
        /// How many cores were still running.
        cores_unfinished: usize,
        /// Controllers with outstanding work when progress stopped.
        /// Filled in by [`System::run`] after the stepper reports the
        /// deadlock (the steppers construct it as `0`).
        busy_controllers: usize,
        /// Messages still in flight in the mesh (same post-hoc fill).
        msgs_in_flight: usize,
        /// The smallest blocked line address over every outstanding
        /// MSHR, parked writeback and busy directory transaction (same
        /// post-hoc fill) — the first place to look.
        first_blocked_line: Option<LineAddr>,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Timeout { max_cycles } => {
                write!(f, "run exceeded {max_cycles} cycles")
            }
            RunError::Deadlock {
                stalled_at,
                cores_unfinished,
                busy_controllers,
                msgs_in_flight,
                first_blocked_line,
            } => {
                write!(
                    f,
                    "deadlock at cycle {stalled_at} with {cores_unfinished} cores unfinished, \
                     {busy_controllers} busy controllers, {msgs_in_flight} messages in flight"
                )?;
                if let Some(line) = first_blocked_line {
                    write!(f, "; first blocked line {line}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {}

/// The full simulated machine: cores + L1s + L2 tiles + memory
/// controllers on a 2D mesh.
///
/// See the [crate-level documentation](crate) for an example.
pub struct System {
    cfg: SystemConfig,
    topo: MeshTopology,
    cores: Vec<Core>,
    l1s: Vec<Box<dyn L1Controller>>,
    l2s: Vec<Box<dyn L2Controller>>,
    mems: Vec<MemCtrl>,
    mesh: Mesh<NetMsg>,
    now: Cycle,
    trace: TraceSink,
    /// Scratch buffers reused by every `step` (no per-cycle allocation).
    arrivals: Vec<(usize, NetMsg)>,
    outgoing: Vec<NetMsg>,
    /// Outstanding-work ledger, refreshed at the end of each executed
    /// step, so [`System::is_finished`] is O(1) instead of re-scanning
    /// every component per cycle.
    cores_running: usize,
    busy_controllers: usize,
    /// Host-side count of actually executed steps (the event-driven
    /// scheduler executes far fewer steps than simulated cycles).
    steps: u64,
    /// Earliest cycle any component can act on its own, maintained by
    /// `step` for the event-driven run loop.
    wake: Cycle,
    /// Step generation (`steps` value) at which each L1 / L2 / memory
    /// controller last received a network message — or, for an L1, at
    /// which its core last ticked (a tick may submit into the L1). A
    /// step can thereby prove which cores, tiles and outboxes cannot
    /// possibly act this cycle and skip their ticks and drains.
    l1_msg_gen: Vec<u64>,
    l2_msg_gen: Vec<u64>,
    mem_msg_gen: Vec<u64>,
    /// Cached `next_event()` per controller, valid while the matching
    /// `*_msg_gen` stamp proves the controller untouched since it was
    /// sampled (a controller's wake deadline only changes inside
    /// `handle_message`, `tick`, `submit` or `drain_outbox`).
    l1_wake: Vec<Cycle>,
    l2_wake: Vec<Cycle>,
    mem_wake: Vec<Cycle>,
    /// Cached `!is_quiescent()` per controller, same validity rule.
    l1_busy: Vec<bool>,
    l2_busy: Vec<bool>,
    mem_busy: Vec<bool>,
    /// The indexed pending-event queue behind [`System::step_indexed`]:
    /// one slot per component (cores, then L1s, then L2 tiles, then
    /// memory controllers), holding the same cached absolute wake
    /// cycles as the `*_wake` vectors, so picking the next event is
    /// amortized O(1) instead of a min-scan over every component.
    wake_queue: WakeQueue,
    /// Per-shard wake queues lent to the parallel stepper's workers
    /// (empty until the first parallel run, then reused across runs so
    /// repeated parallel runs never reallocate queue buckets). Each
    /// shard indexes its queue with shard-local ids over its own tile
    /// slice; see `system/parallel.rs`.
    shard_queues: Vec<WakeQueue>,
    /// Cached `is_done()` per core, so `cores_running` updates
    /// incrementally from only the cores a step actually ticks.
    core_done: Vec<bool>,
    /// Scratch id sets reused by every `step_indexed` (no per-step
    /// allocation): queue pops, then per-class candidate lists.
    due_ids: Vec<u32>,
    cand_core: Vec<u32>,
    drain_l1: Vec<u32>,
    tick_l2: Vec<u32>,
    drain_l2: Vec<u32>,
    drain_mem: Vec<u32>,
    /// Times this machine gracefully degraded to a serial stepper
    /// after a parallel-shard worker failure (surfaced as
    /// [`RunStats::degraded`]).
    degraded_events: u64,
}

impl System {
    /// Builds a machine running one program per core. Cores beyond
    /// `programs.len()` idle (an empty program halts immediately).
    ///
    /// # Panics
    ///
    /// Panics if more programs than cores are supplied, or if the
    /// configuration is invalid for the chosen protocol (see
    /// [`System::try_new`] for the fallible form).
    pub fn new(cfg: SystemConfig, programs: Vec<Program>) -> Self {
        match Self::try_new(cfg, programs) {
            Ok(sys) => sys,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: like [`System::new`], but an invalid
    /// configuration (or a program/core-count mismatch) is returned as
    /// a [`ConfigError`] instead of panicking — what binaries use to
    /// exit with a clean message and a nonzero status.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] describing the first violated constraint.
    pub fn try_new(cfg: SystemConfig, programs: Vec<Program>) -> Result<Self, ConfigError> {
        cfg.validate().map_err(ConfigError)?;
        if programs.len() > cfg.n_cores {
            return Err(ConfigError(format!(
                "{} programs for {} cores",
                programs.len(),
                cfg.n_cores
            )));
        }
        let shape = cfg.shape();
        let topo = shape.mesh;
        let mut programs = programs;
        while programs.len() < cfg.n_cores {
            programs.push(Program::new(vec![tsocc_isa::Instr::Halt]));
        }
        let cores: Vec<Core> = programs
            .into_iter()
            .enumerate()
            .map(|(i, p)| Core::new(i, p, cfg.core, cfg.seed.wrapping_add(i as u64 * 7919)))
            .collect();
        let l1s: Vec<Box<dyn L1Controller>> = (0..cfg.n_cores)
            .map(|i| cfg.protocol.l1(i, &shape))
            .collect();
        let l2s: Vec<Box<dyn L2Controller>> = (0..cfg.n_tiles())
            .map(|t| cfg.protocol.l2(t, &shape))
            .collect();
        let mems: Vec<MemCtrl> = (0..cfg.n_mem)
            .map(|j| MemCtrl::new(j, MainMemory::new(), cfg.mem_latency))
            .collect();
        let mesh = Mesh::new(topo, cfg.noc);
        let cores_running = cores.len();
        let n_tiles = l2s.len();
        let cfg_n_mem = mems.len();
        Ok(System {
            cfg,
            topo,
            cores,
            l1s,
            l2s,
            mems,
            mesh,
            now: Cycle::ZERO,
            trace: TraceSink::disabled(),
            arrivals: Vec::new(),
            outgoing: Vec::new(),
            cores_running,
            busy_controllers: 0,
            steps: 0,
            wake: Cycle::ZERO,
            l1_msg_gen: vec![0; cores_running],
            l2_msg_gen: vec![0; n_tiles],
            mem_msg_gen: vec![0; cfg_n_mem],
            l1_wake: vec![Cycle::MAX; cores_running],
            l2_wake: vec![Cycle::MAX; n_tiles],
            mem_wake: vec![Cycle::MAX; cfg_n_mem],
            l1_busy: vec![false; cores_running],
            l2_busy: vec![false; n_tiles],
            mem_busy: vec![false; cfg_n_mem],
            wake_queue: WakeQueue::new(0),
            shard_queues: Vec::new(),
            core_done: vec![false; cores_running],
            due_ids: Vec::new(),
            cand_core: Vec::new(),
            drain_l1: Vec::new(),
            tick_l2: Vec::new(),
            drain_l2: Vec::new(),
            drain_mem: Vec::new(),
            degraded_events: 0,
        })
    }

    /// Enables or disables per-message protocol tracing (off by
    /// default; the disabled path costs one branch per message).
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// The recorded protocol trace (one line per delivered message).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The machine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Access to core `i` (final registers for litmus outcomes).
    pub fn core(&self, i: usize) -> &Core {
        &self.cores[i]
    }

    /// The memory controller owning `addr`'s line: the one backing the
    /// line's home L2 tile (L2s target `Agent::Mem(tile % n_mem)`, so
    /// routing through [`MachineShape::home_tile`] keeps the two maps
    /// agreeing under any bank interleaving).
    ///
    /// [`MachineShape::home_tile`]: tsocc_coherence::MachineShape::home_tile
    fn mem_ctrl_of(&self, addr: Addr) -> usize {
        let tile = self.cfg.shape().home_tile(addr.line());
        tile % self.cfg.n_mem
    }

    /// Initializes one memory word before the run.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        let ctrl = self.mem_ctrl_of(addr);
        self.mems[ctrl].memory_mut().write_word(addr, value);
    }

    /// Reads one memory word from DRAM. Note that after a run, the most
    /// recent value of a line may still live dirty in a cache; programs
    /// should read results through their own loads (or fence before
    /// halting) when exact final values matter.
    pub fn read_mem_word(&self, addr: Addr) -> u64 {
        let ctrl = self.mem_ctrl_of(addr);
        self.mems[ctrl].memory().read_word(addr)
    }

    /// A deterministic snapshot of DRAM: every line ever written,
    /// **sorted by line address** — a guarantee, not an iteration-order
    /// accident. Each controller's [`tsocc_mem::MainMemory::lines`] is
    /// already sorted; the sort here merely merges the per-controller
    /// (line-interleaved) sequences into one ordered image. Used by
    /// parity tests to compare final memory images across steppers and
    /// protocols.
    pub fn memory_image(&self) -> Vec<(LineAddr, LineData)> {
        let mut image: Vec<(LineAddr, LineData)> = self
            .mems
            .iter()
            .flat_map(|m| m.memory().lines().map(|(l, d)| (l, *d)))
            .collect();
        image.sort_unstable_by_key(|&(l, _)| l);
        image
    }

    fn router_of(&self, agent: Agent) -> usize {
        match agent {
            Agent::L1(i) | Agent::L2(i) => i,
            Agent::Mem(j) => {
                let corners = self.topo.corners();
                corners[j % 4]
            }
        }
    }

    fn dispatch(&mut self, now: Cycle, nm: NetMsg) {
        self.trace
            .emit(now, || format!("{} -> {}: {:?}", nm.src, nm.dst, nm.msg));
        match nm.dst {
            Agent::L1(i) => {
                self.l1s[i].handle_message(now, nm.src, nm.msg);
                self.l1_msg_gen[i] = self.steps;
            }
            Agent::L2(i) => {
                self.l2s[i].handle_message(now, nm.src, nm.msg);
                self.l2_msg_gen[i] = self.steps;
            }
            Agent::Mem(j) => {
                self.mems[j].handle_message(now, nm.src, nm.msg);
                self.mem_msg_gen[j] = self.steps;
            }
        }
    }

    /// Advances the machine one cycle; returns whether any component
    /// showed activity (message movement).
    ///
    /// While running its phases this also maintains, for free (the
    /// loops already touch every component):
    /// - the outstanding-work ledger behind the O(1)
    ///   [`System::is_finished`], and
    /// - `self.wake`, the earliest cycle at which any component can act
    ///   on its own — the next mesh arrival, the next outbox-ready
    ///   deadline, or the next self-driven core event. Every simulated
    ///   cycle strictly between `self.now` and `self.wake` is provably
    ///   a no-op for every component, which is what lets the
    ///   event-driven run loop skip those cycles bit-exactly. Each
    ///   component is sampled after its last possible mutation in the
    ///   step (cores after phase 2, controller outboxes after their
    ///   phase-4 drain, the mesh after injection).
    fn step(&mut self) -> bool {
        let now = self.now;
        self.steps += 1;
        let mut active = false;
        let mut wake = Cycle::MAX;

        // 1. Deliver arrived network messages.
        let mut arrivals = std::mem::take(&mut self.arrivals);
        self.mesh.deliver_into(now, &mut arrivals);
        active |= !arrivals.is_empty();
        for (_router, nm) in arrivals.drain(..) {
            self.dispatch(now, nm);
        }
        self.arrivals = arrivals;

        // 2. Cores execute against their L1s. A core's tick is provably
        // a no-op — and is skipped — unless the core can act this cycle
        // (its own wake deadline has arrived) or its L1 just received a
        // message (which may have queued completions to pop).
        let gen = self.steps;
        let next = now + 1;
        let mut cores_running = 0;
        for (i, (core, l1)) in self.cores.iter_mut().zip(self.l1s.iter_mut()).enumerate() {
            if self.l1_msg_gen[i] == gen || core.next_event(now) <= now {
                // The tick may submit into the L1, so the L1's cached
                // wake/quiescence are stale from here on: re-stamp.
                core.tick(now, l1.as_mut());
                self.l1_msg_gen[i] = gen;
            }
            if !core.is_done() {
                cores_running += 1;
            }
            wake = wake.min(core.next_event(next));
        }
        self.cores_running = cores_running;

        // 3. Tile controllers advance (queued-request replay). Replay
        // entries only appear while handling a message, so a tile that
        // received nothing this step has nothing to do.
        for (i, l2) in self.l2s.iter_mut().enumerate() {
            if self.l2_msg_gen[i] == gen {
                l2.tick(now);
            }
        }

        // 4. Inject ready outgoing messages into the mesh, draining
        // every controller into one reusable scratch buffer. A
        // controller untouched this step (no message handled, no core
        // submit, no tick) whose cached wake deadline has not arrived
        // provably has nothing ready — its outbox, quiescence and
        // next_event are exactly what they were when last sampled — so
        // the drain and its virtual calls are skipped and the cached
        // values are reused.
        let mut outgoing = std::mem::take(&mut self.outgoing);
        let mut busy_controllers = 0;
        for (i, l1) in self.l1s.iter_mut().enumerate() {
            if self.l1_msg_gen[i] == gen || self.l1_wake[i] <= now {
                l1.drain_outbox(now, &mut outgoing);
                self.l1_busy[i] = !l1.is_quiescent();
                self.l1_wake[i] = l1.next_event();
            }
            busy_controllers += usize::from(self.l1_busy[i]);
            wake = wake.min(self.l1_wake[i]);
        }
        for (i, l2) in self.l2s.iter_mut().enumerate() {
            if self.l2_msg_gen[i] == gen || self.l2_wake[i] <= now {
                l2.drain_outbox(now, &mut outgoing);
                self.l2_busy[i] = !l2.is_quiescent();
                self.l2_wake[i] = l2.next_event();
            }
            busy_controllers += usize::from(self.l2_busy[i]);
            wake = wake.min(self.l2_wake[i]);
        }
        for (i, mem) in self.mems.iter_mut().enumerate() {
            if self.mem_msg_gen[i] == gen || self.mem_wake[i] <= now {
                mem.drain_outbox(now, &mut outgoing);
                self.mem_busy[i] = !mem.is_quiescent();
                self.mem_wake[i] = mem.next_event();
            }
            busy_controllers += usize::from(self.mem_busy[i]);
            wake = wake.min(self.mem_wake[i]);
        }
        self.busy_controllers = busy_controllers;
        active |= !outgoing.is_empty();
        for nm in outgoing.drain(..) {
            let src = self.router_of(nm.src);
            let dst = self.router_of(nm.dst);
            let vnet = nm.msg.vnet();
            let flits = self.cfg.noc.flits_for_payload(nm.msg.payload_bytes());
            let extra = self
                .cfg
                .faults
                .noc_extra_delay(now.as_u64(), src, dst, vnet);
            self.mesh
                .send_with_delay(now, src, dst, vnet, flits, extra, nm);
        }
        self.outgoing = outgoing;
        self.wake = wake.min(self.mesh.next_arrival().unwrap_or(Cycle::MAX));

        self.now += 1;
        active
    }

    /// First queue id of the L1 class (cores occupy `0..l1_id_base()`).
    fn l1_id_base(&self) -> usize {
        self.cores.len()
    }

    /// First queue id of the L2 class.
    fn l2_id_base(&self) -> usize {
        self.cores.len() + self.l1s.len()
    }

    /// First queue id of the memory-controller class.
    fn mem_id_base(&self) -> usize {
        self.l2_id_base() + self.l2s.len()
    }

    /// (Re)builds the indexed event queue and the incremental ledgers
    /// from the machine's current state: one full scan at run start, so
    /// that no later step of [`System::step_indexed`] ever needs one.
    fn prime_queue(&mut self) {
        let now = self.now;
        self.wake_queue
            .reset(self.mem_id_base() + self.mems.len(), now.as_u64());
        let mut running = 0;
        for (i, core) in self.cores.iter().enumerate() {
            let done = core.is_done();
            self.core_done[i] = done;
            running += usize::from(!done);
            // Sampled at `now` (not `now + 1`) so cores due at the very
            // first executed cycle are already in the queue.
            self.wake_queue.set(i, core.next_event(now).as_u64());
        }
        self.cores_running = running;
        let mut busy = 0;
        let (l1b, l2b, memb) = (self.l1_id_base(), self.l2_id_base(), self.mem_id_base());
        for (i, l1) in self.l1s.iter().enumerate() {
            self.l1_wake[i] = l1.next_event();
            self.l1_busy[i] = !l1.is_quiescent();
            busy += usize::from(self.l1_busy[i]);
            self.wake_queue.set(l1b + i, self.l1_wake[i].as_u64());
        }
        for (i, l2) in self.l2s.iter().enumerate() {
            self.l2_wake[i] = l2.next_event();
            self.l2_busy[i] = !l2.is_quiescent();
            busy += usize::from(self.l2_busy[i]);
            self.wake_queue.set(l2b + i, self.l2_wake[i].as_u64());
        }
        for (i, mem) in self.mems.iter().enumerate() {
            self.mem_wake[i] = mem.next_event();
            self.mem_busy[i] = !mem.is_quiescent();
            busy += usize::from(self.mem_busy[i]);
            self.wake_queue.set(memb + i, self.mem_wake[i].as_u64());
        }
        self.busy_controllers = busy;
    }

    /// The indexed step: semantically identical to [`System::step`],
    /// but instead of scanning every component for work and for the
    /// next wake cycle, it visits only the components that are **due**
    /// (their queued wake deadline arrived — popped from the
    /// [`WakeQueue`]) or **touched** (a network message landed on them
    /// this cycle). Every skipped component provably satisfies the same
    /// "untouched and not due" conditions under which the reference
    /// loop's phases are no-ops, so the two produce bit-identical
    /// machines; the per-step cost is O(active components), not O(n).
    ///
    /// Equivalence of the core wake test deserves a note: the queue
    /// holds `core.next_event(prev + 1)` sampled after the core's last
    /// tick at `prev`, while the reference compares
    /// `core.next_event(now) <= now` each cycle. For an untouched core
    /// the two are interchangeable — `next_event(t)` only ever returns
    /// a constant deadline, `t` itself, or `MAX`, so "cached sample
    /// `<= now`" and "fresh sample `<= now`" agree for every `now`
    /// after the sample point.
    fn step_indexed(&mut self) -> bool {
        let now = self.now;
        self.steps += 1;
        let gen = self.steps;
        let mut active = false;

        // Components whose cached wake deadline has arrived. Popped
        // entries are consumed; each is re-armed below after its class
        // phase runs (the drain/tick re-samples `next_event`).
        let mut due_ids = std::mem::take(&mut self.due_ids);
        due_ids.clear();
        self.wake_queue.pop_due(now.as_u64(), &mut due_ids);

        let mut cand_core = std::mem::take(&mut self.cand_core);
        let mut drain_l1 = std::mem::take(&mut self.drain_l1);
        let mut tick_l2 = std::mem::take(&mut self.tick_l2);
        let mut drain_l2 = std::mem::take(&mut self.drain_l2);
        let mut drain_mem = std::mem::take(&mut self.drain_mem);
        cand_core.clear();
        drain_l1.clear();
        tick_l2.clear();
        drain_l2.clear();
        drain_mem.clear();

        let (l1b, l2b, memb) = (self.l1_id_base(), self.l2_id_base(), self.mem_id_base());
        for &id in &due_ids {
            let id = id as usize;
            if id < l1b {
                cand_core.push(id as u32);
            } else if id < l2b {
                drain_l1.push((id - l1b) as u32);
            } else if id < memb {
                drain_l2.push((id - l2b) as u32);
            } else {
                drain_mem.push((id - memb) as u32);
            }
        }

        // 1. Deliver arrived network messages, recording which
        // components they touch — the indexed equivalent of the
        // reference loop discovering fresh `*_msg_gen` stamps by scan.
        let mut arrivals = std::mem::take(&mut self.arrivals);
        self.mesh.deliver_into(now, &mut arrivals);
        active |= !arrivals.is_empty();
        for (_router, nm) in arrivals.drain(..) {
            match nm.dst {
                Agent::L1(i) => {
                    if self.l1_msg_gen[i] != gen {
                        cand_core.push(i as u32);
                    }
                }
                Agent::L2(i) => {
                    if self.l2_msg_gen[i] != gen {
                        tick_l2.push(i as u32);
                        drain_l2.push(i as u32);
                    }
                }
                Agent::Mem(j) => {
                    if self.mem_msg_gen[j] != gen {
                        drain_mem.push(j as u32);
                    }
                }
            }
            self.dispatch(now, nm);
        }
        self.arrivals = arrivals;

        // 2. Cores execute against their L1s. Condition verbatim from
        // the reference step; candidates outside the due/touched sets
        // would fail it anyway.
        cand_core.sort_unstable();
        cand_core.dedup();
        let next = now + 1;
        for &i in &cand_core {
            let i = i as usize;
            let core = &mut self.cores[i];
            if self.l1_msg_gen[i] == gen || core.next_event(now) <= now {
                core.tick(now, self.l1s[i].as_mut());
                self.l1_msg_gen[i] = gen;
            }
            let done = core.is_done();
            if done != self.core_done[i] {
                self.core_done[i] = done;
                if done {
                    self.cores_running -= 1;
                } else {
                    self.cores_running += 1;
                }
            }
            self.wake_queue.set(i, core.next_event(next).as_u64());
        }

        // 3. Touched tiles advance (queued-request replay).
        tick_l2.sort_unstable();
        tick_l2.dedup();
        for &i in &tick_l2 {
            let i = i as usize;
            if self.l2_msg_gen[i] == gen {
                self.l2s[i].tick(now);
            }
        }

        // 4. Drain candidates into the mesh — ascending index within
        // each class, classes in L1, L2, memory order, so the mesh sees
        // the exact injection sequence of the reference step (its
        // link-contention and tie-break state are order-sensitive).
        let mut outgoing = std::mem::take(&mut self.outgoing);
        drain_l1.extend_from_slice(&cand_core);
        drain_l1.sort_unstable();
        drain_l1.dedup();
        for &i in &drain_l1 {
            let i = i as usize;
            if self.l1_msg_gen[i] == gen || self.l1_wake[i] <= now {
                let l1 = &mut self.l1s[i];
                l1.drain_outbox(now, &mut outgoing);
                let busy = !l1.is_quiescent();
                if busy != self.l1_busy[i] {
                    self.l1_busy[i] = busy;
                    if busy {
                        self.busy_controllers += 1;
                    } else {
                        self.busy_controllers -= 1;
                    }
                }
                self.l1_wake[i] = l1.next_event();
                self.wake_queue.set(l1b + i, self.l1_wake[i].as_u64());
            }
        }
        drain_l2.sort_unstable();
        drain_l2.dedup();
        for &i in &drain_l2 {
            let i = i as usize;
            if self.l2_msg_gen[i] == gen || self.l2_wake[i] <= now {
                let l2 = &mut self.l2s[i];
                l2.drain_outbox(now, &mut outgoing);
                let busy = !l2.is_quiescent();
                if busy != self.l2_busy[i] {
                    self.l2_busy[i] = busy;
                    if busy {
                        self.busy_controllers += 1;
                    } else {
                        self.busy_controllers -= 1;
                    }
                }
                self.l2_wake[i] = l2.next_event();
                self.wake_queue.set(l2b + i, self.l2_wake[i].as_u64());
            }
        }
        drain_mem.sort_unstable();
        drain_mem.dedup();
        for &j in &drain_mem {
            let j = j as usize;
            if self.mem_msg_gen[j] == gen || self.mem_wake[j] <= now {
                let mem = &mut self.mems[j];
                mem.drain_outbox(now, &mut outgoing);
                let busy = !mem.is_quiescent();
                if busy != self.mem_busy[j] {
                    self.mem_busy[j] = busy;
                    if busy {
                        self.busy_controllers += 1;
                    } else {
                        self.busy_controllers -= 1;
                    }
                }
                self.mem_wake[j] = mem.next_event();
                self.wake_queue.set(memb + j, self.mem_wake[j].as_u64());
            }
        }
        active |= !outgoing.is_empty();
        for nm in outgoing.drain(..) {
            let src = self.router_of(nm.src);
            let dst = self.router_of(nm.dst);
            let vnet = nm.msg.vnet();
            let flits = self.cfg.noc.flits_for_payload(nm.msg.payload_bytes());
            let extra = self
                .cfg
                .faults
                .noc_extra_delay(now.as_u64(), src, dst, vnet);
            self.mesh
                .send_with_delay(now, src, dst, vnet, flits, extra, nm);
        }
        self.outgoing = outgoing;
        self.wake = Cycle::new(self.wake_queue.next_wake(next.as_u64()))
            .min(self.mesh.next_arrival().unwrap_or(Cycle::MAX));

        self.due_ids = due_ids;
        self.cand_core = cand_core;
        self.drain_l1 = drain_l1;
        self.tick_l2 = tick_l2;
        self.drain_l2 = drain_l2;
        self.drain_mem = drain_mem;
        self.now += 1;
        active
    }

    /// Whether every core has finished and the machine is quiescent.
    /// O(1): reads the outstanding-work counters maintained by `step`.
    pub fn is_finished(&self) -> bool {
        self.cores_running == 0 && self.busy_controllers == 0 && self.mesh.is_idle()
    }

    /// Number of steps the run loop actually executed so far. Under the
    /// event-driven scheduler this is the host-event count — typically
    /// far below [`RunStats::cycles`]; under [`Stepper::Reference`] the
    /// two advance in lockstep.
    pub fn steps_executed(&self) -> u64 {
        self.steps
    }

    /// Runs until every core halts and the machine drains, or until
    /// `max_cycles`, using the configured [`Stepper`].
    ///
    /// # Errors
    ///
    /// [`RunError::Timeout`] if the budget is exceeded;
    /// [`RunError::Deadlock`] if nothing moves for a long stretch while
    /// cores are unfinished. The deadlock report carries outstanding-
    /// work counters and the first blocked line; call
    /// [`System::hang_report`] for the full structured diagnosis.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunStats, RunError> {
        let result = match self.cfg.stepper {
            Stepper::EventDriven => self.run_event_driven(max_cycles),
            Stepper::Reference => self.run_reference(max_cycles),
            Stepper::ParallelShards { shards } => self.run_parallel(max_cycles, shards),
        };
        match result {
            // The steppers report the *where*; the enrichment here
            // (outside their hot loops and borrow scopes) adds the
            // *what was outstanding* from the intact post-run machine.
            Err(RunError::Deadlock {
                stalled_at,
                cores_unfinished,
                ..
            }) => {
                let report = self.hang_report();
                Err(RunError::Deadlock {
                    stalled_at,
                    cores_unfinished,
                    busy_controllers: self.busy_controllers,
                    msgs_in_flight: self.mesh.in_flight_len(),
                    first_blocked_line: report.first_blocked_line(),
                })
            }
            other => other,
        }
    }

    /// Snapshots the machine's outstanding work into a structured
    /// [`HangReport`]: per-controller probes, in-flight messages, the
    /// wait-for graph and (when one exists) its cycle — the deadlock
    /// witness. Valid at any point; meaningful after [`System::run`]
    /// returned [`RunError::Deadlock`] or [`RunError::Timeout`].
    pub fn hang_report(&self) -> HangReport {
        let l1s: Vec<L1Hang> = self
            .l1s
            .iter()
            .enumerate()
            .map(|(core, c)| L1Hang {
                core,
                probe: CacheController::probe(c.as_ref()),
            })
            .filter(|h| !h.probe.is_empty())
            .collect();
        let l2s: Vec<L2Hang> = self
            .l2s
            .iter()
            .enumerate()
            .map(|(tile, c)| L2Hang {
                tile,
                probe: CacheController::probe(c.as_ref()),
            })
            .filter(|h| !h.probe.is_empty())
            .collect();
        let mut in_flight: Vec<NetHang> = self
            .mesh
            .in_flight_msgs()
            .map(|(at, dst, nm)| NetHang {
                at: at.as_u64(),
                dst,
                kind: nm.msg.kind_name(),
                line: nm.msg.line(),
            })
            .collect();
        in_flight.sort_unstable_by_key(|m| (m.at, m.dst, m.kind));
        let shape = self.cfg.shape();
        let (edges, cycle) =
            crate::hang::wait_graph(self.cores.len(), &l1s, &l2s, |line| shape.home_tile(line));
        HangReport {
            at_cycle: self.now.as_u64(),
            cores_unfinished: self.cores_running,
            busy_controllers: self.busy_controllers,
            l1s,
            l2s,
            in_flight,
            edges,
            cycle,
        }
    }

    /// The original cycle-by-cycle polling loop, kept as the
    /// determinism oracle for the event-driven scheduler.
    fn run_reference(&mut self, max_cycles: u64) -> Result<RunStats, RunError> {
        let mut last_active = self.now;
        while self.now.as_u64() < max_cycles {
            let active = self.step();
            if active {
                last_active = self.now;
            }
            if self.is_finished() {
                return Ok(self.collect_stats());
            }
            if self.now - last_active > DEADLOCK_WINDOW {
                return Err(RunError::Deadlock {
                    stalled_at: self.now.as_u64(),
                    cores_unfinished: self.cores_running,
                    busy_controllers: 0,
                    msgs_in_flight: 0,
                    first_blocked_line: None,
                });
            }
        }
        Err(RunError::Timeout { max_cycles })
    }

    /// The event-driven scheduler: identical per-cycle semantics to
    /// [`System::run_reference`], but each executed step visits only
    /// due-or-touched components ([`System::step_indexed`]), and after
    /// it simulated time jumps straight to the earliest cycle any
    /// component can act — the queue minimum — instead of
    /// single-stepping through the idle window. The skipped cycles are
    /// exactly those in which the reference loop's step would have been
    /// a no-op, so both loops produce bit-identical results — including
    /// timeout and deadlock reporting, which is emulated at the cycle
    /// the reference loop would have detected it.
    fn run_event_driven(&mut self, max_cycles: u64) -> Result<RunStats, RunError> {
        self.prime_queue();
        let mut last_active = self.now;
        loop {
            if self.now - last_active > DEADLOCK_WINDOW {
                return Err(RunError::Deadlock {
                    stalled_at: self.now.as_u64(),
                    cores_unfinished: self.cores_running,
                    busy_controllers: 0,
                    msgs_in_flight: 0,
                    first_blocked_line: None,
                });
            }
            if self.now.as_u64() >= max_cycles {
                return Err(RunError::Timeout { max_cycles });
            }
            let active = self.step_indexed();
            if active {
                last_active = self.now;
            }
            if self.is_finished() {
                return Ok(self.collect_stats());
            }
            // Fast-forward over the idle window, stopping where the
            // reference loop would declare deadlock or run out of budget.
            let target = self
                .wake
                .min(last_active.saturating_add(DEADLOCK_WINDOW + 1))
                .min(Cycle::new(max_cycles));
            if target > self.now {
                self.now = target;
            }
        }
    }

    /// Aggregates all statistics (valid at any point, typically after
    /// [`System::run`]).
    pub fn collect_stats(&self) -> RunStats {
        let mut sched = self.wake_queue.stats();
        // A parallel run's queue traffic lives in the per-shard queues;
        // host-side counters only, so merging is parity-neutral.
        for q in &self.shard_queues {
            sched.merge(q.stats());
        }
        let mut stats = RunStats {
            cycles: self.now.as_u64(),
            noc: self.mesh.stats().clone(),
            sched,
            degraded: self.degraded_events,
            ..RunStats::default()
        };
        for l1 in &self.l1s {
            stats.l1.merge(L1Controller::stats(l1.as_ref()));
        }
        for l2 in &self.l2s {
            stats.l2.merge(L2Controller::stats(l2.as_ref()));
        }
        for core in &self.cores {
            let cs = core.stats();
            stats.instructions += cs.instructions.get();
            stats.rmw_latency.merge(&cs.rmw_latency);
            stats.load_latency.merge(&cs.load_latency);
            stats.wb_full_stalls += cs.wb_full_stalls.get();
        }
        stats
    }
}

mod parallel;

#[cfg(test)]
mod tests;
