//! System configuration (the paper's Table 2).

use tsocc_coherence::{FaultPlan, MachineShape, ProtocolHandle};
use tsocc_cpu::CoreConfig;
use tsocc_mem::CacheParams;
use tsocc_noc::NocConfig;

/// A rejected [`SystemConfig`]: the machine geometry, protocol limits,
/// or workload wiring are inconsistent.
///
/// Produced by [`crate::System::try_new`]; the message is the same
/// human-readable constraint description [`SystemConfig::validate`]
/// returns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid system configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Which run loop drives the machine.
///
/// All steppers execute the same per-cycle semantics and are
/// **bit-identical** in every simulated outcome (cycles, messages,
/// flits, statistics, final memory). The event-driven scheduler merely
/// skips cycles in which no component can act; the sharded stepper
/// additionally spreads tiles over worker threads; the reference
/// stepper walks cycles one by one and is kept as the determinism
/// oracle (`tests/event_driven_parity.rs` and
/// `tests/parallel_stepper_parity.rs` diff the steppers across the
/// full sweep matrix).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Stepper {
    /// Indexed event queue: every component's wake deadline lives in a
    /// radix heap and simulated time jumps straight to the minimum,
    /// visiting only due-or-touched components. The default.
    #[default]
    EventDriven,
    /// The original cycle-by-cycle polling stepper.
    Reference,
    /// Conservative-parallel stepper: tiles are split into contiguous
    /// shards, each driven by its own scoped worker thread, with the
    /// mesh minimum message latency as the synchronization lookahead
    /// (no message can cross shards faster, so each window of cycles is
    /// data-race-free by construction and the result is bit-identical
    /// to the serial steppers on any worker count).
    ParallelShards {
        /// Worker-thread count; `0` picks
        /// [`std::thread::available_parallelism`]. Clamped to the tile
        /// count; `<= 1` effective workers falls back to the serial
        /// event-driven scheduler.
        shards: usize,
    },
}

impl Stepper {
    /// The auto-sized parallel stepper
    /// (`ParallelShards { shards: 0 }`).
    pub fn parallel() -> Stepper {
        Stepper::ParallelShards { shards: 0 }
    }

    /// The worker-thread count this stepper will actually use on a
    /// machine with `n_tiles` tiles: the serial steppers always use
    /// one; `ParallelShards { shards: 0 }` auto-sizes to
    /// [`std::thread::available_parallelism`]; every parallel request
    /// is capped at the tile count (a shard cannot be smaller than one
    /// tile). This is the exact resolution the run loop applies, so
    /// callers can predict the fallback-to-serial case (`<= 1`).
    pub fn effective_shards(self, n_tiles: usize) -> usize {
        match self {
            Stepper::EventDriven | Stepper::Reference => 1,
            Stepper::ParallelShards { shards } => {
                let requested = if shards == 0 {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                } else {
                    shards
                };
                requested.min(n_tiles).max(1)
            }
        }
    }
}

/// Full machine configuration.
///
/// The coherence protocol is an open extension point: `protocol` is a
/// [`ProtocolHandle`] (a shared [`tsocc_coherence::ProtocolFactory`]),
/// so this crate never names a concrete protocol. Pass any factory —
/// or the `tsocc_protocols::Protocol` enum, which converts into a
/// handle — to the constructors.
///
/// Build through [`SystemConfig::builder`]: the default preset
/// reproduces the paper's simulated machine; [`SystemConfigBuilder::small`]
/// shrinks the caches so unit and litmus tests exercise evictions and
/// run fast.
#[derive(Clone)]
pub struct SystemConfig {
    /// Number of cores (32 in Table 2); one L2 tile per core.
    pub n_cores: usize,
    /// Number of memory controllers (mesh corners).
    pub n_mem: usize,
    /// Explicit mesh dimensions `(rows, cols)`; `None` picks the
    /// near-square default for the tile count
    /// ([`tsocc_noc::MeshTopology::for_tiles`]: 32→4×8, 128→8×16).
    /// Must multiply to the tile count — `rows × cols == n_cores`.
    pub mesh: Option<(usize, usize)>,
    /// L2 banks per tile: the line→home interleaving granularity
    /// (see [`MachineShape::home_tile`]). 1 for the paper's Table 2
    /// machine; the builder's preset raises it to 2 at 128 cores and
    /// beyond.
    pub l2_banks: usize,
    /// Core pipeline/write-buffer parameters.
    pub core: CoreConfig,
    /// L1 geometry.
    pub l1_params: CacheParams,
    /// L2 tile geometry.
    pub l2_params: CacheParams,
    /// L2 array access latency (cycles).
    pub l2_latency: u64,
    /// Memory access latency (cycles).
    pub mem_latency: u64,
    /// Network parameters.
    pub noc: NocConfig,
    /// Coherence protocol factory.
    pub protocol: ProtocolHandle,
    /// Seed for all deterministic randomness (workload perturbation).
    pub seed: u64,
    /// Which run loop drives the machine (identical results either
    /// way; see [`Stepper`]).
    pub stepper: Stepper,
    /// Deterministic fault-injection plan. [`FaultPlan::none`] — the
    /// default from every constructor — keeps the machine byte-exact
    /// with the pre-fault-axis simulator; real experiments never set
    /// this. See `tsocc_faults`.
    pub faults: FaultPlan,
}

impl std::fmt::Debug for SystemConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemConfig")
            .field("n_cores", &self.n_cores)
            .field("n_mem", &self.n_mem)
            .field("mesh", &self.mesh)
            .field("l2_banks", &self.l2_banks)
            .field("core", &self.core)
            .field("l1_params", &self.l1_params)
            .field("l2_params", &self.l2_params)
            .field("l2_latency", &self.l2_latency)
            .field("mem_latency", &self.mem_latency)
            .field("noc", &self.noc)
            .field("protocol", &self.protocol.protocol_name())
            .field("seed", &self.seed)
            .field("stepper", &self.stepper)
            .field("faults", &self.faults)
            .finish()
    }
}

/// Typed constructor for [`SystemConfig`], the one blessed way to build
/// a machine. Starts from the paper's Table 2 preset; [`Self::small`]
/// switches to the small test machine. Geometry that the presets derive
/// from the core count (`n_mem`, `l2_banks`, the mesh, the seed) stays
/// derived unless set explicitly, so
/// `SystemConfig::builder().cores(n).protocol(p).build()` is
/// field-identical to the historical `table2_with_cores(p, n)` at every
/// `n` — the builder migration cannot perturb a single simulated
/// metric.
///
/// ```
/// use tsocc::{Stepper, SystemConfig};
/// use tsocc_protocols::Protocol;
///
/// let cfg = SystemConfig::builder()
///     .small()
///     .cores(2)
///     .protocol(Protocol::Mesi)
///     .stepper(Stepper::EventDriven)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.n_cores, 2);
/// ```
#[derive(Clone, Debug)]
pub struct SystemConfigBuilder {
    n_cores: usize,
    n_mem: Option<usize>,
    mesh: Option<(usize, usize)>,
    l2_banks: Option<usize>,
    core: CoreConfig,
    l1_params: CacheParams,
    l2_params: CacheParams,
    l2_latency: u64,
    mem_latency: u64,
    noc: NocConfig,
    protocol: Option<ProtocolHandle>,
    seed: Option<u64>,
    stepper: Stepper,
    faults: FaultPlan,
    small: bool,
}

impl SystemConfigBuilder {
    /// Switches every preset field to the small test machine: tiny
    /// caches (8×2 L1, 16×4 L2) force evictions, short latencies keep
    /// litmus iteration fast. Call **before** overriding individual
    /// fields — the preset replaces the cache geometry, the latencies,
    /// and the core parameters wholesale.
    pub fn small(mut self) -> Self {
        self.core = CoreConfig {
            write_buffer_entries: 8,
            l1_hit_latency: 1,
        };
        self.l1_params = CacheParams::new(8, 2);
        self.l2_params = CacheParams::new(16, 4);
        self.l2_latency = 4;
        self.mem_latency = 20;
        self.small = true;
        self
    }

    /// Sets the core count. Unless overridden, `n_mem`, `l2_banks`, and
    /// the mesh keep deriving from it exactly as the presets always
    /// have.
    pub fn cores(mut self, n: usize) -> Self {
        self.n_cores = n;
        self
    }

    /// Sets the coherence protocol (required).
    pub fn protocol(mut self, protocol: impl Into<ProtocolHandle>) -> Self {
        self.protocol = Some(protocol.into());
        self
    }

    /// Sets the run loop (defaults to [`Stepper::EventDriven`]).
    pub fn stepper(mut self, stepper: Stepper) -> Self {
        self.stepper = stepper;
        self
    }

    /// Sets the deterministic fault-injection plan (defaults to
    /// [`FaultPlan::none`]).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the seed for all deterministic randomness (defaults to the
    /// preset's seed: `0xC0FFEE` for Table 2, `42` for the small
    /// machine).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides the memory-controller count (defaults to the preset's
    /// core-count clamp).
    pub fn mem_controllers(mut self, n_mem: usize) -> Self {
        self.n_mem = Some(n_mem);
        self
    }

    /// Overrides the mesh dimensions (defaults to the near-square mesh
    /// for the tile count).
    pub fn mesh(mut self, rows: usize, cols: usize) -> Self {
        self.mesh = Some((rows, cols));
        self
    }

    /// Overrides the L2 bank count (defaults to the preset rule: 2 from
    /// 128 cores up on the Table 2 machine, 1 otherwise).
    pub fn l2_banks(mut self, banks: usize) -> Self {
        self.l2_banks = Some(banks);
        self
    }

    /// Overrides the core pipeline/write-buffer parameters.
    pub fn core(mut self, core: CoreConfig) -> Self {
        self.core = core;
        self
    }

    /// Overrides the L1 geometry.
    pub fn l1_params(mut self, params: CacheParams) -> Self {
        self.l1_params = params;
        self
    }

    /// Overrides the L2 tile geometry.
    pub fn l2_params(mut self, params: CacheParams) -> Self {
        self.l2_params = params;
        self
    }

    /// Overrides the L2 array access latency (cycles).
    pub fn l2_latency(mut self, cycles: u64) -> Self {
        self.l2_latency = cycles;
        self
    }

    /// Overrides the memory access latency (cycles).
    pub fn mem_latency(mut self, cycles: u64) -> Self {
        self.mem_latency = cycles;
        self
    }

    /// Overrides the network parameters.
    pub fn noc(mut self, noc: NocConfig) -> Self {
        self.noc = noc;
        self
    }

    /// Resolves the derived fields and validates the machine against
    /// both the protocol-independent geometry constraints and the
    /// configured protocol's own limits ([`SystemConfig::validate`]).
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when no protocol was set or the assembled
    /// configuration violates a constraint (mesh/tile mismatch,
    /// zero-core machine, directory capacity, …).
    pub fn build(self) -> Result<SystemConfig, ConfigError> {
        let Some(protocol) = self.protocol else {
            return Err(ConfigError(
                "no protocol set: SystemConfig::builder() needs .protocol(…)".to_string(),
            ));
        };
        let n = self.n_cores;
        let (auto_mem, auto_banks, auto_seed) = if self.small {
            (n.clamp(1, 2), 1, 42)
        } else {
            (n.clamp(1, 4), if n >= 128 { 2 } else { 1 }, 0xC0FFEE)
        };
        let cfg = SystemConfig {
            n_cores: n,
            n_mem: self.n_mem.unwrap_or(auto_mem),
            mesh: self.mesh,
            l2_banks: self.l2_banks.unwrap_or(auto_banks),
            core: self.core,
            l1_params: self.l1_params,
            l2_params: self.l2_params,
            l2_latency: self.l2_latency,
            mem_latency: self.mem_latency,
            noc: self.noc,
            protocol,
            seed: self.seed.unwrap_or(auto_seed),
            stepper: self.stepper,
            faults: self.faults,
        };
        cfg.validate().map_err(ConfigError)?;
        Ok(cfg)
    }
}

impl SystemConfig {
    /// A typed builder starting from the paper's Table 2 machine:
    /// 32 cores, 32 KiB 4-way L1s, 1 MiB 16-way L2 tiles, 2D mesh, 4
    /// memory controllers. See [`SystemConfigBuilder`].
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            n_cores: 32,
            n_mem: None,
            mesh: None,
            l2_banks: None,
            core: CoreConfig::default(),
            l1_params: CacheParams::from_capacity(32 * 1024, 4),
            l2_params: CacheParams::from_capacity(1024 * 1024, 16),
            l2_latency: 20,
            mem_latency: 150,
            noc: NocConfig::default(),
            protocol: None,
            seed: None,
            stepper: Stepper::default(),
            faults: FaultPlan::none(),
            small: false,
        }
    }

    /// Number of L2 tiles (one per core).
    pub fn n_tiles(&self) -> usize {
        self.n_cores
    }

    /// The display name of the configured protocol.
    pub fn protocol_name(&self) -> String {
        self.protocol.protocol_name()
    }

    /// Checks the configuration against both the protocol-independent
    /// geometry constraints and the configured protocol's own limits
    /// (e.g. a full-bit-vector directory caps the core count at its
    /// sharer-set width). [`crate::System::new`] calls this, so an
    /// oversized machine fails with a clean message up front instead of
    /// a shift overflow deep inside directory construction.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.protocol.validate_shape(&self.shape())
    }

    /// The protocol-independent machine geometry handed to the
    /// [`tsocc_coherence::ProtocolFactory`] when controllers are built.
    pub fn shape(&self) -> MachineShape {
        use tsocc_coherence::MeshTopology;
        // `for_tiles` needs a positive tile count; a zero-tile machine
        // still gets a shape so `validate` can report the real error.
        let mesh = match self.mesh {
            Some((rows, cols)) => MeshTopology::new(rows, cols),
            None => MeshTopology::for_tiles(self.n_tiles().max(1)),
        };
        MachineShape {
            n_cores: self.n_cores,
            n_tiles: self.n_tiles(),
            n_mem: self.n_mem,
            mesh,
            l2_banks: self.l2_banks,
            l1_params: self.l1_params,
            l2_params: self.l2_params,
            l1_issue_latency: 1,
            l2_latency: self.l2_latency,
            faults: self.faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_protocols::Protocol;

    fn mesi() -> SystemConfigBuilder {
        SystemConfig::builder().protocol(Protocol::Mesi)
    }

    #[test]
    fn table2_matches_paper() {
        let cfg = mesi().build().unwrap();
        assert_eq!(cfg.n_cores, 32);
        assert_eq!(cfg.core.write_buffer_entries, 32);
        assert_eq!(cfg.l1_params.lines() * 64, 32 * 1024);
        assert_eq!(cfg.l2_params.lines() * 64, 1024 * 1024);
        assert_eq!(cfg.n_tiles(), 32);
        assert_eq!(cfg.protocol_name(), "MESI");
    }

    #[test]
    fn shape_mirrors_config() {
        let cfg = mesi().small().cores(4).build().unwrap();
        let shape = cfg.shape();
        assert_eq!(shape.n_cores, 4);
        assert_eq!(shape.n_tiles, cfg.n_tiles());
        assert_eq!(shape.n_mem, cfg.n_mem);
        assert_eq!(shape.l2_latency, cfg.l2_latency);
        assert_eq!(shape.l2_banks, 1);
        assert_eq!((shape.mesh.rows(), shape.mesh.cols()), (2, 2));
    }

    #[test]
    fn mesh_override_must_match_tile_count() {
        assert!(mesi().small().cores(4).mesh(1, 4).build().is_ok());
        let err = mesi().small().cores(4).mesh(2, 3).build().unwrap_err();
        assert!(err.0.contains("routers"), "{err}");
    }

    #[test]
    fn l2_goes_two_banked_at_128_cores() {
        // The paper-size machines keep Table 2's flat interleaving…
        for n in [2, 16, 32, 64] {
            assert_eq!(mesi().cores(n).build().unwrap().l2_banks, 1);
        }
        // …and the 128-core climb stripes line pairs across tiles.
        let cfg = mesi().cores(128).build().unwrap();
        assert_eq!(cfg.l2_banks, 2);
        let shape = cfg.shape();
        assert_eq!((shape.mesh.rows(), shape.mesh.cols()), (8, 16));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn full_vector_directory_rejects_129_cores() {
        // MESI's one-bit-per-core u128 sharer vector caps the machine
        // at 128 cores; 129+ must be a clean config error, not a shift
        // overflow during directory construction.
        assert!(mesi().cores(128).build().is_ok());
        let err = mesi().cores(129).build().unwrap_err();
        assert!(err.0.contains("128") && err.0.contains("129"), "{err}");
    }

    #[test]
    fn builder_without_protocol_is_rejected() {
        let err = SystemConfig::builder().cores(4).build().unwrap_err();
        assert!(err.0.contains("protocol"), "{err}");
    }

    #[test]
    fn coarse_directory_capacity_scales_with_granularity() {
        use tsocc_mesi_coarse::MesiCoarseConfig;
        // One group bit per 4 cores: up to 512 cores fit the u128.
        let p4g4 = Protocol::MesiCoarse(MesiCoarseConfig::new(4, 4));
        let coarse = |n| SystemConfig::builder().protocol(p4g4).cores(n).build();
        assert!(coarse(512).is_ok());
        assert!(coarse(513).is_err());
        // TSO-CC has no sharer vector: no core-count cap.
        let tsocc = Protocol::TsoCc(tsocc_proto::TsoCcConfig::default());
        assert!(SystemConfig::builder()
            .protocol(tsocc)
            .cores(1024)
            .build()
            .is_ok());
    }

    #[test]
    fn zero_core_machine_is_rejected() {
        assert!(mesi().small().cores(0).build().is_err());
    }

    #[test]
    fn config_is_cloneable_and_debuggable() {
        let cfg = mesi().small().cores(2).build().unwrap();
        let cfg2 = cfg.clone();
        assert_eq!(cfg2.n_cores, 2);
        assert!(format!("{cfg2:?}").contains("MESI"));
    }

    /// The builder's derived fields must keep producing exactly the
    /// machines the (now removed) `table2_with_cores`/`small_test`
    /// constructors produced — `sweep_baseline --check` holds the
    /// simulated metrics byte-exact across history, and this pins the
    /// config layer it rests on.
    #[test]
    fn builder_pins_the_historical_presets() {
        for n in [1usize, 2, 4, 32, 64, 128] {
            let t2 = mesi().cores(n).build().unwrap();
            assert_eq!(t2.n_mem, n.clamp(1, 4), "table2 n_mem at {n} cores");
            assert_eq!(t2.l2_banks, if n >= 128 { 2 } else { 1 });
            assert_eq!(t2.seed, 0xC0FFEE);
            assert_eq!(t2.core.write_buffer_entries, 32);
            assert_eq!(t2.l1_params.lines() * 64, 32 * 1024);
            assert_eq!(t2.l2_params.lines() * 64, 1024 * 1024);
            assert_eq!((t2.l2_latency, t2.mem_latency), (20, 150));

            let small = mesi().small().cores(n).build().unwrap();
            assert_eq!(small.n_mem, n.clamp(1, 2), "small n_mem at {n} cores");
            assert_eq!(small.l2_banks, 1);
            assert_eq!(small.seed, 42);
            assert_eq!(small.core.write_buffer_entries, 8);
            assert_eq!(small.l1_params.lines(), 8 * 2);
            assert_eq!(small.l2_params.lines(), 16 * 4);
            assert_eq!((small.l2_latency, small.mem_latency), (4, 20));
        }
    }

    /// Explicit overrides beat the preset's derived fields.
    #[test]
    fn builder_overrides_beat_derived_defaults() {
        let cfg = mesi()
            .small()
            .cores(4)
            .seed(7)
            .mem_controllers(1)
            .l2_banks(2)
            .stepper(Stepper::parallel())
            .build()
            .unwrap();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.n_mem, 1);
        assert_eq!(cfg.l2_banks, 2);
        assert_eq!(cfg.stepper, Stepper::ParallelShards { shards: 0 });
    }
}
