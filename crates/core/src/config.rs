//! System configuration (the paper's Table 2).

use tsocc_cpu::CoreConfig;
use tsocc_mem::CacheParams;
use tsocc_noc::NocConfig;
use tsocc_proto::TsoCcConfig;

/// Which coherence protocol the system runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// The MESI directory baseline with a full sharing vector.
    Mesi,
    /// TSO-CC in any of its configurations (§4.2); includes
    /// CC-shared-to-L2 via [`TsoCcConfig::cc_shared_to_l2`].
    TsoCc(TsoCcConfig),
}

impl Protocol {
    /// The paper's name for this configuration (Figure 3 legend).
    pub fn name(&self) -> String {
        match self {
            Protocol::Mesi => "MESI".to_string(),
            Protocol::TsoCc(cfg) => cfg.name(),
        }
    }

    /// All seven configurations evaluated in the paper, in figure
    /// order.
    pub fn paper_configs() -> Vec<Protocol> {
        vec![
            Protocol::Mesi,
            Protocol::TsoCc(TsoCcConfig::cc_shared_to_l2()),
            Protocol::TsoCc(TsoCcConfig::basic()),
            Protocol::TsoCc(TsoCcConfig::noreset()),
            Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
            Protocol::TsoCc(TsoCcConfig::realistic(12, 0)),
            Protocol::TsoCc(TsoCcConfig::realistic(9, 3)),
        ]
    }
}

/// Full machine configuration.
///
/// [`SystemConfig::table2`] reproduces the paper's simulated machine;
/// [`SystemConfig::small_test`] shrinks the caches so unit and litmus
/// tests exercise evictions and run fast.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Number of cores (32 in Table 2); one L2 tile per core.
    pub n_cores: usize,
    /// Number of memory controllers (mesh corners).
    pub n_mem: usize,
    /// Core pipeline/write-buffer parameters.
    pub core: CoreConfig,
    /// L1 geometry.
    pub l1_params: CacheParams,
    /// L2 tile geometry.
    pub l2_params: CacheParams,
    /// L2 array access latency (cycles).
    pub l2_latency: u64,
    /// Memory access latency (cycles).
    pub mem_latency: u64,
    /// Network parameters.
    pub noc: NocConfig,
    /// Coherence protocol.
    pub protocol: Protocol,
    /// Seed for all deterministic randomness (workload perturbation).
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's Table 2 machine: 32 cores, 32KiB 4-way L1s, 1MiB
    /// 16-way L2 tiles, 2D mesh, 4 memory controllers.
    pub fn table2(protocol: Protocol) -> Self {
        SystemConfig {
            n_cores: 32,
            n_mem: 4,
            core: CoreConfig::default(),
            l1_params: CacheParams::from_capacity(32 * 1024, 4),
            l2_params: CacheParams::from_capacity(1024 * 1024, 16),
            l2_latency: 20,
            mem_latency: 150,
            noc: NocConfig::default(),
            protocol,
            seed: 0xC0FFEE,
        }
    }

    /// Like [`SystemConfig::table2`] but with `n` cores.
    pub fn table2_with_cores(protocol: Protocol, n: usize) -> Self {
        let mut cfg = SystemConfig::table2(protocol);
        cfg.n_cores = n;
        cfg.n_mem = n.min(4).max(1);
        cfg
    }

    /// A small machine for tests: tiny caches force evictions, small
    /// latencies keep litmus iteration fast.
    pub fn small_test(n_cores: usize, protocol: Protocol) -> Self {
        SystemConfig {
            n_cores,
            n_mem: n_cores.min(2).max(1),
            core: CoreConfig {
                write_buffer_entries: 8,
                l1_hit_latency: 1,
            },
            l1_params: CacheParams::new(8, 2),
            l2_params: CacheParams::new(16, 4),
            l2_latency: 4,
            mem_latency: 20,
            noc: NocConfig::default(),
            protocol,
            seed: 42,
        }
    }

    /// Number of L2 tiles (one per core).
    pub fn n_tiles(&self) -> usize {
        self.n_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_are_seven_with_unique_names() {
        let configs = Protocol::paper_configs();
        assert_eq!(configs.len(), 7);
        let mut names: Vec<String> = configs.iter().map(|c| c.name()).collect();
        assert_eq!(names[0], "MESI");
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7, "names must be distinct");
    }

    #[test]
    fn table2_matches_paper() {
        let cfg = SystemConfig::table2(Protocol::Mesi);
        assert_eq!(cfg.n_cores, 32);
        assert_eq!(cfg.core.write_buffer_entries, 32);
        assert_eq!(cfg.l1_params.lines() * 64, 32 * 1024);
        assert_eq!(cfg.l2_params.lines() * 64, 1024 * 1024);
        assert_eq!(cfg.n_tiles(), 32);
    }
}
