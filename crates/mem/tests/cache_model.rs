//! Model-based property testing of the cache array: a reference model
//! (a plain map plus an LRU list) must agree with [`CacheArray`] under
//! arbitrary operation sequences.

use std::collections::HashMap;

use proptest::prelude::*;
use tsocc_mem::{CacheArray, CacheParams, InsertOutcome, LineAddr};

#[derive(Clone, Debug)]
enum Op {
    Lookup(u64),
    Insert(u64, u32),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..24).prop_map(Op::Lookup),
        ((0u64..24), any::<u32>()).prop_map(|(l, v)| Op::Insert(l, v)),
        (0u64..24).prop_map(Op::Remove),
    ]
}

/// Reference model: per-set vectors ordered by recency (front = LRU).
struct Model {
    sets: usize,
    ways: usize,
    data: HashMap<u64, u32>,
    recency: Vec<Vec<u64>>, // per set, LRU order
}

impl Model {
    fn new(sets: usize, ways: usize) -> Self {
        Model {
            sets,
            ways,
            data: HashMap::new(),
            recency: vec![Vec::new(); sets],
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets as u64) as usize
    }

    fn touch(&mut self, line: u64) {
        let s = self.set_of(line);
        self.recency[s].retain(|&l| l != line);
        self.recency[s].push(line);
    }

    fn lookup(&mut self, line: u64) -> Option<u32> {
        if let Some(&v) = self.data.get(&line) {
            self.touch(line);
            Some(v)
        } else {
            None
        }
    }

    fn insert(&mut self, line: u64, value: u32) -> Option<(u64, u32)> {
        assert!(!self.data.contains_key(&line));
        let s = self.set_of(line);
        let victim = if self.recency[s].len() >= self.ways {
            let victim = self.recency[s].remove(0);
            let v = self.data.remove(&victim).expect("victim present");
            Some((victim, v))
        } else {
            None
        };
        self.data.insert(line, value);
        self.touch(line);
        victim
    }

    fn remove(&mut self, line: u64) -> Option<u32> {
        let s = self.set_of(line);
        self.recency[s].retain(|&l| l != line);
        self.data.remove(&line)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_array_agrees_with_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..200),
    ) {
        let (sets, ways) = (4usize, 2usize);
        let mut cache: CacheArray<u32> = CacheArray::new(CacheParams::new(sets, ways));
        let mut model = Model::new(sets, ways);
        for op in ops {
            match op {
                Op::Lookup(l) => {
                    let line = LineAddr::new(l);
                    prop_assert_eq!(cache.lookup(line).copied(), model.lookup(l));
                }
                Op::Insert(l, v) => {
                    if let Some(mv) = model.data.get_mut(&l) {
                        // The array forbids double insertion; update in
                        // place through the same path controllers use.
                        *cache.peek_mut(LineAddr::new(l)).expect("resident") = v;
                        *mv = v;
                        continue;
                    }
                    let outcome = cache.insert(LineAddr::new(l), v, 0, |_, _| true);
                    let expected = model.insert(l, v);
                    match (outcome, expected) {
                        (InsertOutcome::Installed, None) => {}
                        (InsertOutcome::Evicted(va, ve), Some((ma, mv))) => {
                            prop_assert_eq!(va.as_u64(), ma);
                            prop_assert_eq!(ve, mv);
                        }
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "divergence: array {got:?} vs model {want:?}"
                            )));
                        }
                    }
                }
                Op::Remove(l) => {
                    prop_assert_eq!(cache.remove(LineAddr::new(l)), model.remove(l));
                }
            }
            prop_assert_eq!(cache.len(), model.data.len());
        }
    }

    #[test]
    fn capacity_never_exceeded(
        lines in proptest::collection::vec(0u64..64, 1..300),
    ) {
        let params = CacheParams::new(4, 4);
        let mut cache: CacheArray<u64> = CacheArray::new(params);
        for (i, l) in lines.iter().enumerate() {
            let line = LineAddr::new(*l);
            if cache.peek(line).is_none() {
                cache.insert(line, i as u64, 0, |_, _| true);
            }
            prop_assert!(cache.len() <= params.lines());
        }
    }

    #[test]
    fn retain_is_exact(
        lines in proptest::collection::vec(0u64..32, 1..40),
        threshold in 0u64..40,
    ) {
        let mut cache: CacheArray<u64> = CacheArray::new(CacheParams::new(8, 4));
        for (i, l) in lines.iter().enumerate() {
            let line = LineAddr::new(*l);
            if cache.peek(line).is_none() {
                cache.insert(line, i as u64, 0, |_, _| true);
            }
        }
        let before: Vec<_> = cache.iter().map(|(l, &v)| (l, v)).collect();
        let expected_removed = before.iter().filter(|(_, v)| *v < threshold).count();
        let removed = cache.retain(|_, &v| v >= threshold);
        prop_assert_eq!(removed, expected_removed);
        prop_assert!(cache.iter().all(|(_, &v)| v >= threshold));
    }
}
