//! Storage-model parity: the flat hot-path structures ([`LineMap`] and
//! the paged [`MainMemory`]) are driven through random operation
//! sequences against the `std::collections::HashMap` reference model
//! they replaced, and must agree on every lookup, removal, length and
//! full iteration — including the access patterns that stress an
//! open-addressed table: churn on a small key pool (busy-table /
//! MSHR-style insert-remove cycles), keys pinned live across heavy
//! churn (eviction-pinned lines), and colliding stride keys.

use std::collections::HashMap;

use proptest::prelude::*;
use tsocc_mem::{LineAddr, LineData, LineMap, MainMemory};

/// Op encoding: 0 = insert, 1 = remove, 2 = lookup (the value operand
/// doubles as the inserted payload).
fn apply_ops(keys: &[u64], ops: &[(u8, usize, u64)]) {
    let mut map: LineMap<u64> = LineMap::new();
    let mut reference: HashMap<u64, u64> = HashMap::new();
    for (step, &(op, key_index, value)) in ops.iter().enumerate() {
        let key = keys[key_index % keys.len()];
        let line = LineAddr::new(key);
        match op % 3 {
            0 => {
                assert_eq!(
                    map.insert(line, value),
                    reference.insert(key, value),
                    "insert {key} at step {step}"
                );
            }
            1 => {
                assert_eq!(
                    map.remove(line),
                    reference.remove(&key),
                    "remove {key} at step {step}"
                );
            }
            _ => {
                assert_eq!(
                    map.get(line),
                    reference.get(&key),
                    "lookup {key} at step {step}"
                );
                assert_eq!(map.contains_key(line), reference.contains_key(&key));
            }
        }
        assert_eq!(map.len(), reference.len(), "len at step {step}");
        assert_eq!(map.is_empty(), reference.is_empty());
    }
    let mut got: Vec<(u64, u64)> = map.iter().map(|(l, &v)| (l.as_u64(), v)).collect();
    got.sort_unstable();
    let mut want: Vec<(u64, u64)> = reference.into_iter().collect();
    want.sort_unstable();
    assert_eq!(got, want, "final iteration must match the reference model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary keys, arbitrary op sequences.
    #[test]
    fn linemap_matches_hashmap_on_random_keys(
        keys in proptest::collection::vec(any::<u64>(), 1..24),
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u64>()), 1..400),
    ) {
        apply_ops(&keys, &ops);
    }

    /// Busy-table churn: a handful of lines inserted and removed over
    /// and over (what the L2 busy and L1 MSHR tables do all run long),
    /// so tombstone reuse and same-size rehashes are exercised.
    #[test]
    fn linemap_matches_hashmap_under_small_pool_churn(
        pool_size in 1u64..8,
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u64>()), 100..1500),
    ) {
        let keys: Vec<u64> = (0..pool_size).collect();
        apply_ops(&keys, &ops);
    }

    /// Eviction-pinned pattern: some keys stay live for the whole run
    /// (inserted up front, never removed — like lines pinned by an
    /// in-flight transaction) while colliding stride neighbours churn
    /// around them.
    #[test]
    fn linemap_keeps_pinned_keys_through_stride_churn(
        pinned in proptest::collection::vec(0u64..64, 1..8),
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u64>()), 100..1000),
    ) {
        let mut map: LineMap<u64> = LineMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for &p in &pinned {
            // Pinned keys share low bits with the churn keys below
            // (same probe neighbourhood) but live in a disjoint range.
            let key = (p << 40) | 1;
            map.insert(LineAddr::new(key), p);
            reference.insert(key, p);
        }
        for &(op, key_index, value) in &ops {
            let key = ((key_index as u64 % 64) << 40) | 2;
            let line = LineAddr::new(key);
            match op % 2 {
                0 => {
                    prop_assert_eq!(map.insert(line, value), reference.insert(key, value));
                }
                _ => {
                    prop_assert_eq!(map.remove(line), reference.remove(&key));
                }
            }
        }
        for &p in &pinned {
            let key = (p << 40) | 1;
            prop_assert_eq!(
                map.get(LineAddr::new(key)),
                reference.get(&key),
                "pinned key {} must survive churn", key
            );
        }
        prop_assert_eq!(map.len(), reference.len());
    }

    /// The paged memory agrees with a `HashMap<LineAddr, LineData>`
    /// model on reads, the touched-line count and sorted iteration,
    /// for writes scattered within and across pages.
    #[test]
    fn paged_memory_matches_hashmap_model(
        writes in proptest::collection::vec((0u64..4096, any::<u64>()), 1..300),
        probes in proptest::collection::vec(0u64..4096, 1..100),
        page_stride in 1u64..1_000_000,
    ) {
        let mut mem = MainMemory::new();
        let mut reference: HashMap<u64, LineData> = HashMap::new();
        for &(slot, value) in &writes {
            // Spread slots over distant pages so page allocation, within-
            // page neighbours and page-table growth are all exercised.
            let line = (slot / 64) * page_stride * 64 + (slot % 64);
            let mut data = LineData::zeroed();
            data.write_word((value % 8) as usize, value);
            mem.write_line(LineAddr::new(line), data);
            reference.insert(line, data);
        }
        for &slot in &probes {
            let line = (slot / 64) * page_stride * 64 + (slot % 64);
            let want = reference.get(&line).copied().unwrap_or_default();
            prop_assert_eq!(mem.read_line(LineAddr::new(line)), want, "line {}", line);
        }
        prop_assert_eq!(mem.touched_lines(), reference.len());
        let got: Vec<(u64, LineData)> = mem.lines().map(|(l, d)| (l.as_u64(), *d)).collect();
        let mut want: Vec<(u64, LineData)> = reference.into_iter().collect();
        want.sort_unstable_by_key(|&(l, _)| l);
        prop_assert_eq!(got, want, "iteration must be sorted and complete");
    }
}
