//! Generic set-associative cache array with LRU replacement.
//!
//! The array is generic over the per-line payload `T` (protocol state,
//! timestamps, data, ...), so both L1 and L2 controllers of both protocols
//! share the same structure. Only *stable* lines live in the array; lines
//! in the middle of a coherence transaction are held in MSHRs by the
//! controllers, which keeps replacement from ever selecting a transient
//! line by construction. Controllers may additionally pin lines (e.g. a
//! busy directory entry) through the `evictable` predicate.

use std::fmt;

use crate::addr::LineAddr;

/// Geometry of a cache array.
///
/// # Examples
///
/// ```
/// use tsocc_mem::CacheParams;
///
/// // 32 KiB, 64B lines, 4-way => 128 sets.
/// let p = CacheParams::from_capacity(32 * 1024, 4);
/// assert_eq!(p.sets(), 128);
/// assert_eq!(p.ways(), 4);
/// assert_eq!(p.lines(), 512);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheParams {
    sets: usize,
    ways: usize,
}

impl CacheParams {
    /// Creates a geometry from an explicit set count and associativity.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or if `ways` is 0.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be positive");
        CacheParams { sets, ways }
    }

    /// Creates a geometry from a byte capacity (64B lines).
    ///
    /// # Panics
    ///
    /// Panics if the derived set count is not a positive power of two.
    pub fn from_capacity(bytes: usize, ways: usize) -> Self {
        let lines = bytes / crate::addr::LINE_BYTES as usize;
        assert!(
            ways > 0 && lines >= ways,
            "capacity too small for associativity"
        );
        CacheParams::new(lines / ways, ways)
    }

    /// Number of sets.
    pub const fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Total line capacity.
    pub const fn lines(&self) -> usize {
        self.sets * self.ways
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.as_u64() % self.sets as u64) as usize
    }
}

#[derive(Clone, Debug)]
struct Slot<T> {
    line: LineAddr,
    lru: u64,
    entry: T,
}

/// Result of inserting a line into a [`CacheArray`].
#[derive(Debug, PartialEq, Eq)]
pub enum InsertOutcome<T> {
    /// The line was installed without displacing anything.
    Installed,
    /// The line was installed and the returned victim was evicted.
    Evicted(LineAddr, T),
    /// No way in the set was evictable; nothing was installed.
    SetFull,
}

/// A set-associative cache array with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use tsocc_mem::{Addr, CacheArray, CacheParams, InsertOutcome};
///
/// let mut c: CacheArray<u32> = CacheArray::new(CacheParams::new(1, 2));
/// let l = |n: u64| Addr::new(n * 64).line();
/// assert!(matches!(c.insert(l(0), 10, 0, |_, _| true), InsertOutcome::Installed));
/// assert!(matches!(c.insert(l(1), 11, 1, |_, _| true), InsertOutcome::Installed));
/// // Set is full; LRU (line 0) is evicted.
/// match c.insert(l(2), 12, 2, |_, _| true) {
///     InsertOutcome::Evicted(victim, entry) => {
///         assert_eq!(victim, l(0));
///         assert_eq!(entry, 10);
///     }
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
#[derive(Clone)]
pub struct CacheArray<T> {
    params: CacheParams,
    sets: Vec<Vec<Slot<T>>>,
    tick: u64,
}

impl<T> CacheArray<T> {
    /// Creates an empty array with the given geometry.
    ///
    /// Set storage is allocated lazily on each set's first insert:
    /// building a machine costs O(sets) empty vectors (no heap
    /// traffic), and sweeps over mostly-idle caches touch only the sets
    /// actually used.
    pub fn new(params: CacheParams) -> Self {
        let sets = (0..params.sets()).map(|_| Vec::new()).collect();
        CacheArray {
            params,
            sets,
            tick: 0,
        }
    }

    /// The array geometry.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the array holds no lines.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Looks up a line without updating recency.
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        let set = &self.sets[self.params.set_of(line)];
        set.iter().find(|s| s.line == line).map(|s| &s.entry)
    }

    /// Looks up a line and marks it most-recently used.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&T> {
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[self.params.set_of(line)];
        set.iter_mut().find(|s| s.line == line).map(|s| {
            s.lru = tick;
            &s.entry
        })
    }

    /// Mutable lookup; marks the line most-recently used.
    pub fn lookup_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        self.tick += 1;
        let tick = self.tick;
        let set = &mut self.sets[self.params.set_of(line)];
        set.iter_mut().find(|s| s.line == line).map(|s| {
            s.lru = tick;
            &mut s.entry
        })
    }

    /// Mutable access without touching recency (for sweeps/metadata).
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let set = &mut self.sets[self.params.set_of(line)];
        set.iter_mut()
            .find(|s| s.line == line)
            .map(|s| &mut s.entry)
    }

    /// Installs `entry` for `line`, evicting the least-recently-used
    /// evictable way if the set is full.
    ///
    /// `now` is accepted for interface symmetry and future replacement
    /// policies; recency is tracked by an internal access tick.
    ///
    /// # Panics
    ///
    /// Panics if the line is already resident (callers must use
    /// [`CacheArray::lookup_mut`] to update an existing line).
    pub fn insert<F>(
        &mut self,
        line: LineAddr,
        entry: T,
        _now: u64,
        evictable: F,
    ) -> InsertOutcome<T>
    where
        F: Fn(LineAddr, &T) -> bool,
    {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.params.ways();
        let set_idx = self.params.set_of(line);
        let set = &mut self.sets[set_idx];
        assert!(
            set.iter().all(|s| s.line != line),
            "line {line} already resident; update in place instead"
        );
        if set.len() < ways {
            if set.capacity() == 0 {
                // First touch of this set: one exact allocation instead
                // of doubling through push-growth.
                set.reserve_exact(ways);
            }
            set.push(Slot {
                line,
                lru: tick,
                entry,
            });
            return InsertOutcome::Installed;
        }
        // Choose the LRU way among evictable ones.
        let victim = set
            .iter()
            .enumerate()
            .filter(|(_, s)| evictable(s.line, &s.entry))
            .min_by_key(|(_, s)| s.lru)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let old = std::mem::replace(
                    &mut set[i],
                    Slot {
                        line,
                        lru: tick,
                        entry,
                    },
                );
                InsertOutcome::Evicted(old.line, old.entry)
            }
            None => InsertOutcome::SetFull,
        }
    }

    /// Removes and returns the entry for `line`.
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        let set = &mut self.sets[self.params.set_of(line)];
        let idx = set.iter().position(|s| s.line == line)?;
        Some(set.swap_remove(idx).entry)
    }

    /// Iterates over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.sets
            .iter()
            .flat_map(|set| set.iter().map(|s| (s.line, &s.entry)))
    }

    /// Mutably iterates over all resident lines (used for the TSO-CC
    /// self-invalidation sweep).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (LineAddr, &mut T)> {
        self.sets
            .iter_mut()
            .flat_map(|set| set.iter_mut().map(|s| (s.line, &mut s.entry)))
    }

    /// Removes every line for which `pred` returns true; returns how many
    /// lines were removed.
    pub fn retain<F>(&mut self, mut keep: F) -> usize
    where
        F: FnMut(LineAddr, &T) -> bool,
    {
        let mut removed = 0;
        for set in &mut self.sets {
            let before = set.len();
            set.retain(|s| keep(s.line, &s.entry));
            removed += before - set.len();
        }
        removed
    }
}

impl<T: fmt::Debug> fmt::Debug for CacheArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CacheArray({} sets x {} ways, {} resident)",
            self.params.sets(),
            self.params.ways(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn l(n: u64) -> LineAddr {
        Addr::new(n * 64).line()
    }

    fn tiny() -> CacheArray<u32> {
        CacheArray::new(CacheParams::new(2, 2))
    }

    #[test]
    fn params_from_capacity() {
        let p = CacheParams::from_capacity(1024 * 1024, 16);
        assert_eq!(p.lines(), 16384);
        assert_eq!(p.sets(), 1024);
    }

    #[test]
    #[should_panic]
    fn zero_ways_panics() {
        let _ = CacheParams::new(4, 0);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_sets_panics() {
        let _ = CacheParams::new(3, 2);
    }

    #[test]
    fn lookup_miss_and_hit() {
        let mut c = tiny();
        assert!(c.lookup(l(0)).is_none());
        c.insert(l(0), 5, 0, |_, _| true);
        assert_eq!(c.lookup(l(0)), Some(&5));
        assert_eq!(c.peek(l(0)), Some(&5));
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut c = tiny();
        // Lines 0 and 2 map to set 0 (2 sets).
        c.insert(l(0), 0, 0, |_, _| true);
        c.insert(l(2), 2, 1, |_, _| true);
        // Touch line 0 so line 2 becomes LRU.
        c.lookup(l(0));
        match c.insert(l(4), 4, 2, |_, _| true) {
            InsertOutcome::Evicted(victim, entry) => {
                assert_eq!(victim, l(2));
                assert_eq!(entry, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.peek(l(0)).is_some());
        assert!(c.peek(l(4)).is_some());
    }

    #[test]
    fn eviction_respects_pinning() {
        let mut c = tiny();
        c.insert(l(0), 100, 0, |_, _| true);
        c.insert(l(2), 200, 1, |_, _| true);
        // Only entry 200 is evictable.
        match c.insert(l(4), 4, 2, |_, e| *e == 200) {
            InsertOutcome::Evicted(victim, _) => assert_eq!(victim, l(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn set_full_when_nothing_evictable() {
        let mut c = tiny();
        c.insert(l(0), 1, 0, |_, _| true);
        c.insert(l(2), 2, 1, |_, _| true);
        assert!(matches!(
            c.insert(l(4), 3, 2, |_, _| false),
            InsertOutcome::SetFull
        ));
        // Nothing was displaced.
        assert!(c.peek(l(0)).is_some());
        assert!(c.peek(l(2)).is_some());
        assert!(c.peek(l(4)).is_none());
    }

    #[test]
    fn remove_returns_entry() {
        let mut c = tiny();
        c.insert(l(1), 7, 0, |_, _| true);
        assert_eq!(c.remove(l(1)), Some(7));
        assert_eq!(c.remove(l(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let mut c = tiny();
        c.insert(l(1), 7, 0, |_, _| true);
        c.insert(l(1), 8, 1, |_, _| true);
    }

    #[test]
    fn retain_removes_matching() {
        let mut c = tiny();
        c.insert(l(0), 1, 0, |_, _| true);
        c.insert(l(1), 2, 0, |_, _| true);
        c.insert(l(2), 3, 0, |_, _| true);
        let removed = c.retain(|_, e| *e != 2);
        assert_eq!(removed, 1);
        assert_eq!(c.len(), 2);
        assert!(c.peek(l(1)).is_none());
    }

    #[test]
    fn iter_visits_all() {
        let mut c = tiny();
        for i in 0..4 {
            c.insert(l(i), i as u32, 0, |_, _| true);
        }
        let mut lines: Vec<u64> = c.iter().map(|(la, _)| la.as_u64()).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1, 2, 3]);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        // Lines 0,1 go to different sets; both fit even with 2 ways.
        c.insert(l(0), 0, 0, |_, _| true);
        c.insert(l(1), 1, 0, |_, _| true);
        c.insert(l(2), 2, 0, |_, _| true);
        c.insert(l(3), 3, 0, |_, _| true);
        assert_eq!(c.len(), 4);
    }
}
