//! Flat, allocation-light hash maps for per-line controller state.
//!
//! The simulator's hot paths — MSHR lookups on every L1 submit, busy-table
//! lookups on every L2 message, writeback-buffer probes on every eviction
//! race — are all keyed by [`LineAddr`]. The standard library `HashMap`
//! serves them correctly but pays a SipHash invocation per probe, which
//! dominates once the per-access protocol work itself is cheap.
//! [`LineMap`] replaces it with an open-addressed table using a
//! hand-rolled multiply-xor mixer (the FxHash idea, written out here so
//! the workspace stays dependency-free): one multiplication and two
//! shifts per probe, with linear probing in a power-of-two table.
//!
//! Semantically `LineMap<T>` is a strict subset of
//! `HashMap<LineAddr, T>` (verified against exactly that reference model
//! by `crates/mem/tests/storage_props.rs`); the only observable
//! difference is that [`LineMap::iter`] makes no ordering promise of its
//! own — callers wanting a canonical order sort, as they would have with
//! the standard map.

use crate::addr::LineAddr;

/// Multiply-xor finalizer (SplitMix64's output stage): cheap, and strong
/// enough that line addresses with stride patterns (same set bits, page
/// strides) still spread across the table.
#[inline]
fn mix(key: u64) -> u64 {
    let mut h = key;
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[derive(Clone, Debug)]
enum Slot<T> {
    Empty,
    /// A removed entry; probes continue past it, inserts may reuse it.
    Tombstone,
    Full(u64, T),
}

/// The raw open-addressed table, keyed by bare `u64`. [`LineMap`] wraps
/// it with [`LineAddr`] keys; [`crate::memory::MainMemory`] uses it
/// directly as its page table (keyed by page number).
#[derive(Clone, Debug)]
pub(crate) struct FxMap<T> {
    /// Power-of-two slot array; empty until the first insert.
    slots: Vec<Slot<T>>,
    /// Live entries.
    len: usize,
    /// Live entries plus tombstones (bounds probe sequences).
    used: usize,
}

const MIN_CAPACITY: usize = 16;

impl<T> Default for FxMap<T> {
    fn default() -> Self {
        FxMap::new()
    }
}

impl<T> FxMap<T> {
    pub(crate) fn new() -> Self {
        FxMap {
            slots: Vec::new(),
            len: 0,
            used: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Index of the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Tombstone => {}
                Slot::Full(k, _) => {
                    if *k == key {
                        return Some(i);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    pub(crate) fn get(&self, key: u64) -> Option<&T> {
        self.find(key).map(|i| match &self.slots[i] {
            Slot::Full(_, v) => v,
            _ => unreachable!("find returns full slots"),
        })
    }

    pub(crate) fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        self.find(key).map(|i| match &mut self.slots[i] {
            Slot::Full(_, v) => v,
            _ => unreachable!("find returns full slots"),
        })
    }

    pub(crate) fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Rebuilds the table with `capacity` slots (a power of two),
    /// dropping tombstones.
    fn rehash(&mut self, capacity: usize) {
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(capacity, || Slot::Empty);
        self.used = self.len;
        let mask = capacity - 1;
        for slot in old {
            if let Slot::Full(k, v) = slot {
                let mut i = (mix(k) as usize) & mask;
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Full(k, v);
            }
        }
    }

    /// Grows (or compacts tombstones away) so at least one more insert
    /// stays under the 3/4 load-factor bound.
    fn reserve_one(&mut self) {
        let cap = self.slots.len();
        if cap == 0 {
            self.rehash(MIN_CAPACITY);
        } else if (self.used + 1) * 4 > cap * 3 {
            // Double only when live entries genuinely fill the table;
            // otherwise the table is mostly tombstones (churn) and a
            // same-size rehash reclaims them.
            let target = if (self.len + 1) * 2 > cap {
                cap * 2
            } else {
                cap
            };
            self.rehash(target);
        }
    }

    pub(crate) fn insert(&mut self, key: u64, value: T) -> Option<T> {
        self.reserve_one();
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        let mut first_tombstone = None;
        loop {
            match &mut self.slots[i] {
                Slot::Empty => {
                    let target = first_tombstone.unwrap_or(i);
                    if first_tombstone.is_none() {
                        self.used += 1;
                    }
                    self.slots[target] = Slot::Full(key, value);
                    self.len += 1;
                    return None;
                }
                Slot::Tombstone => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(i);
                    }
                }
                Slot::Full(k, v) => {
                    if *k == key {
                        return Some(std::mem::replace(v, value));
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    pub(crate) fn remove(&mut self, key: u64) -> Option<T> {
        let i = self.find(key)?;
        match std::mem::replace(&mut self.slots[i], Slot::Tombstone) {
            Slot::Full(_, v) => {
                self.len -= 1;
                Some(v)
            }
            _ => unreachable!("find returns full slots"),
        }
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots.iter().filter_map(|s| match s {
            Slot::Full(k, v) => Some((*k, v)),
            _ => None,
        })
    }
}

/// An open-addressed hash map keyed by [`LineAddr`], tuned for the
/// per-line transaction tables on the simulator's hot paths (L1 MSHRs,
/// L2 busy tables, writeback buffers).
///
/// Drop-in for the `HashMap<LineAddr, T>` subset the controllers use:
/// `insert` returns the previous value, `remove` returns the evicted
/// value, lookups borrow. Iteration order is unspecified (like the
/// standard map); no controller iterates its transaction tables.
///
/// # Examples
///
/// ```
/// use tsocc_mem::{Addr, LineMap};
///
/// let mut mshrs: LineMap<&'static str> = LineMap::new();
/// let line = Addr::new(0x1040).line();
/// assert!(mshrs.insert(line, "load miss").is_none());
/// assert!(mshrs.contains_key(line));
/// assert_eq!(mshrs.get(line), Some(&"load miss"));
/// assert_eq!(mshrs.remove(line), Some("load miss"));
/// assert!(mshrs.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct LineMap<T> {
    raw: FxMap<T>,
}

impl<T> Default for LineMap<T> {
    fn default() -> Self {
        LineMap::new()
    }
}

impl<T> LineMap<T> {
    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        LineMap { raw: FxMap::new() }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Whether `line` has an entry.
    #[inline]
    pub fn contains_key(&self, line: LineAddr) -> bool {
        self.raw.contains_key(line.as_u64())
    }

    /// Borrows the entry for `line`.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&T> {
        self.raw.get(line.as_u64())
    }

    /// Mutably borrows the entry for `line`.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        self.raw.get_mut(line.as_u64())
    }

    /// Inserts an entry, returning the previous one if present.
    #[inline]
    pub fn insert(&mut self, line: LineAddr, value: T) -> Option<T> {
        self.raw.insert(line.as_u64(), value)
    }

    /// Removes and returns the entry for `line`.
    #[inline]
    pub fn remove(&mut self, line: LineAddr) -> Option<T> {
        self.raw.remove(line.as_u64())
    }

    /// Iterates over all entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &T)> {
        self.raw.iter().map(|(k, v)| (LineAddr::new(k), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: LineMap<u64> = LineMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(LineAddr::new(7)), None);
        assert_eq!(m.insert(LineAddr::new(7), 70), None);
        assert_eq!(m.insert(LineAddr::new(9), 90), None);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(LineAddr::new(7)), Some(&70));
        assert_eq!(m.insert(LineAddr::new(7), 71), Some(70));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(LineAddr::new(7)), Some(71));
        assert_eq!(m.remove(LineAddr::new(7)), None);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(LineAddr::new(9)));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m: LineMap<Vec<u32>> = LineMap::new();
        m.insert(LineAddr::new(3), vec![1]);
        m.get_mut(LineAddr::new(3)).unwrap().push(2);
        assert_eq!(m.get(LineAddr::new(3)), Some(&vec![1, 2]));
        assert_eq!(m.get_mut(LineAddr::new(4)), None);
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut m: LineMap<u64> = LineMap::new();
        for i in 0..10_000u64 {
            m.insert(LineAddr::new(i * 64), i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(LineAddr::new(i * 64)), Some(&i), "key {i}");
        }
    }

    #[test]
    fn churn_on_a_small_key_pool_stays_bounded_and_correct() {
        // Busy-table pattern: the same few lines are inserted and
        // removed over and over; tombstones must be reclaimed rather
        // than degrade probes or force unbounded growth.
        let mut m: LineMap<u64> = LineMap::new();
        for round in 0..50_000u64 {
            let line = LineAddr::new(round % 7);
            assert_eq!(m.insert(line, round), None, "round {round}");
            assert_eq!(m.remove(line), Some(round));
        }
        assert!(m.is_empty());
        assert!(
            m.raw.slots.len() <= MIN_CAPACITY,
            "churn must not grow the table: {} slots",
            m.raw.slots.len()
        );
    }

    #[test]
    fn colliding_stride_keys_all_resolve() {
        // Keys sharing low bits (page/set strides) probe into the same
        // neighbourhood; all must remain reachable.
        let mut m: LineMap<u64> = LineMap::new();
        for i in 0..512u64 {
            m.insert(LineAddr::new(i << 32), i);
        }
        for i in 0..512u64 {
            assert_eq!(m.get(LineAddr::new(i << 32)), Some(&i));
        }
        for i in (0..512u64).step_by(2) {
            assert_eq!(m.remove(LineAddr::new(i << 32)), Some(i));
        }
        for i in (1..512u64).step_by(2) {
            assert_eq!(m.get(LineAddr::new(i << 32)), Some(&i));
        }
    }

    #[test]
    fn iter_yields_every_live_entry() {
        let mut m: LineMap<u64> = LineMap::new();
        for i in 0..100u64 {
            m.insert(LineAddr::new(i), i * 10);
        }
        m.remove(LineAddr::new(50));
        let mut got: Vec<(u64, u64)> = m.iter().map(|(l, &v)| (l.as_u64(), v)).collect();
        got.sort_unstable();
        let want: Vec<(u64, u64)> = (0..100u64)
            .filter(|&i| i != 50)
            .map(|i| (i, i * 10))
            .collect();
        assert_eq!(got, want);
    }
}
