//! Functional cache-line data.

use std::fmt;

use crate::addr::WORDS_PER_LINE;

/// The data payload of one 64-byte cache line, as eight 64-bit words.
///
/// # Examples
///
/// ```
/// use tsocc_mem::LineData;
///
/// let mut line = LineData::zeroed();
/// line.write_word(3, 0xdead_beef);
/// assert_eq!(line.read_word(3), 0xdead_beef);
/// assert_eq!(line.read_word(0), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineData {
    words: [u64; WORDS_PER_LINE],
}

impl LineData {
    /// A line of all-zero words (the reset value of simulated memory).
    #[inline]
    pub const fn zeroed() -> Self {
        LineData {
            words: [0; WORDS_PER_LINE],
        }
    }

    /// Creates a line from explicit words.
    #[inline]
    pub const fn from_words(words: [u64; WORDS_PER_LINE]) -> Self {
        LineData { words }
    }

    /// Reads the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    #[inline]
    pub fn read_word(&self, index: usize) -> u64 {
        self.words[index]
    }

    /// Writes the word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    #[inline]
    pub fn write_word(&mut self, index: usize, value: u64) {
        self.words[index] = value;
    }

    /// All words of the line.
    #[inline]
    pub fn words(&self) -> &[u64; WORDS_PER_LINE] {
        &self.words
    }
}

impl Default for LineData {
    fn default() -> Self {
        LineData::zeroed()
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineData[")?;
        for (i, w) in self.words.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w:x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_reads_zero() {
        let line = LineData::zeroed();
        for i in 0..WORDS_PER_LINE {
            assert_eq!(line.read_word(i), 0);
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mut line = LineData::zeroed();
        for i in 0..WORDS_PER_LINE {
            line.write_word(i, (i as u64 + 1) * 1000);
        }
        for i in 0..WORDS_PER_LINE {
            assert_eq!(line.read_word(i), (i as u64 + 1) * 1000);
        }
    }

    #[test]
    fn writes_do_not_alias() {
        let mut line = LineData::zeroed();
        line.write_word(2, 7);
        assert_eq!(line.read_word(1), 0);
        assert_eq!(line.read_word(3), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_word_panics() {
        let line = LineData::zeroed();
        let _ = line.read_word(8);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", LineData::zeroed()).is_empty());
    }
}
