//! Paged main-memory backing store.

use crate::addr::{Addr, LineAddr};
use crate::line::LineData;
use crate::linemap::FxMap;

/// Cache lines per memory page (64 lines × 64 B = 4 KiB pages).
const PAGE_LINES: usize = 64;
const PAGE_SHIFT: u32 = PAGE_LINES.trailing_zeros();
const PAGE_MASK: u64 = PAGE_LINES as u64 - 1;
// The shift/mask split and the one-word `touched` bitmap both require
// a power-of-two line count of at most 64.
const _: () = assert!(PAGE_LINES.is_power_of_two() && PAGE_LINES <= 64);

/// One 4 KiB page of simulated DRAM: a flat line array plus a bitmap of
/// lines ever written (so sparse iteration stays exact — a zero-filled
/// but never-written line is *not* part of the memory image).
#[derive(Clone, Debug)]
struct Page {
    touched: u64,
    lines: [LineData; PAGE_LINES],
}

impl Page {
    fn zeroed() -> Box<Page> {
        Box::new(Page {
            touched: 0,
            lines: [LineData::zeroed(); PAGE_LINES],
        })
    }
}

/// The simulated DRAM: a sparse *paged* store.
///
/// A page table (open-addressed, hand-rolled mixer — see
/// [`LineMap`](crate::LineMap) for the rationale) maps page numbers to
/// boxed 4 KiB pages, allocated zero-filled on first write. A line read
/// is one page-table probe plus an array index; lines never written read
/// as zero, matching the initial state assumed by litmus tests
/// (`init: data = flag = 0`). This replaces the earlier
/// `HashMap<LineAddr, LineData>`, which paid a SipHash per line access
/// on the `MemRead`/`MemWrite` hot path.
///
/// # Examples
///
/// ```
/// use tsocc_mem::{Addr, LineData, MainMemory};
///
/// let mut mem = MainMemory::new();
/// let line = Addr::new(0x400).line();
/// assert_eq!(mem.read_line(line), LineData::zeroed());
///
/// let mut data = LineData::zeroed();
/// data.write_word(0, 99);
/// mem.write_line(line, data);
/// assert_eq!(mem.read_line(line).read_word(0), 99);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MainMemory {
    pages: FxMap<Box<Page>>,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        MainMemory {
            pages: FxMap::new(),
        }
    }

    #[inline]
    fn split(line: LineAddr) -> (u64, usize) {
        (
            line.as_u64() >> PAGE_SHIFT,
            (line.as_u64() & PAGE_MASK) as usize,
        )
    }

    /// Reads a full line; unwritten lines are zero.
    #[inline]
    pub fn read_line(&self, line: LineAddr) -> LineData {
        let (page, index) = Self::split(line);
        match self.pages.get(page) {
            Some(p) => p.lines[index],
            None => LineData::zeroed(),
        }
    }

    /// Writes a full line back to memory, allocating the page on first
    /// touch.
    #[inline]
    pub fn write_line(&mut self, line: LineAddr, data: LineData) {
        let (page, index) = Self::split(line);
        let p = match self.pages.get_mut(page) {
            Some(p) => p,
            None => {
                self.pages.insert(page, Page::zeroed());
                self.pages.get_mut(page).expect("just inserted")
            }
        };
        p.touched |= 1 << index;
        p.lines[index] = data;
    }

    /// Reads one aligned 64-bit word (test/diagnostic convenience).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn read_word(&self, addr: Addr) -> u64 {
        assert!(addr.is_word_aligned(), "unaligned word read at {addr}");
        self.read_line(addr.line()).read_word(addr.word_index())
    }

    /// Writes one aligned 64-bit word (used for program initialization).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        assert!(addr.is_word_aligned(), "unaligned word write at {addr}");
        let line = addr.line();
        let mut data = self.read_line(line);
        data.write_word(addr.word_index(), value);
        self.write_line(line, data);
    }

    /// Number of distinct lines ever written.
    pub fn touched_lines(&self) -> usize {
        self.pages
            .iter()
            .map(|(_, p)| p.touched.count_ones() as usize)
            .sum()
    }

    /// Iterates over every line ever written, **sorted by line
    /// address**. This ordering is a guarantee (relied on by
    /// `System::memory_image` and the cross-stepper/protocol parity
    /// tests), not an accident of storage layout: pages are visited in
    /// ascending page-number order and lines in ascending order within
    /// each page.
    pub fn lines(&self) -> impl Iterator<Item = (LineAddr, &LineData)> {
        let mut pages: Vec<(u64, &Page)> = self.pages.iter().map(|(n, p)| (n, &**p)).collect();
        pages.sort_unstable_by_key(|&(n, _)| n);
        pages.into_iter().flat_map(|(number, page)| {
            (0..PAGE_LINES).filter_map(move |i| {
                if page.touched & (1 << i) != 0 {
                    let line = LineAddr::new((number << PAGE_SHIFT) | i as u64);
                    Some((line, &page.lines[i]))
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = MainMemory::new();
        assert_eq!(mem.read_word(Addr::new(0x12340)), 0);
        assert_eq!(mem.read_line(LineAddr::new(77)), LineData::zeroed());
    }

    #[test]
    fn word_write_preserves_neighbours() {
        let mut mem = MainMemory::new();
        mem.write_word(Addr::new(0x100), 1);
        mem.write_word(Addr::new(0x108), 2);
        assert_eq!(mem.read_word(Addr::new(0x100)), 1);
        assert_eq!(mem.read_word(Addr::new(0x108)), 2);
        assert_eq!(mem.read_word(Addr::new(0x110)), 0);
    }

    #[test]
    fn line_write_replaces_whole_line() {
        let mut mem = MainMemory::new();
        mem.write_word(Addr::new(0x40), 5);
        mem.write_line(Addr::new(0x40).line(), LineData::zeroed());
        assert_eq!(mem.read_word(Addr::new(0x40)), 0);
    }

    #[test]
    #[should_panic]
    fn unaligned_read_panics() {
        let mem = MainMemory::new();
        let _ = mem.read_word(Addr::new(0x41));
    }

    #[test]
    fn touched_lines_counts_unique() {
        let mut mem = MainMemory::new();
        mem.write_word(Addr::new(0x00), 1);
        mem.write_word(Addr::new(0x08), 2); // same line
        mem.write_word(Addr::new(0x40), 3); // new line
        assert_eq!(mem.touched_lines(), 2);
    }

    #[test]
    fn zero_valued_writes_still_count_as_touched() {
        // The memory image must distinguish "written with zero" from
        // "never written", exactly like the old map-backed store.
        let mut mem = MainMemory::new();
        mem.write_line(LineAddr::new(5), LineData::zeroed());
        assert_eq!(mem.touched_lines(), 1);
        assert_eq!(
            mem.lines().map(|(l, _)| l).collect::<Vec<_>>(),
            vec![LineAddr::new(5)]
        );
    }

    #[test]
    fn lines_iterates_sorted_by_address() {
        // Scrambled writes across many pages, including within-page
        // neighbours and far-apart pages.
        let mut mem = MainMemory::new();
        let addrs = [
            900_000u64, 3, 64, 65, 1_000_000, 0, 70, 4096, 127, 90_001, 2,
        ];
        for &l in &addrs {
            let mut d = LineData::zeroed();
            d.write_word(0, l);
            mem.write_line(LineAddr::new(l), d);
        }
        let got: Vec<u64> = mem.lines().map(|(l, _)| l.as_u64()).collect();
        let mut want: Vec<u64> = addrs.to_vec();
        want.sort_unstable();
        assert_eq!(got, want, "lines() must iterate sorted by line address");
        for (l, d) in mem.lines() {
            assert_eq!(d.read_word(0), l.as_u64(), "data follows its line");
        }
    }
}
