//! Flat main-memory backing store.

use std::collections::HashMap;

use crate::addr::{Addr, LineAddr};
use crate::line::LineData;

/// The simulated DRAM: a sparse map from line address to line data.
///
/// Lines never written read as zero, matching the initial state assumed
/// by litmus tests (`init: data = flag = 0`).
///
/// # Examples
///
/// ```
/// use tsocc_mem::{Addr, LineData, MainMemory};
///
/// let mut mem = MainMemory::new();
/// let line = Addr::new(0x400).line();
/// assert_eq!(mem.read_line(line), LineData::zeroed());
///
/// let mut data = LineData::zeroed();
/// data.write_word(0, 99);
/// mem.write_line(line, data);
/// assert_eq!(mem.read_line(line).read_word(0), 99);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MainMemory {
    lines: HashMap<LineAddr, LineData>,
}

impl MainMemory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        MainMemory {
            lines: HashMap::new(),
        }
    }

    /// Reads a full line; unwritten lines are zero.
    pub fn read_line(&self, line: LineAddr) -> LineData {
        self.lines.get(&line).copied().unwrap_or_default()
    }

    /// Writes a full line back to memory.
    pub fn write_line(&mut self, line: LineAddr, data: LineData) {
        self.lines.insert(line, data);
    }

    /// Reads one aligned 64-bit word (test/diagnostic convenience).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn read_word(&self, addr: Addr) -> u64 {
        assert!(addr.is_word_aligned(), "unaligned word read at {addr}");
        self.read_line(addr.line()).read_word(addr.word_index())
    }

    /// Writes one aligned 64-bit word (used for program initialization).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 8-byte aligned.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        assert!(addr.is_word_aligned(), "unaligned word write at {addr}");
        let line = addr.line();
        let mut data = self.read_line(line);
        data.write_word(addr.word_index(), value);
        self.write_line(line, data);
    }

    /// Number of distinct lines ever written.
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }

    /// Iterates over every line ever written, in arbitrary order
    /// (callers wanting a canonical image sort by [`LineAddr`]).
    pub fn lines(&self) -> impl Iterator<Item = (&LineAddr, &LineData)> {
        self.lines.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = MainMemory::new();
        assert_eq!(mem.read_word(Addr::new(0x12340)), 0);
        assert_eq!(mem.read_line(LineAddr::new(77)), LineData::zeroed());
    }

    #[test]
    fn word_write_preserves_neighbours() {
        let mut mem = MainMemory::new();
        mem.write_word(Addr::new(0x100), 1);
        mem.write_word(Addr::new(0x108), 2);
        assert_eq!(mem.read_word(Addr::new(0x100)), 1);
        assert_eq!(mem.read_word(Addr::new(0x108)), 2);
        assert_eq!(mem.read_word(Addr::new(0x110)), 0);
    }

    #[test]
    fn line_write_replaces_whole_line() {
        let mut mem = MainMemory::new();
        mem.write_word(Addr::new(0x40), 5);
        mem.write_line(Addr::new(0x40).line(), LineData::zeroed());
        assert_eq!(mem.read_word(Addr::new(0x40)), 0);
    }

    #[test]
    #[should_panic]
    fn unaligned_read_panics() {
        let mem = MainMemory::new();
        let _ = mem.read_word(Addr::new(0x41));
    }

    #[test]
    fn touched_lines_counts_unique() {
        let mut mem = MainMemory::new();
        mem.write_word(Addr::new(0x00), 1);
        mem.write_word(Addr::new(0x08), 2); // same line
        mem.write_word(Addr::new(0x40), 3); // new line
        assert_eq!(mem.touched_lines(), 2);
    }
}
