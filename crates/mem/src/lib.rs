#![warn(missing_docs)]

//! Cache and memory substrate for the TSO-CC reproduction.
//!
//! Provides strongly-typed addresses ([`Addr`], [`LineAddr`]), functional
//! 64-byte cache-line data ([`LineData`]), a generic set-associative cache
//! array with LRU replacement ([`CacheArray`]), a paged main-memory
//! backing store ([`MainMemory`]) and a flat open-addressed map for
//! per-line controller state ([`LineMap`]).
//!
//! Cache lines carry *real data words*: the simulator executes programs
//! functionally through the memory hierarchy, which is what makes stale
//! reads (deliberately permitted by TSO-CC) observable by litmus tests —
//! the same change the paper's authors had to make to gem5 (§4.1).
//!
//! # Examples
//!
//! ```
//! use tsocc_mem::{Addr, CacheArray, CacheParams, LineData};
//!
//! let mut cache: CacheArray<LineData> = CacheArray::new(CacheParams::new(4, 2));
//! let line = Addr::new(0x1000).line();
//! cache.insert(line, LineData::zeroed(), 0, |_, _| true);
//! assert!(cache.lookup(line).is_some());
//! ```

pub mod addr;
pub mod cache;
pub mod line;
pub mod linemap;
pub mod memory;

pub use addr::{Addr, LineAddr, LINE_BYTES, WORDS_PER_LINE};
pub use cache::{CacheArray, CacheParams, InsertOutcome};
pub use line::LineData;
pub use linemap::LineMap;
pub use memory::MainMemory;

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");
