//! Byte and cache-line addresses.

use std::fmt;

/// Bytes per cache line (64B, matching the paper's Table 2).
pub const LINE_BYTES: u64 = 64;

/// 64-bit words per cache line.
pub const WORDS_PER_LINE: usize = (LINE_BYTES / 8) as usize;

/// A byte address in the simulated physical address space.
///
/// The simulated machines operate on naturally-aligned 64-bit words, so
/// the low three bits of an `Addr` used for a memory operation must be
/// zero; this is validated at the point of use.
///
/// # Examples
///
/// ```
/// use tsocc_mem::Addr;
///
/// let a = Addr::new(0x1048);
/// assert_eq!(a.line().base().as_u64(), 0x1040);
/// assert_eq!(a.word_index(), 1);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Raw byte address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Index of the 64-bit word within its line.
    #[inline]
    pub const fn word_index(self) -> usize {
        ((self.0 % LINE_BYTES) / 8) as usize
    }

    /// Whether this address is 8-byte aligned (required for word ops).
    #[inline]
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(8)
    }

    /// Byte offset from this address.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line-granularity address (byte address divided by 64).
///
/// # Examples
///
/// ```
/// use tsocc_mem::{Addr, LineAddr};
///
/// let l = Addr::new(0x80).line();
/// assert_eq!(l, LineAddr::new(2));
/// assert_eq!(l.base(), Addr::new(0x80));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Raw line number.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte address of the first byte of the line.
    #[inline]
    pub const fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// Home slice for `n` interleaved banks/tiles (line-interleaved NUCA).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn home(self, n: usize) -> usize {
        assert!(n > 0, "no tiles to map to");
        (self.0 % n as u64) as usize
    }

    /// Home slice for `n` tiles with `banks` L2 banks per tile:
    /// `banks` consecutive lines share a home (`(line / banks) % n`),
    /// so each tile serves a `banks`-line-wide stripe of the address
    /// space. `banks == 1` is exactly [`LineAddr::home`] — large
    /// machines widen the stripe instead of thinning each tile's slice
    /// of any fixed working set.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `banks == 0`.
    #[inline]
    pub fn home_banked(self, n: usize, banks: usize) -> usize {
        assert!(n > 0, "no tiles to map to");
        assert!(banks > 0, "no banks to map to");
        ((self.0 / banks as u64) % n as u64) as usize
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping() {
        assert_eq!(Addr::new(0).line(), LineAddr::new(0));
        assert_eq!(Addr::new(63).line(), LineAddr::new(0));
        assert_eq!(Addr::new(64).line(), LineAddr::new(1));
        assert_eq!(Addr::new(0x1040).line().base(), Addr::new(0x1040));
    }

    #[test]
    fn word_index_within_line() {
        assert_eq!(Addr::new(0x40).word_index(), 0);
        assert_eq!(Addr::new(0x48).word_index(), 1);
        assert_eq!(Addr::new(0x78).word_index(), 7);
    }

    #[test]
    fn alignment_check() {
        assert!(Addr::new(0x10).is_word_aligned());
        assert!(!Addr::new(0x11).is_word_aligned());
    }

    #[test]
    fn home_interleaves() {
        assert_eq!(LineAddr::new(0).home(4), 0);
        assert_eq!(LineAddr::new(5).home(4), 1);
        assert_eq!(LineAddr::new(7).home(4), 3);
    }

    #[test]
    #[should_panic]
    fn home_zero_tiles_panics() {
        let _ = LineAddr::new(1).home(0);
    }

    #[test]
    fn banked_home_stripes_pairs_and_reduces_to_home() {
        // Two banks per tile: consecutive line pairs share a home.
        assert_eq!(LineAddr::new(0).home_banked(4, 2), 0);
        assert_eq!(LineAddr::new(1).home_banked(4, 2), 0);
        assert_eq!(LineAddr::new(2).home_banked(4, 2), 1);
        assert_eq!(LineAddr::new(9).home_banked(4, 2), 0);
        // One bank is exactly the flat interleaving.
        for raw in 0..64 {
            let line = LineAddr::new(raw);
            assert_eq!(line.home_banked(5, 1), line.home(5));
        }
    }

    #[test]
    #[should_panic]
    fn banked_home_zero_banks_panics() {
        let _ = LineAddr::new(1).home_banked(4, 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(0x2).to_string(), "L0x2");
    }
}
