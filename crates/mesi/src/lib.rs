//! Baseline MESI directory protocol (the paper's comparison point).
//!
//! This models the gem5 `MESI_Two_Level`-style protocol the paper uses
//! as its baseline (§4.2):
//!
//! - the directory is embedded in the NUCA L2 and keeps a **full sharing
//!   vector** per line — the storage cost TSO-CC is built to avoid,
//! - L2 is **inclusive**: an L2 eviction invalidates/recalls L1 copies,
//! - reads to uncached lines get Exclusive grants (E state); E→M
//!   upgrades are silent,
//! - writes to shared lines send invalidations to every sharer, with
//!   acks collected by the requester,
//! - reads to privately-held lines forward to the owner, which
//!   downgrades and supplies data,
//! - the directory is *blocking*: requests that hit a line with an
//!   in-flight transaction queue at the home tile and replay in order
//!   (the same stall-and-wait discipline Ruby protocols use).
//!
//! Eviction/forward races are resolved through the L1's writeback
//! buffer ([`tsocc_coherence::WritebackBuffer`]): an evicted line's data
//! remains available to serve forwards until the home tile acknowledges
//! the PUT.

mod factory;
mod l1;
mod l2;

pub use factory::MesiFactory;
pub use l1::{MesiL1, MesiL1Config, MesiL1Policy};
pub use l2::{check_sharer_capacity, FullVector, MesiL2, MesiL2Config, MesiL2Policy, SharerSet};

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests;
