//! The MESI [`ProtocolFactory`]: how the baseline registers itself with
//! the protocol-agnostic system assembly.

use tsocc_coherence::{FaultState, L1Controller, L2Controller, MachineShape, ProtocolFactory};

use crate::l2::{check_sharer_capacity, FullVector};
use crate::{MesiL1Config, MesiL2Config};

/// Builds MESI L1/L2 controllers for any machine shape.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MesiFactory;

impl ProtocolFactory for MesiFactory {
    fn protocol_name(&self) -> String {
        "MESI".to_string()
    }

    fn l1(&self, core: usize, shape: &MachineShape) -> Box<dyn L1Controller> {
        let mut ctl = MesiL1Config {
            id: core,
            n_cores: shape.n_cores,
            n_tiles: shape.n_tiles,
            l2_banks: shape.l2_banks,
            params: shape.l1_params,
            issue_latency: shape.l1_issue_latency,
        }
        .build();
        ctl.chassis.faults = FaultState::for_l1(&shape.faults, core);
        Box::new(ctl)
    }

    fn l2(&self, tile: usize, shape: &MachineShape) -> Box<dyn L2Controller> {
        let mut ctl = MesiL2Config {
            tile,
            n_cores: shape.n_cores,
            n_mem: shape.n_mem,
            params: shape.l2_params,
            latency: shape.l2_latency,
        }
        .build();
        ctl.chassis.faults = FaultState::for_l2(&shape.faults, tile);
        Box::new(ctl)
    }

    fn validate_shape(&self, shape: &MachineShape) -> Result<(), String> {
        shape.validate()?;
        check_sharer_capacity::<FullVector>(&(), shape.n_cores, "MESI full-vector directory")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_coherence::MeshTopology;
    use tsocc_mem::CacheParams;

    fn shape() -> MachineShape {
        MachineShape {
            n_cores: 4,
            n_tiles: 4,
            n_mem: 2,
            mesh: MeshTopology::for_tiles(4),
            l2_banks: 1,
            l1_params: CacheParams::new(8, 2),
            l2_params: CacheParams::new(16, 4),
            l1_issue_latency: 1,
            l2_latency: 4,
            faults: tsocc_coherence::FaultPlan::none(),
        }
    }

    #[test]
    fn builds_quiescent_controllers() {
        let f = MesiFactory;
        assert_eq!(f.protocol_name(), "MESI");
        let shape = shape();
        assert!(f.l1(0, &shape).is_quiescent());
        assert!(f.l2(3, &shape).is_quiescent());
    }
}
