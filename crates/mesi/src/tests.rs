//! Controller-level protocol tests: L1s, one L2 tile and a memory
//! controller wired with a zero-latency message pump (no NoC), so
//! individual transactions can be inspected deterministically.

use tsocc_coherence::{
    Agent, CacheController, Completion, CoreOp, L1Controller, L2Controller, MemCtrl, NetMsg, Submit,
};
use tsocc_isa::RmwOp;
use tsocc_mem::{Addr, CacheParams, MainMemory};
use tsocc_sim::Cycle;

use crate::{MesiL1, MesiL1Config, MesiL2, MesiL2Config};

struct Harness {
    l1s: Vec<MesiL1>,
    l2: MesiL2,
    mem: MemCtrl,
    now: Cycle,
}

impl Harness {
    fn new(n_cores: usize) -> Self {
        let l1s = (0..n_cores)
            .map(|i| {
                MesiL1Config {
                    id: i,
                    n_cores,
                    n_tiles: 1,
                    l2_banks: 1,
                    params: CacheParams::new(4, 2),
                    issue_latency: 1,
                }
                .build()
            })
            .collect();
        let l2 = MesiL2Config {
            tile: 0,
            n_cores,
            n_mem: 1,
            params: CacheParams::new(8, 4),
            latency: 2,
        }
        .build();
        Harness {
            l1s,
            l2,
            mem: MemCtrl::new(0, MainMemory::new(), 5),
            now: Cycle::ZERO,
        }
    }

    fn route(&mut self, nm: NetMsg) {
        let now = self.now;
        match nm.dst {
            Agent::L1(i) => self.l1s[i].handle_message(now, nm.src, nm.msg),
            Agent::L2(0) => self.l2.handle_message(now, nm.src, nm.msg),
            Agent::Mem(0) => self.mem.handle_message(now, nm.src, nm.msg),
            other => panic!("unexpected destination {other}"),
        }
    }

    /// Runs the message pump for `cycles` cycles.
    fn pump(&mut self, cycles: u64) {
        for _ in 0..cycles {
            let now = self.now;
            let mut msgs: Vec<NetMsg> = Vec::new();
            for l1 in &mut self.l1s {
                l1.tick(now);
                l1.drain_outbox(now, &mut msgs);
            }
            self.l2.tick(now);
            self.l2.drain_outbox(now, &mut msgs);
            self.mem.drain_outbox(now, &mut msgs);
            for nm in msgs {
                self.route(nm);
            }
            self.now += 1;
        }
    }

    /// Drains core `core`'s ready completions into a fresh vector.
    fn take_completions(&mut self, core: usize) -> Vec<Completion> {
        let mut out = Vec::new();
        self.l1s[core].drain_completions(&mut out);
        out
    }

    /// Submits an op and pumps until its completion arrives.
    fn run_op(&mut self, core: usize, op: CoreOp) -> u64 {
        match self.l1s[core].submit(self.now, op) {
            Submit::Hit(v) => v,
            Submit::Miss => {
                for _ in 0..500 {
                    self.pump(1);
                    let completions = self.take_completions(core);
                    if let Some(c) = completions.first() {
                        return match c {
                            Completion::Load(v) => *v,
                            Completion::Store => 0,
                        };
                    }
                }
                panic!("op {op:?} on core {core} never completed");
            }
            Submit::Retry => panic!("unexpected retry for {op:?}"),
        }
    }

    fn load(&mut self, core: usize, addr: u64) -> u64 {
        self.run_op(core, CoreOp::Load(Addr::new(addr)))
    }

    fn store(&mut self, core: usize, addr: u64, value: u64) {
        self.run_op(core, CoreOp::Store(Addr::new(addr), value));
    }
}

#[test]
fn cold_load_reads_memory_and_grants_exclusive() {
    let mut h = Harness::new(2);
    h.mem.memory_mut().write_word(Addr::new(0x40), 77);
    assert_eq!(h.load(0, 0x40), 77);
    // The E grant makes a subsequent store a silent hit.
    assert!(matches!(
        h.l1s[0].submit(h.now, CoreOp::Store(Addr::new(0x40), 1)),
        Submit::Hit(_)
    ));
    assert_eq!(L1Controller::stats(&h.l1s[0]).write_hit_private.get(), 1);
}

#[test]
fn second_reader_gets_data_from_owner() {
    let mut h = Harness::new(2);
    h.store(0, 0x40, 5);
    assert_eq!(h.load(1, 0x40), 5, "forwarded from the modified owner");
    // Both copies are now Shared: loads hit locally.
    assert!(matches!(
        h.l1s[0].submit(h.now, CoreOp::Load(Addr::new(0x40))),
        Submit::Hit(5)
    ));
    assert!(matches!(
        h.l1s[1].submit(h.now, CoreOp::Load(Addr::new(0x40))),
        Submit::Hit(5)
    ));
}

#[test]
fn upgrade_invalidates_sharers() {
    let mut h = Harness::new(3);
    h.store(0, 0x40, 1);
    h.load(1, 0x40);
    h.load(2, 0x40);
    // Core 1 upgrades: cores 0 and 2 must lose their Shared copies.
    h.store(1, 0x40, 9);
    assert!(
        matches!(
            h.l1s[0].submit(h.now, CoreOp::Load(Addr::new(0x40))),
            Submit::Miss
        ),
        "core 0's Shared copy must be invalidated"
    );
    // Drain core 0's new transaction and check it sees the new value.
    for _ in 0..500 {
        h.pump(1);
        if let Some(Completion::Load(v)) = h.take_completions(0).first() {
            assert_eq!(*v, 9);
            return;
        }
    }
    panic!("reload never completed");
}

#[test]
fn rmw_is_atomic_and_returns_old_value() {
    let mut h = Harness::new(2);
    h.store(0, 0x80, 10);
    let old = h.run_op(
        1,
        CoreOp::Rmw(Addr::new(0x80), RmwOp::FetchAdd { operand: 5 }),
    );
    assert_eq!(old, 10);
    assert_eq!(h.load(0, 0x80), 15);
}

#[test]
fn failed_cas_leaves_value() {
    let mut h = Harness::new(2);
    h.store(0, 0x80, 3);
    let old = h.run_op(
        1,
        CoreOp::Rmw(
            Addr::new(0x80),
            RmwOp::Cas {
                expected: 99,
                new: 1,
            },
        ),
    );
    assert_eq!(old, 3);
    assert_eq!(h.load(0, 0x80), 3, "failed CAS must not write");
}

#[test]
fn capacity_eviction_writes_back_dirty_data() {
    let mut h = Harness::new(1);
    // L1 is 4 sets x 2 ways; lines 0x40 + k*0x100 all map to set 1.
    for k in 0..4u64 {
        h.store(0, 0x40 + k * 0x100, k + 1);
    }
    // The earliest line was evicted (PutM) and must read back intact.
    assert_eq!(h.load(0, 0x40), 1);
    assert!(L1Controller::stats(&h.l1s[0]).read_miss_invalid.get() > 0);
}

#[test]
fn l2_eviction_recalls_private_line() {
    let mut h = Harness::new(1);
    // L2 is 8 sets x 4 ways: fill one set (stride 8 lines = 0x200 bytes)
    // past capacity so the L2 recalls a privately-held line.
    for k in 0..6u64 {
        h.store(0, 0x40 + k * 0x200, 100 + k);
    }
    h.pump(200);
    for k in 0..6u64 {
        assert_eq!(h.load(0, 0x40 + k * 0x200), 100 + k);
    }
    assert!(L2Controller::stats(&h.l2).writebacks.get() > 0);
}

#[test]
fn fence_is_a_local_no_op_for_mesi() {
    let mut h = Harness::new(1);
    assert!(matches!(
        h.l1s[0].submit(h.now, CoreOp::Fence),
        Submit::Hit(0)
    ));
    assert_eq!(L1Controller::stats(&h.l1s[0]).selfinv_total(), 0);
}

#[test]
fn quiescence_after_transactions_drain() {
    let mut h = Harness::new(2);
    h.store(0, 0x40, 1);
    h.load(1, 0x40);
    h.pump(300);
    assert!(h.l1s.iter().all(|l| l.is_quiescent()));
    assert!(CacheController::is_quiescent(&h.l2));
    assert!(h.mem.is_quiescent());
}

#[test]
fn l2_hit_and_miss_accounting() {
    let mut h = Harness::new(2);
    h.load(0, 0x40); // miss: memory fetch
    h.load(1, 0x40); // hit: forwarded/served from L2 state
    let stats = L2Controller::stats(&h.l2);
    assert_eq!(stats.misses.get(), 1);
    assert!(stats.hits.get() >= 1);
}
