//! MESI NUCA L2 tile with an embedded full-sharing-vector directory.

use std::collections::VecDeque;

use tsocc_coherence::{
    Agent, CacheController, Epoch, Grant, L2Controller, L2Stats, Msg, NetMsg, Outbox, Ts,
};
use tsocc_mem::{CacheArray, CacheParams, InsertOutcome, LineAddr, LineData, LineMap};
use tsocc_sim::Cycle;

/// Directory state of a resident line (absence = not present).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Valid in the L2, no L1 copies.
    Idle,
    /// One or more L1 sharers (read-only copies).
    Shared,
    /// Exactly one L1 owner with read/write permission.
    Private,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    state: State,
    /// Full sharing vector (bit per core) — the storage cost the paper
    /// attacks. Only meaningful in `Shared`.
    sharers: u128,
    /// Owner core id; only meaningful in `Private`.
    owner: usize,
    data: LineData,
    /// Whether the L2 copy differs from memory.
    dirty: bool,
}

#[derive(Debug)]
enum BusyKind {
    /// Waiting for memory data, then granting Exclusive to `requester`.
    Fetch { requester: usize },
    /// Waiting for the requester's Unblock after an Exclusive/upgrade
    /// grant.
    Grant,
    /// Waiting for the old owner's DowngradeData and the requester's
    /// Unblock after forwarding a GetS.
    FwdS { requester: usize },
    /// Waiting for the requester's Unblock after forwarding a GetX.
    FwdX,
    /// L2 eviction in progress: collecting invalidation acks from
    /// sharers, or the owner's RecallData.
    Dying {
        acks_left: u32,
        data: LineData,
        dirty: bool,
    },
}

#[derive(Debug)]
struct Busy {
    kind: BusyKind,
    need_unblock: bool,
    need_owner_data: bool,
    waiting: VecDeque<(Agent, Msg)>,
}

/// Configuration of a MESI L2 tile.
#[derive(Clone, Copy, Debug)]
pub struct MesiL2Config {
    /// This tile's index.
    pub tile: usize,
    /// Number of cores.
    pub n_cores: usize,
    /// Number of memory controllers.
    pub n_mem: usize,
    /// Tile geometry (1 MiB 16-way in Table 2).
    pub params: CacheParams,
    /// Array access latency charged before responses (cycles).
    pub latency: u64,
}

impl MesiL2Config {
    /// The paper's Table 2 tile: 1 MiB, 16-way, ~30-cycle access.
    pub fn table2(tile: usize, n_cores: usize, n_mem: usize) -> Self {
        MesiL2Config {
            tile,
            n_cores,
            n_mem,
            params: CacheParams::from_capacity(1024 * 1024, 16),
            latency: 20,
        }
    }
}

/// One MESI L2 tile (directory + data).
#[derive(Debug)]
pub struct MesiL2 {
    cfg: MesiL2Config,
    cache: CacheArray<Line>,
    busy: LineMap<Busy>,
    replay: VecDeque<(Agent, Msg)>,
    outbox: Outbox,
    stats: L2Stats,
}

impl MesiL2 {
    /// Creates the tile controller.
    pub fn new(cfg: MesiL2Config) -> Self {
        MesiL2 {
            cfg,
            cache: CacheArray::new(cfg.params),
            busy: LineMap::new(),
            replay: VecDeque::new(),
            outbox: Outbox::new(),
            stats: L2Stats::default(),
        }
    }

    fn agent(&self) -> Agent {
        Agent::L2(self.cfg.tile)
    }

    fn mem(&self) -> Agent {
        Agent::Mem(self.cfg.tile % self.cfg.n_mem)
    }

    fn send(&mut self, now: Cycle, dst: Agent, msg: Msg) {
        self.outbox.push(
            now + self.cfg.latency,
            NetMsg {
                src: self.agent(),
                dst,
                msg,
            },
        );
    }

    fn data_msg(
        line: LineAddr,
        data: LineData,
        grant: Grant,
        acks_expected: u32,
        with_payload: bool,
        ack_required: bool,
    ) -> Msg {
        Msg::Data {
            line,
            data,
            grant,
            writer: usize::MAX,
            ts: Ts::INVALID,
            epoch: Epoch::ZERO,
            ts_source: None,
            acks_expected,
            with_payload,
            ack_required,
        }
    }

    /// Finishes a busy transaction if all terminal events arrived.
    fn maybe_finish(&mut self, line: LineAddr) {
        let done = self
            .busy
            .get(line)
            .is_some_and(|b| !b.need_unblock && !b.need_owner_data);
        if done {
            let busy = self.busy.remove(line).expect("checked");
            self.replay.extend(busy.waiting);
        }
    }

    /// Starts eviction of `victim` (already removed from the array).
    fn start_eviction(&mut self, now: Cycle, victim: LineAddr, old: Line) {
        self.stats.writebacks.inc();
        match old.state {
            State::Idle => {
                if old.dirty {
                    self.send(
                        now,
                        self.mem(),
                        Msg::MemWrite {
                            line: victim,
                            data: old.data,
                        },
                    );
                }
            }
            State::Shared => {
                let mut acks = 0u32;
                for core in 0..self.cfg.n_cores {
                    if old.sharers & (1u128 << core) != 0 {
                        self.send(
                            now,
                            Agent::L1(core),
                            Msg::Inv {
                                line: victim,
                                ack_to_requester: None,
                            },
                        );
                        acks += 1;
                    }
                }
                if acks == 0 {
                    if old.dirty {
                        self.send(
                            now,
                            self.mem(),
                            Msg::MemWrite {
                                line: victim,
                                data: old.data,
                            },
                        );
                    }
                    return;
                }
                self.busy.insert(
                    victim,
                    Busy {
                        kind: BusyKind::Dying {
                            acks_left: acks,
                            data: old.data,
                            dirty: old.dirty,
                        },
                        need_unblock: false,
                        need_owner_data: true,
                        waiting: VecDeque::new(),
                    },
                );
            }
            State::Private => {
                self.send(now, Agent::L1(old.owner), Msg::Recall { line: victim });
                self.busy.insert(
                    victim,
                    Busy {
                        kind: BusyKind::Dying {
                            acks_left: 0,
                            data: old.data,
                            dirty: old.dirty,
                        },
                        need_unblock: false,
                        need_owner_data: true,
                        waiting: VecDeque::new(),
                    },
                );
            }
        }
    }

    /// Installs a fetched line, possibly starting a victim eviction.
    fn install(&mut self, now: Cycle, line: LineAddr, entry: Line) {
        let busy = &self.busy;
        let outcome = self
            .cache
            .insert(line, entry, now.as_u64(), |la, _| !busy.contains_key(la));
        match outcome {
            InsertOutcome::Installed => {}
            InsertOutcome::Evicted(victim, old) => self.start_eviction(now, victim, old),
            InsertOutcome::SetFull => {
                panic!("L2[{}]: no evictable way for {line}", self.cfg.tile)
            }
        }
    }

    fn process_request(&mut self, now: Cycle, src: Agent, msg: Msg) {
        let line = match &msg {
            Msg::GetS { line } | Msg::GetX { line } | Msg::PutE { line } => *line,
            Msg::PutM { line, .. } => *line,
            other => unreachable!("not a queueable request: {other:?}"),
        };
        if let Some(busy) = self.busy.get_mut(line) {
            busy.waiting.push_back((src, msg));
            return;
        }
        let requester = match src {
            Agent::L1(i) => i,
            other => panic!("request from non-L1 {other}"),
        };
        match msg {
            Msg::GetS { .. } => self.process_gets(now, line, requester),
            Msg::GetX { .. } => self.process_getx(now, line, requester),
            Msg::PutE { .. } => self.process_put(now, line, requester, None),
            Msg::PutM { data, .. } => self.process_put(now, line, requester, Some(data)),
            _ => unreachable!(),
        }
    }

    fn process_gets(&mut self, now: Cycle, line: LineAddr, requester: usize) {
        let Some(l) = self.cache.lookup_mut(line) else {
            self.stats.misses.inc();
            self.busy.insert(
                line,
                Busy {
                    kind: BusyKind::Fetch { requester },
                    need_unblock: true,
                    need_owner_data: false,
                    waiting: VecDeque::new(),
                },
            );
            self.send(now, self.mem(), Msg::MemRead { line });
            return;
        };
        self.stats.hits.inc();
        match l.state {
            State::Idle => {
                // Reads to uncached lines get Exclusive grants (E).
                l.state = State::Private;
                l.owner = requester;
                let data = l.data;
                self.busy.insert(
                    line,
                    Busy {
                        kind: BusyKind::Grant,
                        need_unblock: true,
                        need_owner_data: false,
                        waiting: VecDeque::new(),
                    },
                );
                self.send(
                    now,
                    Agent::L1(requester),
                    Self::data_msg(line, data, Grant::Exclusive, 0, true, true),
                );
            }
            State::Shared => {
                l.sharers |= 1u128 << requester;
                let data = l.data;
                self.send(
                    now,
                    Agent::L1(requester),
                    Self::data_msg(line, data, Grant::Shared, 0, true, false),
                );
            }
            State::Private => {
                let owner = l.owner;
                debug_assert_ne!(owner, requester, "owner re-requesting GetS");
                self.busy.insert(
                    line,
                    Busy {
                        kind: BusyKind::FwdS { requester },
                        need_unblock: true,
                        need_owner_data: true,
                        waiting: VecDeque::new(),
                    },
                );
                self.send(now, Agent::L1(owner), Msg::FwdGetS { line, requester });
            }
        }
    }

    fn process_getx(&mut self, now: Cycle, line: LineAddr, requester: usize) {
        let Some(l) = self.cache.lookup_mut(line) else {
            self.stats.misses.inc();
            self.busy.insert(
                line,
                Busy {
                    kind: BusyKind::Fetch { requester },
                    need_unblock: true,
                    need_owner_data: false,
                    waiting: VecDeque::new(),
                },
            );
            self.send(now, self.mem(), Msg::MemRead { line });
            return;
        };
        self.stats.hits.inc();
        match l.state {
            State::Idle => {
                l.state = State::Private;
                l.owner = requester;
                let data = l.data;
                self.busy.insert(
                    line,
                    Busy {
                        kind: BusyKind::Grant,
                        need_unblock: true,
                        need_owner_data: false,
                        waiting: VecDeque::new(),
                    },
                );
                self.send(
                    now,
                    Agent::L1(requester),
                    Self::data_msg(line, data, Grant::Exclusive, 0, true, true),
                );
            }
            State::Shared => {
                let sharers = l.sharers;
                let requester_holds = sharers & (1u128 << requester) != 0;
                l.state = State::Private;
                l.owner = requester;
                l.sharers = 0;
                let data = l.data;
                let mut acks = 0u32;
                for core in 0..self.cfg.n_cores {
                    if core != requester && sharers & (1u128 << core) != 0 {
                        self.send(
                            now,
                            Agent::L1(core),
                            Msg::Inv {
                                line,
                                ack_to_requester: Some(requester),
                            },
                        );
                        acks += 1;
                    }
                }
                self.busy.insert(
                    line,
                    Busy {
                        kind: BusyKind::Grant,
                        need_unblock: true,
                        need_owner_data: false,
                        waiting: VecDeque::new(),
                    },
                );
                // Upgrades reuse the requester's valid Shared copy.
                self.send(
                    now,
                    Agent::L1(requester),
                    Self::data_msg(line, data, Grant::Exclusive, acks, !requester_holds, true),
                );
            }
            State::Private => {
                let owner = l.owner;
                debug_assert_ne!(owner, requester, "owner re-requesting GetX");
                l.owner = requester;
                self.busy.insert(
                    line,
                    Busy {
                        kind: BusyKind::FwdX,
                        need_unblock: true,
                        need_owner_data: false,
                        waiting: VecDeque::new(),
                    },
                );
                self.send(now, Agent::L1(owner), Msg::FwdGetX { line, requester });
            }
        }
    }

    fn process_put(&mut self, now: Cycle, line: LineAddr, from: usize, data: Option<LineData>) {
        if let Some(l) = self.cache.peek_mut(line) {
            if l.state == State::Private && l.owner == from {
                l.state = State::Idle;
                if let Some(d) = data {
                    l.data = d;
                    l.dirty = true;
                }
            }
            // Otherwise the PUT is stale (a racing forward already moved
            // ownership); just acknowledge.
        }
        self.send(now, Agent::L1(from), Msg::PutAck { line });
    }
}

impl CacheController for MesiL2 {
    fn handle_message(&mut self, now: Cycle, src: Agent, msg: Msg) {
        match msg {
            Msg::GetS { .. } | Msg::GetX { .. } | Msg::PutE { .. } | Msg::PutM { .. } => {
                self.process_request(now, src, msg);
            }
            Msg::Unblock { line, .. } => {
                let busy = self
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{}]: Unblock for idle {line}", self.cfg.tile));
                busy.need_unblock = false;
                self.maybe_finish(line);
            }
            Msg::DowngradeData {
                line, data, dirty, ..
            } => {
                let busy = self
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{}]: stray DowngradeData {line}", self.cfg.tile));
                let BusyKind::FwdS { requester } = busy.kind else {
                    panic!("L2[{}]: DowngradeData outside FwdS", self.cfg.tile);
                };
                busy.need_owner_data = false;
                let l = self
                    .cache
                    .peek_mut(line)
                    .expect("forwarded line must be resident");
                let old_owner = l.owner;
                l.state = State::Shared;
                l.sharers = (1u128 << old_owner) | (1u128 << requester);
                if dirty {
                    l.data = data;
                    l.dirty = true;
                }
                self.maybe_finish(line);
            }
            Msg::RecallData {
                line, data, dirty, ..
            } => {
                let busy = self
                    .busy
                    .remove(line)
                    .unwrap_or_else(|| panic!("L2[{}]: stray RecallData {line}", self.cfg.tile));
                let BusyKind::Dying {
                    data: old_data,
                    dirty: old_dirty,
                    ..
                } = busy.kind
                else {
                    panic!("L2[{}]: RecallData outside Dying", self.cfg.tile);
                };
                let (wb_data, wb_dirty) = if dirty {
                    (data, true)
                } else {
                    (old_data, old_dirty)
                };
                if wb_dirty {
                    self.send(
                        now,
                        self.mem(),
                        Msg::MemWrite {
                            line,
                            data: wb_data,
                        },
                    );
                }
                self.replay.extend(busy.waiting);
            }
            Msg::InvAckToL2 { line, .. } => {
                let busy = self
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{}]: stray InvAckToL2 {line}", self.cfg.tile));
                let BusyKind::Dying {
                    ref mut acks_left,
                    data,
                    dirty,
                    ..
                } = busy.kind
                else {
                    panic!("L2[{}]: InvAckToL2 outside Dying", self.cfg.tile);
                };
                *acks_left -= 1;
                if *acks_left == 0 {
                    let busy = self.busy.remove(line).expect("present");
                    if dirty {
                        self.send(now, self.mem(), Msg::MemWrite { line, data });
                    }
                    self.replay.extend(busy.waiting);
                }
            }
            Msg::MemData { line, data } => {
                let busy = self
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{}]: stray MemData {line}", self.cfg.tile));
                let BusyKind::Fetch { requester } = busy.kind else {
                    panic!("L2[{}]: MemData outside Fetch", self.cfg.tile);
                };
                busy.kind = BusyKind::Grant;
                self.install(
                    now,
                    line,
                    Line {
                        state: State::Private,
                        sharers: 0,
                        owner: requester,
                        data,
                        dirty: false,
                    },
                );
                self.send(
                    now,
                    Agent::L1(requester),
                    Self::data_msg(line, data, Grant::Exclusive, 0, true, true),
                );
            }
            other => panic!("L2[{}]: unexpected {other:?}", self.cfg.tile),
        }
    }

    fn tick(&mut self, now: Cycle) {
        let pending: Vec<_> = self.replay.drain(..).collect();
        for (src, msg) in pending {
            self.process_request(now, src, msg);
        }
    }

    fn drain_outbox(&mut self, now: Cycle, out: &mut Vec<NetMsg>) {
        self.outbox.drain_ready_into(now, out);
    }

    fn is_quiescent(&self) -> bool {
        self.busy.is_empty() && self.replay.is_empty() && self.outbox.is_empty()
    }

    fn next_event(&self) -> Cycle {
        // The replay queue is filled by message handling and drained by
        // the same cycle's tick, so between steps it is empty; if a
        // driver queries mid-cycle anyway, demand an immediate tick.
        if !self.replay.is_empty() {
            return Cycle::ZERO;
        }
        self.outbox.next_ready()
    }
}

impl L2Controller for MesiL2 {
    fn stats(&self) -> &L2Stats {
        &self.stats
    }
}
