//! MESI NUCA L2 tile with an embedded directory, as a policy over the
//! shared [`L2Chassis`].
//!
//! The policy is generic over the directory's sharer-set representation
//! ([`SharerSet`]): the baseline instantiates it with a [`FullVector`]
//! (one bit per core — the storage cost the paper attacks), while the
//! `tsocc-mesi-coarse` crate plugs in a limited-pointer / coarse-vector
//! set. Everything else about the protocol — the blocking directory,
//! forwards, recalls, invalidation acks — is identical between the two.

use tsocc_coherence::{Agent, Epoch, Grant, L2Chassis, L2Ctl, L2Policy, Msg, Ts, Txn};
use tsocc_mem::{CacheParams, LineAddr, LineData};
use tsocc_sim::Cycle;

/// A directory's sharer-set representation: the storage/precision axis
/// on which the paper's directory baselines differ.
///
/// `add`/`holds`/`may_hold` all take the representation's configuration
/// so compact encodings (pointer budgets, coarse granularities) need no
/// per-line storage beyond the set itself. Implementations must be
/// conservative: `may_hold` may over-approximate (spurious
/// invalidations are acked blindly by MESI L1s), but must never miss a
/// real sharer.
pub trait SharerSet: Copy + std::fmt::Debug + Send + Sync + 'static {
    /// Per-machine configuration (pointer budget, group granularity).
    type Cfg: Copy + std::fmt::Debug + Send + Sync + 'static;

    /// The empty set.
    fn empty(cfg: &Self::Cfg) -> Self;

    /// Records `core` as a sharer; returns `true` when precision was
    /// lost (the representation fell back to a coarse encoding).
    fn add(&mut self, cfg: &Self::Cfg, core: usize) -> bool;

    /// Exactly whether `core` holds a copy, or `None` when the current
    /// encoding cannot tell.
    fn holds(&self, cfg: &Self::Cfg, core: usize) -> Option<bool>;

    /// Whether `core` may hold a copy — the invalidation fan-out test.
    fn may_hold(&self, cfg: &Self::Cfg, core: usize) -> bool;

    /// The largest core count this representation can encode, or `None`
    /// when unbounded. Factories check the machine shape against this
    /// **before** construction, turning what would be a shift overflow
    /// on core ids `>= capacity` into a clean configuration error.
    fn capacity(cfg: &Self::Cfg) -> Option<usize>;
}

/// Checks a machine's core count against what the sharer-set
/// representation `S` can encode — the shared half of every MESI-family
/// [`tsocc_coherence::ProtocolFactory::validate_shape`] override.
///
/// # Errors
///
/// Names the representation and both numbers when `n_cores` exceeds the
/// capacity.
pub fn check_sharer_capacity<S: SharerSet>(
    cfg: &S::Cfg,
    n_cores: usize,
    representation: &str,
) -> Result<(), String> {
    match S::capacity(cfg) {
        Some(cap) if n_cores > cap => Err(format!(
            "{representation} encodes at most {cap} cores, machine has {n_cores}"
        )),
        _ => Ok(()),
    }
}

/// The paper's baseline representation: a full sharing vector, one bit
/// per core (up to 128 cores).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FullVector(u128);

impl SharerSet for FullVector {
    type Cfg = ();

    fn empty(_: &()) -> Self {
        FullVector(0)
    }

    fn add(&mut self, _: &(), core: usize) -> bool {
        self.0 |= 1u128 << core;
        false
    }

    fn holds(&self, _: &(), core: usize) -> Option<bool> {
        Some(self.0 & (1u128 << core) != 0)
    }

    fn may_hold(&self, _: &(), core: usize) -> bool {
        self.0 & (1u128 << core) != 0
    }

    fn capacity(_: &()) -> Option<usize> {
        Some(u128::BITS as usize)
    }
}

/// Directory state of a resident line (absence = not present).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Valid in the L2, no L1 copies.
    Idle,
    /// One or more L1 sharers (read-only copies).
    Shared,
    /// Exactly one L1 owner with read/write permission.
    Private,
}

/// One resident directory line (opaque outside the policy).
#[derive(Clone, Copy, Debug)]
pub struct Line<S> {
    state: State,
    /// The sharer set; only meaningful in `Shared`.
    sharers: S,
    /// Owner core id; only meaningful in `Private`.
    owner: usize,
    data: LineData,
    /// Whether the L2 copy differs from memory.
    dirty: bool,
}

/// Transaction states of the blocking MESI directory (opaque outside
/// the policy).
#[derive(Debug)]
pub enum BusyKind {
    /// Waiting for memory data, then granting Exclusive to `requester`.
    Fetch { requester: usize },
    /// Waiting for the requester's Unblock after an Exclusive/upgrade
    /// grant.
    Grant,
    /// Waiting for the old owner's DowngradeData and the requester's
    /// Unblock after forwarding a GetS.
    FwdS { requester: usize },
    /// Waiting for the requester's Unblock after forwarding a GetX.
    FwdX,
    /// L2 eviction in progress: collecting invalidation acks from
    /// sharers, or the owner's RecallData.
    Dying {
        acks_left: u32,
        data: LineData,
        dirty: bool,
    },
}

/// Configuration of a MESI L2 tile.
#[derive(Clone, Copy, Debug)]
pub struct MesiL2Config {
    /// This tile's index.
    pub tile: usize,
    /// Number of cores.
    pub n_cores: usize,
    /// Number of memory controllers.
    pub n_mem: usize,
    /// Tile geometry (1 MiB 16-way in Table 2).
    pub params: CacheParams,
    /// Array access latency charged before responses (cycles).
    pub latency: u64,
}

impl MesiL2Config {
    /// The paper's Table 2 tile: 1 MiB, 16-way, ~30-cycle access.
    pub fn table2(tile: usize, n_cores: usize, n_mem: usize) -> Self {
        MesiL2Config {
            tile,
            n_cores,
            n_mem,
            params: CacheParams::from_capacity(1024 * 1024, 16),
            latency: 20,
        }
    }

    /// Builds the baseline full-sharing-vector tile.
    pub fn build(self) -> MesiL2 {
        self.build_with::<FullVector>(())
    }

    /// Builds a tile with an alternative sharer-set representation
    /// (how `tsocc-mesi-coarse` assembles its directory).
    pub fn build_with<S: SharerSet>(self, dir_cfg: S::Cfg) -> L2Ctl<MesiL2Policy<S>> {
        L2Ctl::assemble(
            L2Chassis::new(
                self.tile,
                self.n_cores,
                self.n_mem,
                self.latency,
                self.params,
            ),
            MesiL2Policy { dir_cfg },
        )
    }
}

/// One MESI L2 tile (directory + data) with the baseline full sharing
/// vector.
pub type MesiL2 = L2Ctl<MesiL2Policy<FullVector>>;

/// The MESI directory transition rules, generic over the sharer-set
/// representation.
#[derive(Clone, Copy, Debug)]
pub struct MesiL2Policy<S: SharerSet> {
    /// Sharer-set configuration (pointer budgets etc.).
    dir_cfg: S::Cfg,
}

type Ch<S> = L2Chassis<Line<S>, BusyKind>;

impl<S: SharerSet> MesiL2Policy<S> {
    fn data_msg(
        line: LineAddr,
        data: LineData,
        grant: Grant,
        acks_expected: u32,
        with_payload: bool,
        ack_required: bool,
    ) -> Msg {
        Msg::Data {
            line,
            data,
            grant,
            writer: usize::MAX,
            ts: Ts::INVALID,
            epoch: Epoch::ZERO,
            ts_source: None,
            acks_expected,
            with_payload,
            ack_required,
        }
    }

    /// Starts eviction of `victim` (already removed from the array).
    fn start_eviction(&mut self, ch: &mut Ch<S>, now: Cycle, victim: LineAddr, old: Line<S>) {
        ch.stats.writebacks.inc();
        match old.state {
            State::Idle => {
                if old.dirty {
                    let mem = ch.mem();
                    ch.send(
                        now,
                        mem,
                        Msg::MemWrite {
                            line: victim,
                            data: old.data,
                        },
                    );
                }
            }
            State::Shared => {
                let mut acks = 0u32;
                for core in 0..ch.n_cores() {
                    if old.sharers.may_hold(&self.dir_cfg, core) {
                        ch.send(
                            now,
                            Agent::L1(core),
                            Msg::Inv {
                                line: victim,
                                ack_to_requester: None,
                            },
                        );
                        acks += 1;
                    }
                }
                if acks == 0 {
                    if old.dirty {
                        let mem = ch.mem();
                        ch.send(
                            now,
                            mem,
                            Msg::MemWrite {
                                line: victim,
                                data: old.data,
                            },
                        );
                    }
                    return;
                }
                ch.begin(
                    victim,
                    Txn::new(
                        BusyKind::Dying {
                            acks_left: acks,
                            data: old.data,
                            dirty: old.dirty,
                        },
                        false,
                        true,
                    ),
                );
            }
            State::Private => {
                ch.send(now, Agent::L1(old.owner), Msg::Recall { line: victim });
                ch.begin(
                    victim,
                    Txn::new(
                        BusyKind::Dying {
                            acks_left: 0,
                            data: old.data,
                            dirty: old.dirty,
                        },
                        false,
                        true,
                    ),
                );
            }
        }
    }

    /// Installs a fetched line, possibly starting a victim eviction.
    fn install(&mut self, ch: &mut Ch<S>, now: Cycle, line: LineAddr, entry: Line<S>) {
        if let Some((victim, old)) = ch.install(now, line, entry) {
            self.start_eviction(ch, now, victim, old);
        }
    }
}

impl<S: SharerSet> L2Policy for MesiL2Policy<S> {
    type Line = Line<S>;
    type Busy = BusyKind;

    fn gets(&mut self, ch: &mut Ch<S>, now: Cycle, line: LineAddr, requester: usize) {
        let Some(l) = ch.cache.lookup_mut(line) else {
            ch.stats.misses.inc();
            ch.begin(line, Txn::new(BusyKind::Fetch { requester }, true, false));
            let mem = ch.mem();
            ch.send(now, mem, Msg::MemRead { line });
            return;
        };
        ch.stats.hits.inc();
        match l.state {
            State::Idle => {
                // Reads to uncached lines get Exclusive grants (E).
                l.state = State::Private;
                l.owner = requester;
                let data = l.data;
                ch.begin(line, Txn::new(BusyKind::Grant, true, false));
                ch.send(
                    now,
                    Agent::L1(requester),
                    Self::data_msg(line, data, Grant::Exclusive, 0, true, true),
                );
            }
            State::Shared => {
                l.sharers.add(&self.dir_cfg, requester);
                let data = l.data;
                ch.send(
                    now,
                    Agent::L1(requester),
                    Self::data_msg(line, data, Grant::Shared, 0, true, false),
                );
            }
            State::Private => {
                let owner = l.owner;
                debug_assert_ne!(owner, requester, "owner re-requesting GetS");
                ch.begin(line, Txn::new(BusyKind::FwdS { requester }, true, true));
                ch.send(now, Agent::L1(owner), Msg::FwdGetS { line, requester });
            }
        }
    }

    fn getx(&mut self, ch: &mut Ch<S>, now: Cycle, line: LineAddr, requester: usize) {
        let Some(l) = ch.cache.lookup_mut(line) else {
            ch.stats.misses.inc();
            ch.begin(line, Txn::new(BusyKind::Fetch { requester }, true, false));
            let mem = ch.mem();
            ch.send(now, mem, Msg::MemRead { line });
            return;
        };
        ch.stats.hits.inc();
        match l.state {
            State::Idle => {
                l.state = State::Private;
                l.owner = requester;
                let data = l.data;
                ch.begin(line, Txn::new(BusyKind::Grant, true, false));
                ch.send(
                    now,
                    Agent::L1(requester),
                    Self::data_msg(line, data, Grant::Exclusive, 0, true, true),
                );
            }
            State::Shared => {
                let sharers = l.sharers;
                // With a coarse encoding the directory cannot tell
                // whether the requester still holds a copy; sending the
                // payload is always correct (the L2's copy is current in
                // the Shared state).
                let requester_holds = sharers.holds(&self.dir_cfg, requester) == Some(true);
                l.state = State::Private;
                l.owner = requester;
                l.sharers = S::empty(&self.dir_cfg);
                let data = l.data;
                let mut acks = 0u32;
                for core in 0..ch.n_cores() {
                    if core != requester && sharers.may_hold(&self.dir_cfg, core) {
                        if ch.faults.fire_corrupt_sharers() {
                            // Injected fault: this sharer vanishes from
                            // the fan-out. It keeps a stale Shared copy
                            // while the requester is granted Exclusive.
                            continue;
                        }
                        ch.send(
                            now,
                            Agent::L1(core),
                            Msg::Inv {
                                line,
                                ack_to_requester: Some(requester),
                            },
                        );
                        acks += 1;
                    }
                }
                ch.begin(line, Txn::new(BusyKind::Grant, true, false));
                // Upgrades reuse the requester's valid Shared copy.
                ch.send(
                    now,
                    Agent::L1(requester),
                    Self::data_msg(line, data, Grant::Exclusive, acks, !requester_holds, true),
                );
            }
            State::Private => {
                let owner = l.owner;
                debug_assert_ne!(owner, requester, "owner re-requesting GetX");
                l.owner = requester;
                ch.begin(line, Txn::new(BusyKind::FwdX, true, false));
                ch.send(now, Agent::L1(owner), Msg::FwdGetX { line, requester });
            }
        }
    }

    fn put(
        &mut self,
        ch: &mut Ch<S>,
        now: Cycle,
        line: LineAddr,
        from: usize,
        data: Option<LineData>,
        _ts: Ts,
        _epoch: Epoch,
    ) {
        if let Some(l) = ch.cache.peek_mut(line) {
            if l.state == State::Private && l.owner == from {
                l.state = State::Idle;
                if let Some(d) = data {
                    l.data = d;
                    l.dirty = true;
                }
            }
            // Otherwise the PUT is stale (a racing forward already moved
            // ownership); just acknowledge.
        }
        ch.send(now, Agent::L1(from), Msg::PutAck { line });
    }

    fn handle_message(&mut self, ch: &mut Ch<S>, now: Cycle, _src: Agent, msg: Msg) {
        match msg {
            Msg::DowngradeData {
                line, data, dirty, ..
            } => {
                let tile = ch.tile();
                let txn = ch
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{tile}]: stray DowngradeData {line}"));
                let BusyKind::FwdS { requester } = txn.kind else {
                    panic!("L2[{tile}]: DowngradeData outside FwdS");
                };
                txn.need_owner_data = false;
                let dir_cfg = self.dir_cfg;
                let l = ch
                    .cache
                    .peek_mut(line)
                    .expect("forwarded line must be resident");
                let old_owner = l.owner;
                l.state = State::Shared;
                let mut sharers = S::empty(&dir_cfg);
                sharers.add(&dir_cfg, old_owner);
                sharers.add(&dir_cfg, requester);
                l.sharers = sharers;
                if dirty {
                    l.data = data;
                    l.dirty = true;
                }
                ch.maybe_finish(line);
            }
            Msg::RecallData {
                line, data, dirty, ..
            } => {
                let tile = ch.tile();
                let txn = ch
                    .finish(line)
                    .unwrap_or_else(|| panic!("L2[{tile}]: stray RecallData {line}"));
                let BusyKind::Dying {
                    data: old_data,
                    dirty: old_dirty,
                    ..
                } = txn.kind
                else {
                    panic!("L2[{tile}]: RecallData outside Dying");
                };
                let (wb_data, wb_dirty) = if dirty {
                    (data, true)
                } else {
                    (old_data, old_dirty)
                };
                if wb_dirty {
                    let mem = ch.mem();
                    ch.send(
                        now,
                        mem,
                        Msg::MemWrite {
                            line,
                            data: wb_data,
                        },
                    );
                }
            }
            Msg::InvAckToL2 { line, .. } => {
                let tile = ch.tile();
                let txn = ch
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{tile}]: stray InvAckToL2 {line}"));
                let BusyKind::Dying {
                    ref mut acks_left,
                    data,
                    dirty,
                    ..
                } = txn.kind
                else {
                    panic!("L2[{tile}]: InvAckToL2 outside Dying");
                };
                *acks_left -= 1;
                if *acks_left == 0 {
                    ch.finish(line).expect("present");
                    if dirty {
                        let mem = ch.mem();
                        ch.send(now, mem, Msg::MemWrite { line, data });
                    }
                }
            }
            Msg::MemData { line, data } => {
                let tile = ch.tile();
                let txn = ch
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{tile}]: stray MemData {line}"));
                let BusyKind::Fetch { requester } = txn.kind else {
                    panic!("L2[{tile}]: MemData outside Fetch");
                };
                txn.kind = BusyKind::Grant;
                self.install(
                    ch,
                    now,
                    line,
                    Line {
                        state: State::Private,
                        sharers: S::empty(&self.dir_cfg),
                        owner: requester,
                        data,
                        dirty: false,
                    },
                );
                ch.send(
                    now,
                    Agent::L1(requester),
                    Self::data_msg(line, data, Grant::Exclusive, 0, true, true),
                );
            }
            other => panic!("L2[{}]: unexpected {other:?}", ch.tile()),
        }
    }
}
