//! MESI private L1 cache controller, as a policy over the shared
//! [`L1Chassis`].

use tsocc_coherence::{
    Agent, Completion, CoreOp, Epoch, Grant, Install, L1Chassis, L1Ctl, L1Policy, LineAccess, Msg,
    Submit, Ts,
};
use tsocc_isa::RmwOp;
use tsocc_mem::{Addr, CacheParams, LineAddr, LineData};
use tsocc_sim::Cycle;

/// L1 line states (Invalid is represented by absence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Shared,
    Exclusive,
    Modified,
}

/// One resident MESI L1 line (opaque outside the policy).
#[derive(Clone, Copy, Debug)]
pub struct Line {
    state: State,
    data: LineData,
}

#[derive(Clone, Copy, Debug)]
enum MshrOp {
    Load { word: usize },
    Store { word: usize, value: u64 },
    Rmw { word: usize, op: RmwOp },
}

/// One in-flight MESI L1 miss (opaque outside the policy).
#[derive(Debug)]
pub struct Mshr {
    op: MshrOp,
    /// Grant + data, once the data response has arrived.
    data: Option<(Grant, LineData, bool)>, // (grant, data, ack_required)
    acks_expected: Option<u32>,
    acks_received: u32,
    /// An invalidation raced past the data response (it invalidated the
    /// address while our GetS was in flight). The arriving Shared data
    /// is stale-but-ordered: usable for the load, not cacheable.
    poisoned: bool,
}

/// Configuration of a MESI L1.
#[derive(Clone, Copy, Debug)]
pub struct MesiL1Config {
    /// This core's id.
    pub id: usize,
    /// Total number of cores in the machine.
    pub n_cores: usize,
    /// Number of L2 tiles (for home-tile interleaving).
    pub n_tiles: usize,
    /// L2 banks per tile (home-interleaving granularity; 1 in Table 2).
    pub l2_banks: usize,
    /// Cache geometry (32 KiB 4-way in Table 2).
    pub params: CacheParams,
    /// Tag-array latency charged before an outgoing request (cycles).
    pub issue_latency: u64,
}

impl MesiL1Config {
    /// The paper's Table 2 L1: 32 KiB, 4-way.
    pub fn table2(id: usize, n_cores: usize, n_tiles: usize) -> Self {
        MesiL1Config {
            id,
            n_cores,
            n_tiles,
            l2_banks: 1,
            params: CacheParams::from_capacity(32 * 1024, 4),
            issue_latency: 1,
        }
    }

    /// Builds the controller: a [`MesiL1Policy`] over a fresh chassis.
    pub fn build(self) -> MesiL1 {
        L1Ctl::assemble(
            L1Chassis::new(
                self.id,
                self.n_cores,
                self.n_tiles,
                self.l2_banks,
                self.issue_latency,
                self.params,
            ),
            MesiL1Policy,
        )
    }
}

/// The MESI L1 controller for one core.
pub type MesiL1 = L1Ctl<MesiL1Policy>;

/// The MESI L1 transition rules. Stateless: eager invalidation-based
/// MESI keeps everything it needs (lines, MSHRs, the writeback buffer)
/// in the chassis. Shared verbatim by the MESI-coarse protocol, whose
/// directory change is invisible to the private caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MesiL1Policy;

type Ch = L1Chassis<Line, Mshr>;

impl MesiL1Policy {
    /// Writes an evicted line back: silent for Shared, PutE/PutM (via
    /// the chassis writeback buffer) for private lines.
    fn writeback(&mut self, ch: &mut Ch, now: Cycle, line: LineAddr, l: Line) {
        match l.state {
            State::Shared => {
                // Silent shared replacement; the directory's sharer bit
                // goes stale and later invalidations are acked blindly.
            }
            State::Exclusive => {
                ch.park_writeback(now, line, l.data, false, Ts::INVALID, Epoch::ZERO);
            }
            State::Modified => {
                ch.park_writeback(now, line, l.data, true, Ts::INVALID, Epoch::ZERO);
            }
        }
    }

    /// Completes an MSHR whose data and acks have all arrived.
    fn try_complete(&mut self, ch: &mut Ch, now: Cycle, line: LineAddr) {
        if ch.faults.hold_mshr(line) {
            // Injected fault: the MSHR never completes. The request
            // wedges and the system's hang diagnosis takes over.
            return;
        }
        let Some(entry) = ch.mshrs.get(line) else {
            return;
        };
        let Some((grant, _, _)) = entry.data else {
            return;
        };
        let needed = entry.acks_expected.unwrap_or(0);
        if entry.acks_received < needed {
            return;
        }
        let entry = ch.mshrs.remove(line).expect("checked above");
        // Payload-less (upgrade) grants were already substituted with the
        // resident copy's data in `handle_message`.
        let (_, mut data, ack_required) = entry.data.expect("checked above");
        let (state, completion) = match entry.op {
            MshrOp::Load { word } => {
                let state = match grant {
                    Grant::Exclusive => State::Exclusive,
                    Grant::Shared | Grant::SharedRO => State::Shared,
                };
                if entry.poisoned && state == State::Shared {
                    // A racing invalidation means this Shared copy must
                    // not linger; the value itself is correctly ordered
                    // (the directory serialized our read before the
                    // write that invalidated).
                    if ack_required {
                        ch.send_unblock(now, line);
                    }
                    ch.completions.push(Completion::Load(data.read_word(word)));
                    return;
                }
                (state, Completion::Load(data.read_word(word)))
            }
            MshrOp::Store { word, value } => {
                assert_eq!(grant, Grant::Exclusive, "stores need exclusive grants");
                data.write_word(word, value);
                (State::Modified, Completion::Store)
            }
            MshrOp::Rmw { word, op } => {
                assert_eq!(grant, Grant::Exclusive, "RMWs need exclusive grants");
                let old = data.read_word(word);
                data.write_word(word, op.apply(old));
                (State::Modified, Completion::Load(old))
            }
        };
        match ch.install(now, line, Line { state, data }) {
            Install::Done => {}
            Install::Evicted(victim, old) => self.writeback(ch, now, victim, old),
            Install::NoWay => {
                // No evictable way: keep the directory consistent by
                // immediately writing the line back.
                self.writeback(ch, now, line, Line { state, data });
            }
        }
        if ack_required {
            ch.send_unblock(now, line);
        }
        ch.completions.push(completion);
    }

    fn submit_load(&mut self, ch: &mut Ch, now: Cycle, addr: Addr) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        if let Some(l) = ch.cache.lookup(line) {
            match l.state {
                State::Shared => ch.stats.read_hit_shared.inc(),
                State::Exclusive | State::Modified => ch.stats.read_hit_private.inc(),
            }
            return Submit::Hit(l.data.read_word(word));
        }
        if !ch.line_free(line) {
            return Submit::Retry;
        }
        ch.stats.read_miss_invalid.inc();
        ch.mshrs.alloc(
            line,
            Mshr {
                op: MshrOp::Load { word },
                data: None,
                acks_expected: None,
                acks_received: 0,
                poisoned: false,
            },
        );
        let home = ch.home(line);
        ch.send(now, home, Msg::GetS { line });
        Submit::Miss
    }

    fn submit_store(&mut self, ch: &mut Ch, now: Cycle, addr: Addr, value: u64) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        if let Some(l) = ch.cache.lookup_mut(line) {
            match l.state {
                State::Exclusive | State::Modified => {
                    l.state = State::Modified;
                    l.data.write_word(word, value);
                    ch.stats.write_hit_private.inc();
                    return Submit::Hit(0);
                }
                State::Shared => {
                    // Upgrade: needs a GetX transaction.
                    if !ch.line_free(line) {
                        return Submit::Retry;
                    }
                    ch.stats.write_miss_shared.inc();
                }
            }
        } else {
            if !ch.line_free(line) {
                return Submit::Retry;
            }
            ch.stats.write_miss_invalid.inc();
        }
        ch.mshrs.alloc(
            line,
            Mshr {
                op: MshrOp::Store { word, value },
                data: None,
                acks_expected: None,
                acks_received: 0,
                poisoned: false,
            },
        );
        let home = ch.home(line);
        ch.send(now, home, Msg::GetX { line });
        Submit::Miss
    }

    fn submit_rmw(&mut self, ch: &mut Ch, now: Cycle, addr: Addr, rmw: RmwOp) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        if let Some(l) = ch.cache.lookup_mut(line) {
            if matches!(l.state, State::Exclusive | State::Modified) {
                l.state = State::Modified;
                let old = l.data.read_word(word);
                l.data.write_word(word, rmw.apply(old));
                ch.stats.rmw_hit.inc();
                ch.stats.write_hit_private.inc();
                return Submit::Hit(old);
            }
        }
        if !ch.line_free(line) {
            return Submit::Retry;
        }
        ch.stats.rmw_miss.inc();
        if ch.cache.peek(line).is_some() {
            ch.stats.write_miss_shared.inc();
        } else {
            ch.stats.write_miss_invalid.inc();
        }
        ch.mshrs.alloc(
            line,
            Mshr {
                op: MshrOp::Rmw { word, op: rmw },
                data: None,
                acks_expected: None,
                acks_received: 0,
                poisoned: false,
            },
        );
        let home = ch.home(line);
        ch.send(now, home, Msg::GetX { line });
        Submit::Miss
    }
}

impl L1Policy for MesiL1Policy {
    type Line = Line;
    type Mshr = Mshr;

    fn submit(&mut self, ch: &mut Ch, now: Cycle, op: CoreOp) -> Submit {
        match op {
            CoreOp::Fence => Submit::Hit(0), // MESI is eager; fences are core-local
            CoreOp::Load(addr) => self.submit_load(ch, now, addr),
            CoreOp::Store(addr, value) => self.submit_store(ch, now, addr, value),
            CoreOp::Rmw(addr, rmw) => self.submit_rmw(ch, now, addr, rmw),
        }
    }

    fn line_access(&self, line: &Line) -> LineAccess {
        match line.state {
            State::Shared => LineAccess::Read,
            // Exclusive counts as write permission: the E→M upgrade is
            // silent, so an Exclusive holder excludes every other copy
            // exactly like a Modified one.
            State::Exclusive | State::Modified => LineAccess::Write,
        }
    }

    fn handle_message(&mut self, ch: &mut Ch, now: Cycle, _src: Agent, msg: Msg) {
        match msg {
            Msg::Data {
                line,
                data,
                grant,
                acks_expected,
                with_payload,
                ack_required,
                ..
            } => {
                let id = ch.id();
                let resident = ch.cache.peek(line).map(|l| l.data);
                let entry = ch
                    .mshrs
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L1[{id}]: data for no MSHR {line}"));
                let data = if with_payload {
                    data
                } else {
                    // Upgrade grant: our resident Shared copy is valid.
                    resident.unwrap_or(data)
                };
                entry.data = Some((grant, data, ack_required));
                entry.acks_expected = Some(acks_expected);
                self.try_complete(ch, now, line);
            }
            Msg::InvAck { line, .. } => {
                if let Some(entry) = ch.mshrs.get_mut(line) {
                    entry.acks_received += 1;
                    self.try_complete(ch, now, line);
                } else {
                    panic!("L1[{}]: stray InvAck for {line}", ch.id());
                }
            }
            Msg::FwdGetS { line, requester } => {
                if let Some(l) = ch.cache.peek_mut(line) {
                    let dirty = l.state == State::Modified;
                    l.state = State::Shared;
                    let data = l.data;
                    self.forward_shared(ch, now, line, requester, data, dirty);
                } else if let Some(entry) = ch.wb.get_mut(line) {
                    entry.forwarded = true;
                    let (data, dirty) = (entry.data, entry.dirty);
                    self.forward_shared(ch, now, line, requester, data, dirty);
                } else {
                    panic!("L1[{}]: FwdGetS for absent line {line}", ch.id());
                }
            }
            Msg::FwdGetX { line, requester } => {
                let data = if let Some(l) = ch.cache.remove(line) {
                    l.data
                } else if let Some(entry) = ch.wb.get_mut(line) {
                    entry.forwarded = true;
                    entry.data
                } else {
                    panic!("L1[{}]: FwdGetX for absent line {line}", ch.id());
                };
                let id = ch.id();
                ch.send(
                    now,
                    Agent::L1(requester),
                    Msg::Data {
                        line,
                        data,
                        grant: Grant::Exclusive,
                        writer: id,
                        ts: Ts::INVALID,
                        epoch: Epoch::ZERO,
                        ts_source: None,
                        acks_expected: 0,
                        with_payload: true,
                        ack_required: true,
                    },
                );
            }
            Msg::Inv {
                line,
                ack_to_requester,
            } => {
                if let Some(l) = ch.cache.peek(line) {
                    debug_assert_eq!(l.state, State::Shared, "Inv must target shared copies");
                    ch.cache.remove(line);
                }
                if let Some(m) = ch.mshrs.get_mut(line) {
                    if matches!(m.op, MshrOp::Load { .. }) {
                        m.poisoned = true;
                    }
                }
                let id = ch.id();
                if ch.faults.fire_drop_inv_ack() {
                    // Injected fault: swallow the acknowledgement. The
                    // requester (or the L2) waits for it forever.
                } else {
                    match ack_to_requester {
                        Some(r) => {
                            debug_assert_ne!(r, id);
                            ch.send(now, Agent::L1(r), Msg::InvAck { line, from: id });
                        }
                        None => {
                            let home = ch.home(line);
                            ch.send(now, home, Msg::InvAckToL2 { line, from: id });
                        }
                    }
                }
            }
            Msg::Recall { line } => {
                let (data, dirty) = if let Some(l) = ch.cache.remove(line) {
                    (l.data, l.state == State::Modified)
                } else if let Some(entry) = ch.wb.get_mut(line) {
                    entry.forwarded = true;
                    (entry.data, entry.dirty)
                } else {
                    panic!("L1[{}]: Recall for absent line {line}", ch.id());
                };
                let home = ch.home(line);
                let from = ch.id();
                ch.send(
                    now,
                    home,
                    Msg::RecallData {
                        line,
                        data,
                        dirty,
                        ts: Ts::INVALID,
                        epoch: Epoch::ZERO,
                        from,
                    },
                );
            }
            Msg::PutAck { line } => {
                ch.wb.remove(line);
            }
            other => panic!("L1[{}]: unexpected {other:?}", ch.id()),
        }
    }
}

impl MesiL1Policy {
    /// Serves a FwdGetS: supplies the requester with a Shared copy and
    /// refreshes the home tile via DowngradeData.
    fn forward_shared(
        &mut self,
        ch: &mut Ch,
        now: Cycle,
        line: LineAddr,
        requester: usize,
        data: LineData,
        dirty: bool,
    ) {
        let id = ch.id();
        ch.send(
            now,
            Agent::L1(requester),
            Msg::Data {
                line,
                data,
                grant: Grant::Shared,
                writer: id,
                ts: Ts::INVALID,
                epoch: Epoch::ZERO,
                ts_source: None,
                acks_expected: 0,
                with_payload: true,
                ack_required: true,
            },
        );
        let home = ch.home(line);
        ch.send(
            now,
            home,
            Msg::DowngradeData {
                line,
                data,
                dirty,
                ts: Ts::INVALID,
                epoch: Epoch::ZERO,
                from: id,
            },
        );
    }
}
