//! MESI private L1 cache controller.

use tsocc_coherence::{
    Agent, CacheController, Completion, CoreOp, Epoch, Grant, L1Controller, L1Stats, Msg, NetMsg,
    Outbox, Submit, Ts, WritebackBuffer,
};
use tsocc_isa::RmwOp;
use tsocc_mem::{Addr, CacheArray, CacheParams, InsertOutcome, LineAddr, LineData, LineMap};
use tsocc_sim::Cycle;

/// L1 line states (Invalid is represented by absence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Shared,
    Exclusive,
    Modified,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    state: State,
    data: LineData,
}

#[derive(Clone, Copy, Debug)]
enum MshrOp {
    Load { word: usize },
    Store { word: usize, value: u64 },
    Rmw { word: usize, op: RmwOp },
}

#[derive(Debug)]
struct Mshr {
    op: MshrOp,
    /// Grant + data, once the data response has arrived.
    data: Option<(Grant, LineData, bool)>, // (grant, data, ack_required)
    acks_expected: Option<u32>,
    acks_received: u32,
    /// An invalidation raced past the data response (it invalidated the
    /// address while our GetS was in flight). The arriving Shared data
    /// is stale-but-ordered: usable for the load, not cacheable.
    poisoned: bool,
}

/// Configuration of a MESI L1.
#[derive(Clone, Copy, Debug)]
pub struct MesiL1Config {
    /// This core's id.
    pub id: usize,
    /// Number of L2 tiles (for home-tile interleaving).
    pub n_tiles: usize,
    /// Cache geometry (32 KiB 4-way in Table 2).
    pub params: CacheParams,
    /// Tag-array latency charged before an outgoing request (cycles).
    pub issue_latency: u64,
}

impl MesiL1Config {
    /// The paper's Table 2 L1: 32 KiB, 4-way.
    pub fn table2(id: usize, n_tiles: usize) -> Self {
        MesiL1Config {
            id,
            n_tiles,
            params: CacheParams::from_capacity(32 * 1024, 4),
            issue_latency: 1,
        }
    }
}

/// The MESI L1 controller for one core.
#[derive(Debug)]
pub struct MesiL1 {
    cfg: MesiL1Config,
    cache: CacheArray<Line>,
    mshrs: LineMap<Mshr>,
    wb: WritebackBuffer,
    outbox: Outbox,
    completions: Vec<Completion>,
    stats: L1Stats,
}

impl MesiL1 {
    /// Creates the controller.
    pub fn new(cfg: MesiL1Config) -> Self {
        MesiL1 {
            cfg,
            cache: CacheArray::new(cfg.params),
            mshrs: LineMap::new(),
            wb: WritebackBuffer::new(),
            outbox: Outbox::new(),
            completions: Vec::new(),
            stats: L1Stats::default(),
        }
    }

    fn agent(&self) -> Agent {
        Agent::L1(self.cfg.id)
    }

    fn home(&self, line: LineAddr) -> Agent {
        Agent::L2(line.home(self.cfg.n_tiles))
    }

    fn send(&mut self, now: Cycle, dst: Agent, msg: Msg) {
        self.outbox.push(
            now + self.cfg.issue_latency,
            NetMsg {
                src: self.agent(),
                dst,
                msg,
            },
        );
    }

    /// Whether a new transaction may start on `line`.
    fn line_free(&self, line: LineAddr) -> bool {
        !self.mshrs.contains_key(line) && self.wb.get(line).is_none()
    }

    /// Evicts `victim` (already removed from the array), emitting the
    /// PUT and parking the data in the writeback buffer.
    fn evict(&mut self, now: Cycle, victim: LineAddr, line: Line) {
        match line.state {
            State::Shared => {
                // Silent shared replacement; the directory's sharer bit
                // goes stale and later invalidations are acked blindly.
            }
            State::Exclusive => {
                self.wb
                    .insert(victim, line.data, false, Ts::INVALID, Epoch::ZERO);
                self.send(now, self.home(victim), Msg::PutE { line: victim });
            }
            State::Modified => {
                self.wb
                    .insert(victim, line.data, true, Ts::INVALID, Epoch::ZERO);
                self.send(
                    now,
                    self.home(victim),
                    Msg::PutM {
                        line: victim,
                        data: line.data,
                        ts: Ts::INVALID,
                        epoch: Epoch::ZERO,
                    },
                );
            }
        }
    }

    /// Installs a line delivered by a data response, evicting if needed.
    /// Returns false if the set had no evictable way (pathological); the
    /// caller then completes the access without caching.
    fn install(&mut self, now: Cycle, line: LineAddr, entry: Line) -> bool {
        if let Some(resident) = self.cache.peek_mut(line) {
            *resident = entry;
            return true;
        }
        let mshrs = &self.mshrs;
        let outcome = self
            .cache
            .insert(line, entry, now.as_u64(), |la, _| !mshrs.contains_key(la));
        match outcome {
            InsertOutcome::Installed => true,
            InsertOutcome::Evicted(victim, old) => {
                self.evict(now, victim, old);
                true
            }
            InsertOutcome::SetFull => false,
        }
    }

    /// Completes an MSHR whose data and acks have all arrived.
    fn try_complete(&mut self, now: Cycle, line: LineAddr) {
        let Some(entry) = self.mshrs.get(line) else {
            return;
        };
        let Some((grant, _, _)) = entry.data else {
            return;
        };
        let needed = entry.acks_expected.unwrap_or(0);
        if entry.acks_received < needed {
            return;
        }
        let entry = self.mshrs.remove(line).expect("checked above");
        // Payload-less (upgrade) grants were already substituted with the
        // resident copy's data in `handle_message`.
        let (_, mut data, ack_required) = entry.data.expect("checked above");
        let (state, completion) = match entry.op {
            MshrOp::Load { word } => {
                let state = match grant {
                    Grant::Exclusive => State::Exclusive,
                    Grant::Shared | Grant::SharedRO => State::Shared,
                };
                if entry.poisoned && state == State::Shared {
                    // A racing invalidation means this Shared copy must
                    // not linger; the value itself is correctly ordered
                    // (the directory serialized our read before the
                    // write that invalidated).
                    if ack_required {
                        self.send(
                            now,
                            self.home(line),
                            Msg::Unblock {
                                line,
                                from: self.cfg.id,
                            },
                        );
                    }
                    self.completions
                        .push(Completion::Load(data.read_word(word)));
                    return;
                }
                (state, Completion::Load(data.read_word(word)))
            }
            MshrOp::Store { word, value } => {
                assert_eq!(grant, Grant::Exclusive, "stores need exclusive grants");
                data.write_word(word, value);
                (State::Modified, Completion::Store)
            }
            MshrOp::Rmw { word, op } => {
                assert_eq!(grant, Grant::Exclusive, "RMWs need exclusive grants");
                let old = data.read_word(word);
                data.write_word(word, op.apply(old));
                (State::Modified, Completion::Load(old))
            }
        };
        let installed = self.install(now, line, Line { state, data });
        if !installed {
            // No evictable way: keep the directory consistent by
            // immediately writing the line back.
            match state {
                State::Shared => {}
                State::Exclusive => {
                    self.wb.insert(line, data, false, Ts::INVALID, Epoch::ZERO);
                    self.send(now, self.home(line), Msg::PutE { line });
                }
                State::Modified => {
                    self.wb.insert(line, data, true, Ts::INVALID, Epoch::ZERO);
                    self.send(
                        now,
                        self.home(line),
                        Msg::PutM {
                            line,
                            data,
                            ts: Ts::INVALID,
                            epoch: Epoch::ZERO,
                        },
                    );
                }
            }
        }
        if ack_required {
            self.send(
                now,
                self.home(line),
                Msg::Unblock {
                    line,
                    from: self.cfg.id,
                },
            );
        }
        self.completions.push(completion);
    }
}

impl CacheController for MesiL1 {
    fn handle_message(&mut self, now: Cycle, _src: Agent, msg: Msg) {
        match msg {
            Msg::Data {
                line,
                data,
                grant,
                acks_expected,
                with_payload,
                ack_required,
                ..
            } => {
                let entry = self
                    .mshrs
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L1[{}]: data for no MSHR {line}", self.cfg.id));
                let data = if with_payload {
                    data
                } else {
                    // Upgrade grant: our resident Shared copy is valid.
                    self.cache.peek(line).map(|l| l.data).unwrap_or(data)
                };
                entry.data = Some((grant, data, ack_required));
                entry.acks_expected = Some(acks_expected);
                self.try_complete(now, line);
            }
            Msg::InvAck { line, .. } => {
                if let Some(entry) = self.mshrs.get_mut(line) {
                    entry.acks_received += 1;
                    self.try_complete(now, line);
                } else {
                    panic!("L1[{}]: stray InvAck for {line}", self.cfg.id);
                }
            }
            Msg::FwdGetS { line, requester } => {
                if let Some(l) = self.cache.peek_mut(line) {
                    let dirty = l.state == State::Modified;
                    l.state = State::Shared;
                    let data = l.data;
                    self.send(
                        now,
                        Agent::L1(requester),
                        Msg::Data {
                            line,
                            data,
                            grant: Grant::Shared,
                            writer: self.cfg.id,
                            ts: Ts::INVALID,
                            epoch: Epoch::ZERO,
                            ts_source: None,
                            acks_expected: 0,
                            with_payload: true,
                            ack_required: true,
                        },
                    );
                    self.send(
                        now,
                        self.home(line),
                        Msg::DowngradeData {
                            line,
                            data,
                            dirty,
                            ts: Ts::INVALID,
                            epoch: Epoch::ZERO,
                            from: self.cfg.id,
                        },
                    );
                } else if let Some(entry) = self.wb.get_mut(line) {
                    entry.forwarded = true;
                    let (data, dirty) = (entry.data, entry.dirty);
                    self.send(
                        now,
                        Agent::L1(requester),
                        Msg::Data {
                            line,
                            data,
                            grant: Grant::Shared,
                            writer: self.cfg.id,
                            ts: Ts::INVALID,
                            epoch: Epoch::ZERO,
                            ts_source: None,
                            acks_expected: 0,
                            with_payload: true,
                            ack_required: true,
                        },
                    );
                    self.send(
                        now,
                        self.home(line),
                        Msg::DowngradeData {
                            line,
                            data,
                            dirty,
                            ts: Ts::INVALID,
                            epoch: Epoch::ZERO,
                            from: self.cfg.id,
                        },
                    );
                } else {
                    panic!("L1[{}]: FwdGetS for absent line {line}", self.cfg.id);
                }
            }
            Msg::FwdGetX { line, requester } => {
                let data = if let Some(l) = self.cache.remove(line) {
                    l.data
                } else if let Some(entry) = self.wb.get_mut(line) {
                    entry.forwarded = true;
                    entry.data
                } else {
                    panic!("L1[{}]: FwdGetX for absent line {line}", self.cfg.id);
                };
                self.send(
                    now,
                    Agent::L1(requester),
                    Msg::Data {
                        line,
                        data,
                        grant: Grant::Exclusive,
                        writer: self.cfg.id,
                        ts: Ts::INVALID,
                        epoch: Epoch::ZERO,
                        ts_source: None,
                        acks_expected: 0,
                        with_payload: true,
                        ack_required: true,
                    },
                );
            }
            Msg::Inv {
                line,
                ack_to_requester,
            } => {
                if let Some(l) = self.cache.peek(line) {
                    debug_assert_eq!(l.state, State::Shared, "Inv must target shared copies");
                    self.cache.remove(line);
                }
                if let Some(m) = self.mshrs.get_mut(line) {
                    if matches!(m.op, MshrOp::Load { .. }) {
                        m.poisoned = true;
                    }
                }
                match ack_to_requester {
                    Some(r) => {
                        debug_assert_ne!(r, self.cfg.id);
                        self.send(
                            now,
                            Agent::L1(r),
                            Msg::InvAck {
                                line,
                                from: self.cfg.id,
                            },
                        );
                    }
                    None => {
                        self.send(
                            now,
                            self.home(line),
                            Msg::InvAckToL2 {
                                line,
                                from: self.cfg.id,
                            },
                        );
                    }
                }
            }
            Msg::Recall { line } => {
                let (data, dirty) = if let Some(l) = self.cache.remove(line) {
                    (l.data, l.state == State::Modified)
                } else if let Some(entry) = self.wb.get_mut(line) {
                    entry.forwarded = true;
                    (entry.data, entry.dirty)
                } else {
                    panic!("L1[{}]: Recall for absent line {line}", self.cfg.id);
                };
                self.send(
                    now,
                    self.home(line),
                    Msg::RecallData {
                        line,
                        data,
                        dirty,
                        ts: Ts::INVALID,
                        epoch: Epoch::ZERO,
                        from: self.cfg.id,
                    },
                );
            }
            Msg::PutAck { line } => {
                self.wb.remove(line);
            }
            other => panic!("L1[{}]: unexpected {other:?}", self.cfg.id),
        }
    }

    fn tick(&mut self, _now: Cycle) {}

    fn drain_outbox(&mut self, now: Cycle, out: &mut Vec<NetMsg>) {
        self.outbox.drain_ready_into(now, out);
    }

    fn is_quiescent(&self) -> bool {
        self.mshrs.is_empty() && self.wb.is_empty() && self.outbox.is_empty()
    }

    fn next_event(&self) -> Cycle {
        // MSHRs and writeback entries complete on message arrival; the
        // only self-driven action is injecting queued outbox messages.
        self.outbox.next_ready()
    }
}

impl L1Controller for MesiL1 {
    fn submit(&mut self, now: Cycle, op: CoreOp) -> Submit {
        match op {
            CoreOp::Fence => Submit::Hit(0), // MESI is eager; fences are core-local
            CoreOp::Load(addr) => self.submit_load(now, addr),
            CoreOp::Store(addr, value) => self.submit_store(now, addr, value),
            CoreOp::Rmw(addr, rmw) => self.submit_rmw(now, addr, rmw),
        }
    }

    fn drain_completions(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.completions);
    }

    fn stats(&self) -> &L1Stats {
        &self.stats
    }
}

impl MesiL1 {
    fn submit_load(&mut self, now: Cycle, addr: Addr) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        if let Some(l) = self.cache.lookup(line) {
            match l.state {
                State::Shared => self.stats.read_hit_shared.inc(),
                State::Exclusive | State::Modified => self.stats.read_hit_private.inc(),
            }
            return Submit::Hit(l.data.read_word(word));
        }
        if !self.line_free(line) {
            return Submit::Retry;
        }
        self.stats.read_miss_invalid.inc();
        self.mshrs.insert(
            line,
            Mshr {
                op: MshrOp::Load { word },
                data: None,
                acks_expected: None,
                acks_received: 0,
                poisoned: false,
            },
        );
        self.send(now, self.home(line), Msg::GetS { line });
        Submit::Miss
    }

    fn submit_store(&mut self, now: Cycle, addr: Addr, value: u64) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        if let Some(l) = self.cache.lookup_mut(line) {
            match l.state {
                State::Exclusive | State::Modified => {
                    l.state = State::Modified;
                    l.data.write_word(word, value);
                    self.stats.write_hit_private.inc();
                    return Submit::Hit(0);
                }
                State::Shared => {
                    // Upgrade: needs a GetX transaction.
                    if !self.line_free(line) {
                        return Submit::Retry;
                    }
                    self.stats.write_miss_shared.inc();
                }
            }
        } else {
            if !self.line_free(line) {
                return Submit::Retry;
            }
            self.stats.write_miss_invalid.inc();
        }
        self.mshrs.insert(
            line,
            Mshr {
                op: MshrOp::Store { word, value },
                data: None,
                acks_expected: None,
                acks_received: 0,
                poisoned: false,
            },
        );
        self.send(now, self.home(line), Msg::GetX { line });
        Submit::Miss
    }

    fn submit_rmw(&mut self, now: Cycle, addr: Addr, rmw: RmwOp) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        if let Some(l) = self.cache.lookup_mut(line) {
            if matches!(l.state, State::Exclusive | State::Modified) {
                l.state = State::Modified;
                let old = l.data.read_word(word);
                l.data.write_word(word, rmw.apply(old));
                self.stats.rmw_hit.inc();
                self.stats.write_hit_private.inc();
                return Submit::Hit(old);
            }
        }
        if !self.line_free(line) {
            return Submit::Retry;
        }
        self.stats.rmw_miss.inc();
        if self.cache.peek(line).is_some() {
            self.stats.write_miss_shared.inc();
        } else {
            self.stats.write_miss_invalid.inc();
        }
        self.mshrs.insert(
            line,
            Mshr {
                op: MshrOp::Rmw { word, op: rmw },
                data: None,
                acks_expected: None,
                acks_received: 0,
                poisoned: false,
            },
        );
        self.send(now, self.home(line), Msg::GetX { line });
        Submit::Miss
    }
}
