//! Textual renderings of every table and figure in the paper.
//!
//! Each `print_*` function emits the same rows/series the paper plots,
//! as aligned text tables (normalized against MESI where the paper
//! normalizes). `EXPERIMENTS.md` is produced from this output.

use tsocc::RunStats;
use tsocc_coherence::SelfInvCause;

use crate::json::Value;
use tsocc_proto::{StorageModel, TsoCcConfig};
use tsocc_sim::stats::geometric_mean;
use tsocc_workloads::Benchmark;

use crate::sweep::Sweep;

fn header(cols: &[String]) {
    print!("{:<16}", "benchmark");
    for c in cols {
        print!(" {c:>16}");
    }
    println!();
}

/// Per-benchmark normalized metric table with a gmean row — the shape
/// of Figures 3, 4 and 8.
fn print_normalized<F>(sweep: &Sweep, title: &str, metric: F)
where
    F: Fn(&RunStats) -> f64,
{
    println!("\n== {title} (normalized to MESI; lower is better) ==");
    let configs = Sweep::config_names();
    header(&configs);
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for bench in Sweep::bench_names() {
        let base = metric(sweep.get(bench, "MESI")).max(1e-12);
        print!("{bench:<16}");
        for (i, cfg) in configs.iter().enumerate() {
            let v = metric(sweep.get(bench, cfg)) / base;
            per_config[i].push(v);
            print!(" {v:>16.3}");
        }
        println!();
    }
    print!("{:<16}", "gmean");
    for vals in &per_config {
        print!(" {:>16.3}", geometric_mean(vals));
    }
    println!();
}

/// Figure 3: normalized execution times.
pub fn print_fig3(sweep: &Sweep) {
    print_normalized(sweep, "Figure 3: execution time", |s| s.cycles as f64);
}

/// Figure 4: normalized network traffic (total flits).
pub fn print_fig4(sweep: &Sweep) {
    print_normalized(sweep, "Figure 4: network traffic (total flits)", |s| {
        s.total_flits() as f64
    });
}

/// Figure 8: normalized RMW latency.
pub fn print_fig8(sweep: &Sweep) {
    print_normalized(sweep, "Figure 8: RMW latency", |s| {
        s.rmw_latency.mean().max(1e-12)
    });
}

/// Figure 5: L1 cache misses (% of accesses) broken down by the state
/// the miss hit (Invalid / Shared / SharedRO, read vs write).
pub fn print_fig5(sweep: &Sweep) {
    println!("\n== Figure 5: L1 cache miss breakdown (% of L1 accesses) ==");
    println!("columns: Rd(Inv) Wr(Inv) Rd(Shared) Wr(Shared) Wr(SharedRO) | total");
    for bench in Sweep::bench_names() {
        println!("{bench}:");
        for cfg in Sweep::config_names() {
            let s = sweep.get(bench, &cfg);
            let acc = s.l1.accesses().max(1) as f64;
            let pct = |c: u64| 100.0 * c as f64 / acc;
            println!(
                "  {:<16} {:>6.2} {:>6.2} {:>9.2} {:>9.2} {:>11.2} | {:>6.2}",
                cfg,
                pct(s.l1.read_miss_invalid.get()),
                pct(s.l1.write_miss_invalid.get()),
                pct(s.l1.read_miss_shared.get()),
                pct(s.l1.write_miss_shared.get()),
                pct(s.l1.write_miss_sharedro.get()),
                100.0 * s.l1_miss_rate(),
            );
        }
    }
}

/// Figure 6: L1 hits and misses (% of accesses), hits split by state.
pub fn print_fig6(sweep: &Sweep) {
    println!("\n== Figure 6: L1 hits & misses (% of L1 accesses) ==");
    println!("columns: RdMiss WrMiss RdHit(Shared) RdHit(SharedRO) RdHit(Priv) WrHit(Priv)");
    for bench in Sweep::bench_names() {
        println!("{bench}:");
        for cfg in Sweep::config_names() {
            let s = sweep.get(bench, &cfg);
            let acc = s.l1.accesses().max(1) as f64;
            let pct = |c: u64| 100.0 * c as f64 / acc;
            println!(
                "  {:<16} {:>6.2} {:>6.2} {:>13.2} {:>15.2} {:>11.2} {:>11.2}",
                cfg,
                pct(s.l1.read_misses()),
                pct(s.l1.write_misses()),
                pct(s.l1.read_hit_shared.get()),
                pct(s.l1.read_hit_sharedro.get()),
                pct(s.l1.read_hit_private.get()),
                pct(s.l1.write_hit_private.get()),
            );
        }
    }
}

/// The TSO-CC configurations shown in Figures 7 and 9.
fn tsocc_configs() -> Vec<String> {
    Sweep::config_names()
        .into_iter()
        .filter(|c| c.starts_with("TSO-CC"))
        .collect()
}

/// Figure 7: percentage of L1 data responses that triggered
/// self-invalidation, split by trigger.
pub fn print_fig7(sweep: &Sweep) {
    println!("\n== Figure 7: L1 self-invalidations triggered by data responses (% of misses) ==");
    println!("columns: invalid-ts p.acquire(non-SRO) p.acquire(SRO) | total");
    for bench in Sweep::bench_names() {
        println!("{bench}:");
        for cfg in tsocc_configs() {
            let s = sweep.get(bench, &cfg);
            let misses = (s.l1.read_misses() + s.l1.write_misses()).max(1) as f64;
            let pct =
                |c: SelfInvCause| 100.0 * s.l1.selfinv_events[c.index()].get() as f64 / misses;
            println!(
                "  {:<16} {:>10.2} {:>18.2} {:>14.2} | {:>6.2}",
                cfg,
                pct(SelfInvCause::InvalidTs),
                pct(SelfInvCause::AcquireNonSro),
                pct(SelfInvCause::AcquireSro),
                100.0 * s.selfinv_rate_per_miss(),
            );
        }
    }
}

/// Figure 9: breakdown of self-invalidation causes (% of events).
pub fn print_fig9(sweep: &Sweep) {
    println!("\n== Figure 9: breakdown of L1 self-invalidation cause (% of events) ==");
    println!("columns: invalid-ts p.acquire(non-SRO) p.acquire(SRO) fence");
    for bench in Sweep::bench_names() {
        println!("{bench}:");
        for cfg in tsocc_configs() {
            let s = sweep.get(bench, &cfg);
            let fr = s.selfinv_cause_fractions();
            println!(
                "  {:<16} {:>10.1} {:>18.1} {:>14.1} {:>6.1}",
                cfg,
                100.0 * fr[0].1,
                100.0 * fr[1].1,
                100.0 * fr[2].1,
                100.0 * fr[3].1,
            );
        }
    }
}

/// Figure 2: coherence storage overhead (MB) vs core count.
pub fn print_fig2() {
    println!("\n== Figure 2: coherence storage overhead (MB) vs core count ==");
    let configs: Vec<(String, Option<TsoCcConfig>)> = vec![
        ("MESI".into(), None),
        ("TSO-CC-4-12-3".into(), Some(TsoCcConfig::realistic(12, 3))),
        ("TSO-CC-4-12-0".into(), Some(TsoCcConfig::realistic(12, 0))),
        ("TSO-CC-4-9-3".into(), Some(TsoCcConfig::realistic(9, 3))),
        ("TSO-CC-4-basic".into(), Some(TsoCcConfig::basic())),
    ];
    print!("{:<8}", "cores");
    for (name, _) in &configs {
        print!(" {name:>16}");
    }
    println!();
    for n in [8usize, 16, 32, 48, 64, 96, 128] {
        let model = StorageModel::paper(n);
        print!("{n:<8}");
        for (_, cfg) in &configs {
            let bits = match cfg {
                None => model.mesi_bits(),
                Some(c) => model.tsocc_bits(c),
            };
            print!(" {:>16.2}", StorageModel::to_mb(bits));
        }
        println!();
    }
    for n in [32usize, 128] {
        let model = StorageModel::paper(n);
        println!(
            "reduction vs MESI at {n} cores: TSO-CC-4-12-3 {:.0}%  TSO-CC-4-basic {:.0}%  (paper: 38%/82% and 75% at 32)",
            100.0 * model.reduction_vs_mesi(&TsoCcConfig::realistic(12, 3)),
            100.0 * model.reduction_vs_mesi(&TsoCcConfig::basic()),
        );
    }
}

/// Table 1: TSO-CC storage requirement breakdown for one configuration.
pub fn print_table1() {
    println!("\n== Table 1: TSO-CC per-structure storage (TSO-CC-4-12-3, 32 cores) ==");
    let n = 32u64;
    let cfg = TsoCcConfig::realistic(12, 3);
    let ts = cfg.write_ts.expect("realistic config has timestamps");
    let (bts, bwg, bep, bacc) = (ts.ts_bits as u64, ts.write_group_bits as u64, 3u64, 4u64);
    let owner = 5u64; // log2(32)
    println!("L1 per node:");
    println!("  current timestamp        {bts:>6} bits");
    println!("  write-group counter      {bwg:>6} bits");
    println!("  current epoch-id         {bep:>6} bits");
    println!("  ts_L1[{n}]                {:>6} bits", n * bts);
    println!("  epoch_ids_L1[{n}]         {:>6} bits", n * bep);
    println!("  ts_L2[{n}] (SharedRO opt) {:>6} bits", n * bts);
    println!("  epoch_ids_L2[{n}]         {:>6} bits", n * bep);
    println!("L1 per line:");
    println!("  access counter b.acnt    {bacc:>6} bits");
    println!("  last-written ts b.ts     {bts:>6} bits");
    println!("L2 per tile:");
    println!("  ts_L1[{n}]                {:>6} bits", n * bts);
    println!("  epoch_ids_L1[{n}]         {:>6} bits", n * bep);
    println!("  SharedRO ts + epoch + flags {:>3} bits", bts + bep + 2);
    println!("L2 per line:");
    println!("  timestamp b.ts           {bts:>6} bits");
    println!("  b.owner                  {owner:>6} bits  (vs {n}-bit MESI sharing vector)");
    let model = StorageModel::paper(32);
    println!(
        "total: {:.2} MB vs MESI {:.2} MB ({:.0}% reduction)",
        StorageModel::to_mb(model.tsocc_bits(&cfg)),
        StorageModel::to_mb(model.mesi_bits()),
        100.0 * model.reduction_vs_mesi(&cfg),
    );
}

/// Table 2: system parameters.
pub fn print_table2(opts: &crate::SweepOpts) {
    println!("\n== Table 2: system parameters ==");
    println!(
        "Core count & frequency   {} (in-order + 32-entry FIFO write buffer) @ 2GHz",
        opts.n_cores
    );
    println!("Write buffer entries     32, FIFO");
    println!("L1 D-cache (private)     32KB, 64B lines, 4-way, 3-cycle hit");
    println!(
        "L2 cache (NUCA, shared)  1MB x {} tiles, 64B lines, 16-way, ~30-80 cycle",
        opts.n_cores
    );
    println!("Memory                   ~150-230 cycles (4 controllers at mesh corners)");
    println!("On-chip network          2D mesh, XY routing, 16B flits, 3 vnets");
}

/// Table 3: benchmarks and their input parameters.
pub fn print_table3() {
    println!("\n== Table 3: benchmarks (synthetic kernels; see DESIGN.md §3) ==");
    for suite in ["PARSEC", "SPLASH-2", "STAMP"] {
        println!("{suite}:");
        for b in Benchmark::ALL.iter().filter(|b| b.suite() == suite) {
            println!("  {}", b.name());
        }
    }
}

/// The three protocol families whose divergence-with-scale the
/// `separation` figure tracks: full-vector MESI, the coarse-vector
/// compromise, and the paper's TSO-CC in its realistic configuration.
const SEPARATION_CONFIGS: [&str; 3] = ["MESI", "MESI-P4-G4", "TSO-CC-4-12-3"];

/// Where the committed sweep artifact lives: `TSOCC_SWEEP_JSON`
/// overrides; a repo-root invocation finds `BENCH_sweep.json` in the
/// working directory; anything else (tests, odd CWDs) falls back to
/// the copy next to this crate's workspace root.
fn sweep_artifact_path() -> String {
    if let Ok(p) = std::env::var("TSOCC_SWEEP_JSON") {
        return p;
    }
    let local = "BENCH_sweep.json";
    if std::path::Path::new(local).exists() {
        return local.to_string();
    }
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json").to_string()
}

/// The separation figure: execution time and network traffic versus
/// core count for the three protocol families, read from the
/// **committed** `BENCH_sweep.json` (no simulation runs — this renders
/// the artifact CI already pins, so the figure is reproducible from
/// the repo alone).
///
/// # Errors
///
/// The artifact is missing, unparseable, or lacks one of the three
/// configurations.
pub fn print_separation(path: &str) -> Result<(), String> {
    let doc = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read sweep artifact {path}: {e}"))?;
    let v = crate::json::parse(&doc).map_err(|e| format!("{path}: {e}"))?;
    let bench = v.get("bench").and_then(Value::as_str).unwrap_or("?");
    let scale = v.get("scale").and_then(Value::as_str).unwrap_or("?");
    let points = v
        .get("points")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{path}: no points array"))?;

    // (config -> core count -> (cycles, flits)), core counts sorted.
    let mut cores: Vec<u64> = Vec::new();
    let mut series: Vec<Vec<(u64, u64)>> = vec![Vec::new(); SEPARATION_CONFIGS.len()];
    for p in points {
        let config = p.get("config").and_then(Value::as_str).unwrap_or("");
        let Some(slot) = SEPARATION_CONFIGS.iter().position(|c| *c == config) else {
            continue;
        };
        let n = p.get("n_cores").and_then(Value::as_u64).unwrap_or(0);
        let cycles = p.get("cycles").and_then(Value::as_u64).unwrap_or(0);
        let flits = p.get("flits").and_then(Value::as_u64).unwrap_or(0);
        if !cores.contains(&n) {
            cores.push(n);
        }
        series[slot].push((n, cycles));
        // Flits ride in the high half so one vec carries both metrics.
        series[slot].push((n | 1 << 63, flits));
    }
    cores.sort_unstable();
    for (slot, config) in SEPARATION_CONFIGS.iter().enumerate() {
        if series[slot].is_empty() {
            return Err(format!("{path}: no rows for configuration {config}"));
        }
    }
    let lookup = |slot: usize, key: u64| -> u64 {
        series[slot]
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };

    for (title, tag) in [
        ("execution time (cycles)", 0u64),
        ("network traffic (total flits)", 1 << 63),
    ] {
        println!("\n== Separation: {title} vs cores ({bench}, {scale}) ==");
        print!("{:<8}", "cores");
        for config in SEPARATION_CONFIGS {
            print!(" {config:>16}");
        }
        println!(" {:>16}", "TSO-CC/MESI");
        for &n in &cores {
            print!("{n:<8}");
            let base = lookup(0, n | tag).max(1);
            for slot in 0..SEPARATION_CONFIGS.len() {
                print!(" {:>16}", lookup(slot, n | tag));
            }
            println!(" {:>16.3}", lookup(2, n | tag) as f64 / base as f64);
        }
        // The curve itself, one bar row per (core count, config),
        // scaled to the largest value in the block.
        let max = cores
            .iter()
            .flat_map(|&n| (0..SEPARATION_CONFIGS.len()).map(move |s| (s, n)))
            .map(|(s, n)| lookup(s, n | tag))
            .max()
            .unwrap_or(1)
            .max(1);
        for &n in &cores {
            for (slot, config) in SEPARATION_CONFIGS.iter().enumerate() {
                let value = lookup(slot, n | tag);
                let width = ((value as f64 / max as f64) * 48.0).round() as usize;
                let lead = if slot == 0 {
                    format!("{n:>4}")
                } else {
                    "    ".into()
                };
                println!(
                    "{lead} | {config:<14} {:<48} {value}",
                    "#".repeat(width.max(1))
                );
            }
        }
    }
    Ok(())
}

/// Every selection the `figures` binary accepts.
pub const SELECTIONS: [&str; 13] = [
    "table1",
    "table2",
    "table3",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "separation",
    "all",
];

/// Runs the benchmark sweep at most once across a render batch.
fn ensure_sweep(sweep: &mut Option<Sweep>, opts: crate::SweepOpts) -> &Sweep {
    if sweep.is_none() {
        *sweep = Some(Sweep::run(opts));
    }
    sweep.as_ref().expect("just filled")
}

/// Renders one figure or table (or `all` of them, in the historical
/// `all_figures` order), running the benchmark sweep only when the
/// selection needs it. Returns an error listing the valid selections
/// for anything unrecognized.
pub fn render(selection: &str, opts: crate::SweepOpts) -> Result<(), String> {
    render_all(&[selection], opts)
}

/// Renders several selections in order, sharing **one** benchmark
/// sweep across all of them (the sweep dominates the cost, so
/// `figures fig3 fig5` must not run it twice). Every selection is
/// validated before any work starts.
pub fn render_all<S: AsRef<str>>(selections: &[S], opts: crate::SweepOpts) -> Result<(), String> {
    for s in selections {
        if !SELECTIONS.contains(&s.as_ref()) {
            return Err(format!(
                "unknown selection {:?}; expected one of {}",
                s.as_ref(),
                SELECTIONS.join(", ")
            ));
        }
    }
    let mut sweep: Option<Sweep> = None;
    for selection in selections {
        match selection.as_ref() {
            "table1" => print_table1(),
            "table2" => print_table2(&opts),
            "table3" => print_table3(),
            "fig2" => print_fig2(),
            "fig3" => print_fig3(ensure_sweep(&mut sweep, opts)),
            "fig4" => print_fig4(ensure_sweep(&mut sweep, opts)),
            "fig5" => print_fig5(ensure_sweep(&mut sweep, opts)),
            "fig6" => print_fig6(ensure_sweep(&mut sweep, opts)),
            "fig7" => print_fig7(ensure_sweep(&mut sweep, opts)),
            "fig8" => print_fig8(ensure_sweep(&mut sweep, opts)),
            "fig9" => print_fig9(ensure_sweep(&mut sweep, opts)),
            "separation" => print_separation(&sweep_artifact_path())?,
            "all" => {
                print_table2(&opts);
                print_table3();
                print_table1();
                print_fig2();
                let sweep = ensure_sweep(&mut sweep, opts);
                print_fig3(sweep);
                print_fig4(sweep);
                print_fig5(sweep);
                print_fig6(sweep);
                print_fig7(sweep);
                print_fig8(sweep);
                print_fig9(sweep);
                print_separation(&sweep_artifact_path())?;
            }
            _ => unreachable!("validated above"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepOpts;
    use tsocc_workloads::Scale;

    /// A tiny two-benchmark sweep so the printers can be smoke-tested.
    fn mini_sweep() -> Sweep {
        let opts = SweepOpts {
            n_cores: 4,
            scale: Scale::Tiny,
            seed: 3,
            threads: 0,
        };
        // Reuse one cheap run per config for every benchmark to keep
        // the test fast; printers only need the keys.
        let per_config: Vec<_> = tsocc_protocols::Protocol::paper_configs()
            .into_iter()
            .map(|p| (p.name(), Sweep::run_one(Benchmark::Fft, p, opts)))
            .collect();
        let mut results = std::collections::BTreeMap::new();
        for bench in Benchmark::ALL {
            for (name, stats) in &per_config {
                results.insert((bench.name().to_string(), name.clone()), stats.clone());
            }
        }
        Sweep { opts, results }
    }

    #[test]
    fn printers_do_not_panic() {
        let sweep = mini_sweep();
        print_fig3(&sweep);
        print_fig4(&sweep);
        print_fig5(&sweep);
        print_fig6(&sweep);
        print_fig7(&sweep);
        print_fig8(&sweep);
        print_fig9(&sweep);
        print_fig2();
        print_table1();
        print_table2(&sweep.opts);
        print_table3();
    }

    #[test]
    fn separation_renders_the_committed_artifact() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
        print_separation(path).expect("committed artifact renders");
        assert!(print_separation("/nonexistent.json").is_err());
    }
}
