//! Shared command-line parsing for the campaign binaries.
//!
//! `conform_campaign`, `fault_campaign` and `model_check` all speak the
//! same core dialect — `--budget-ms N`, `--seed N`, `--out PATH`, and
//! (where protocols are selectable) a repeatable `--protocol NAME`
//! that is mutually exclusive with `--all-configs` — plus bin-specific
//! extras. Each binary declares its flags against a [`Cli`] spec; the
//! spec drives both parsing and a uniform `--help` page, so the three
//! entry points cannot drift apart flag by flag.
//!
//! Parsing is deliberately strict: an unknown flag, a missing value, or
//! a non-numeric argument to a numeric flag aborts with the usage page
//! on stderr and exit status 2 (`--help` prints the same page to
//! stdout and exits 0). There is no partial parse to misread.

use tsocc_protocols::Protocol;

/// One declared flag: its name, an optional value placeholder (`None`
/// marks a boolean switch), and the help line.
struct FlagSpec {
    name: &'static str,
    value: Option<&'static str>,
    /// The value may be omitted (`--check` vs `--check PATH`); the next
    /// argument is consumed as the value only when it does not look
    /// like another flag.
    value_optional: bool,
    help: &'static str,
}

/// A binary's command-line specification. Build with the chainable
/// [`Cli::opt`] / [`Cli::switch`] (plus the shared
/// [`Cli::campaign_flags`] / [`Cli::protocol_flags`] blocks), then call
/// [`Cli::parse`].
pub struct Cli {
    bin: &'static str,
    about: &'static str,
    specs: Vec<FlagSpec>,
}

/// The parsed command line: flag occurrences in order, queried through
/// the typed accessors on this type.
pub struct ParsedArgs {
    bin: &'static str,
    values: Vec<(&'static str, Option<String>)>,
}

impl Cli {
    /// Starts a spec for binary `bin` with the one-line description
    /// shown at the top of `--help`.
    pub fn new(bin: &'static str, about: &'static str) -> Self {
        Cli {
            bin,
            about,
            specs: Vec::new(),
        }
    }

    /// Declares a flag that takes one value (shown as `value` in the
    /// usage page).
    pub fn opt(mut self, name: &'static str, value: &'static str, help: &'static str) -> Self {
        self.specs.push(FlagSpec {
            name,
            value: Some(value),
            value_optional: false,
            help,
        });
        self
    }

    /// Declares a flag whose value may be omitted (`--check` or
    /// `--check PATH`): the following argument is consumed as the value
    /// only when it does not start with `-`.
    pub fn opt_default(
        mut self,
        name: &'static str,
        value: &'static str,
        help: &'static str,
    ) -> Self {
        self.specs.push(FlagSpec {
            name,
            value: Some(value),
            value_optional: true,
            help,
        });
        self
    }

    /// Declares a boolean switch (present or absent, no value).
    pub fn switch(mut self, name: &'static str, help: &'static str) -> Self {
        self.specs.push(FlagSpec {
            name,
            value: None,
            value_optional: false,
            help,
        });
        self
    }

    /// The flag block every campaign shares: wall-clock budget, seed,
    /// and report path.
    pub fn campaign_flags(self) -> Self {
        self.opt("--budget-ms", "N", "wall-clock budget in milliseconds")
            .opt("--seed", "N", "base RNG seed")
            .opt("--out", "PATH", "JSON report output path")
    }

    /// The protocol-selection block: a repeatable `--protocol NAME`
    /// (any `Protocol::from_name` display name) and `--all-configs`.
    pub fn protocol_flags(self) -> Self {
        self.opt(
            "--protocol",
            "NAME",
            "protocol configuration by display name, e.g. MESI-P2-G2 \
             (repeatable; replaces the default list)",
        )
        .switch("--all-configs", "run every sweep configuration instead")
    }

    /// Parses the process arguments. Handles `--help`/`-h` (usage to
    /// stdout, exit 0) and rejects anything not declared (usage to
    /// stderr, exit 2).
    pub fn parse(self) -> ParsedArgs {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.parse_rest(args)
    }

    /// [`Cli::parse`] over a caller-supplied argument list — the entry
    /// point for binaries with subcommands, which strip the leading
    /// subcommand word themselves and hand the remainder here. Same
    /// strictness and `--help` handling as `parse`.
    pub fn parse_rest(self, args: Vec<String>) -> ParsedArgs {
        if args.iter().any(|a| a == "--help" || a == "-h") {
            print!("{}", self.usage());
            std::process::exit(0);
        }
        match self.try_parse(&args) {
            Ok(parsed) => parsed,
            Err(msg) => {
                eprint!("{}: {msg}\n\n{}", self.bin, self.usage());
                std::process::exit(2);
            }
        }
    }

    /// The fallible core of [`Cli::parse`], separated for unit tests.
    fn try_parse(&self, args: &[String]) -> Result<ParsedArgs, String> {
        let mut values = Vec::new();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            let spec = self
                .specs
                .iter()
                .find(|s| s.name == arg.as_str())
                .ok_or_else(|| format!("unknown flag {arg:?}"))?;
            let value = match spec.value {
                Some(_) if spec.value_optional => {
                    // Only a non-flag-looking argument binds as the
                    // value; `--check --fast` leaves `--check` bare.
                    match iter.peek() {
                        Some(next) if !next.starts_with('-') => iter.next().cloned(),
                        _ => None,
                    }
                }
                Some(_) => Some(
                    iter.next()
                        .ok_or_else(|| format!("{} needs an argument", spec.name))?
                        .clone(),
                ),
                None => None,
            };
            values.push((spec.name, value));
        }
        Ok(ParsedArgs {
            bin: self.bin,
            values,
        })
    }

    /// Renders the `--help` page.
    fn usage(&self) -> String {
        let mut page = format!("{} — {}\n\nusage: {}", self.bin, self.about, self.bin);
        for spec in &self.specs {
            match spec.value {
                Some(v) if spec.value_optional => page.push_str(&format!(" [{} [{v}]]", spec.name)),
                Some(v) => page.push_str(&format!(" [{} {v}]", spec.name)),
                None => page.push_str(&format!(" [{}]", spec.name)),
            }
        }
        page.push_str("\n\nflags:\n");
        let width = self
            .specs
            .iter()
            .map(|s| s.name.len() + s.value.map_or(0, |v| v.len() + 3))
            .max()
            .unwrap_or(0);
        for spec in &self.specs {
            let head = match spec.value {
                Some(v) if spec.value_optional => format!("{} [{v}]", spec.name),
                Some(v) => format!("{} {v}", spec.name),
                None => spec.name.to_string(),
            };
            page.push_str(&format!("  {head:width$}  {}\n", spec.help));
        }
        page.push_str("  --help            print this page\n");
        page
    }
}

impl ParsedArgs {
    fn bail(&self, msg: String) -> ! {
        eprintln!("{}: {msg} (see --help)", self.bin);
        std::process::exit(2);
    }

    /// Last occurrence of a value flag, unparsed.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Last occurrence of a numeric flag; aborts on a non-number.
    pub fn u64(&self, name: &str) -> Option<u64> {
        self.str(name).map(|v| {
            v.parse().unwrap_or_else(|_| {
                self.bail(format!("{name} needs a numeric argument, got {v:?}"))
            })
        })
    }

    /// [`ParsedArgs::u64`] narrowed to `usize`.
    pub fn usize(&self, name: &str) -> Option<usize> {
        self.u64(name).map(|v| v as usize)
    }

    /// Whether a boolean switch was given.
    pub fn present(&self, name: &str) -> bool {
        self.values.iter().any(|(n, _)| *n == name)
    }

    /// Every occurrence of a repeatable value flag, in order.
    pub fn all(&self, name: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(n, _)| *n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    /// Resolves the shared protocol-selection block: `--protocol`
    /// occurrences replace `default`, `--all-configs` swaps in
    /// [`Protocol::sweep_configs`], and giving both aborts.
    pub fn protocols(&self, default: Vec<Protocol>) -> Vec<Protocol> {
        let named = self.all("--protocol");
        if self.present("--all-configs") {
            if !named.is_empty() {
                self.bail("--all-configs and --protocol are mutually exclusive".to_string());
            }
            return Protocol::sweep_configs();
        }
        if named.is_empty() {
            return default;
        }
        named
            .into_iter()
            .map(|name| {
                Protocol::from_name(name).unwrap_or_else(|| {
                    self.bail(format!("unknown protocol configuration {name:?}"))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Cli {
        Cli::new("demo", "test spec")
            .campaign_flags()
            .protocol_flags()
            .switch("--fast", "a switch")
            .opt_default("--check", "PATH", "an optional-value flag")
    }

    fn parse(args: &[&str]) -> Result<ParsedArgs, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        spec().try_parse(&owned)
    }

    #[test]
    fn parses_shared_flags() {
        let args = parse(&["--budget-ms", "1500", "--seed", "9", "--fast"]).unwrap();
        assert_eq!(args.u64("--budget-ms"), Some(1500));
        assert_eq!(args.u64("--seed"), Some(9));
        assert!(args.present("--fast"));
        assert_eq!(args.str("--out"), None);
    }

    #[test]
    fn last_occurrence_wins_and_repeats_accumulate() {
        let args = parse(&[
            "--out",
            "a.json",
            "--out",
            "b.json",
            "--protocol",
            "MESI",
            "--protocol",
            "MESI-P2-G2",
        ])
        .unwrap();
        assert_eq!(args.str("--out"), Some("b.json"));
        assert_eq!(args.all("--protocol"), vec!["MESI", "MESI-P2-G2"]);
        let protocols = args.protocols(vec![]);
        assert_eq!(protocols.len(), 2);
        assert_eq!(protocols[0].name(), "MESI");
        assert_eq!(protocols[1].name(), "MESI-P2-G2");
    }

    #[test]
    fn unknown_flags_and_missing_values_are_rejected() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }

    #[test]
    fn optional_value_flags_bind_only_non_flag_arguments() {
        // Bare: flag present, no value.
        let args = parse(&["--check"]).unwrap();
        assert!(args.present("--check"));
        assert_eq!(args.str("--check"), None);
        // With a value.
        let args = parse(&["--check", "a.json"]).unwrap();
        assert_eq!(args.str("--check"), Some("a.json"));
        // Followed by another flag: the flag is not eaten as a value.
        let args = parse(&["--check", "--fast"]).unwrap();
        assert!(args.present("--check") && args.present("--fast"));
        assert_eq!(args.str("--check"), None);
    }

    #[test]
    fn usage_lists_every_flag() {
        let page = spec().usage();
        for flag in [
            "--budget-ms",
            "--seed",
            "--out",
            "--protocol",
            "--all-configs",
            "--fast",
            "--help",
        ] {
            assert!(page.contains(flag), "usage page is missing {flag}:\n{page}");
        }
    }
}
