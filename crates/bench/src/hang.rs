//! JSON serialization (and deserialization, for round-trip tests) of
//! [`tsocc::HangReport`] — the structured deadlock/timeout diagnosis a
//! fault campaign uploads as a CI artifact.
//!
//! Schema `tsocc-hang-report/v1`: every field of the report appears
//! verbatim; line addresses serialize as raw line numbers (u64).

use tsocc::hang::{HangReport, L1Hang, L2Hang, NetHang, WaitEdge};
use tsocc_coherence::{BusyProbe, CtrlProbe};
use tsocc_mem::LineAddr;

use crate::json::{self, Value};

fn lines_json(lines: &[LineAddr]) -> String {
    json::array(lines.iter().map(|l| l.as_u64().to_string()))
}

fn probe_json(p: &CtrlProbe) -> String {
    let busy = p.busy.iter().map(|b| {
        json::Object::new()
            .u64("line", b.line.as_u64())
            .raw(
                "need_unblock",
                if b.need_unblock { "true" } else { "false" },
            )
            .raw(
                "need_owner_data",
                if b.need_owner_data { "true" } else { "false" },
            )
            .u64("queued", b.queued as u64)
            .build()
    });
    json::Object::new()
        .raw("mshr_lines", lines_json(&p.mshr_lines))
        .raw("wb_lines", lines_json(&p.wb_lines))
        .raw("busy", json::array(busy))
        .u64("replay", p.replay as u64)
        .u64("outbox", p.outbox as u64)
        .build()
}

fn edge_json(e: &WaitEdge) -> String {
    json::Object::new()
        .str("from", &e.from)
        .str("to", &e.to)
        .u64("line", e.line.as_u64())
        .build()
}

/// Serializes a hang report as a deterministic JSON document.
pub fn hang_report_json(r: &HangReport) -> String {
    let l1s = r.l1s.iter().map(|h| {
        json::Object::new()
            .u64("core", h.core as u64)
            .raw("probe", probe_json(&h.probe))
            .build()
    });
    let l2s = r.l2s.iter().map(|h| {
        json::Object::new()
            .u64("tile", h.tile as u64)
            .raw("probe", probe_json(&h.probe))
            .build()
    });
    let in_flight = r.in_flight.iter().map(|m| {
        let o = json::Object::new()
            .u64("at", m.at)
            .u64("dst", m.dst as u64)
            .str("kind", m.kind);
        match m.line {
            Some(l) => o.u64("line", l.as_u64()),
            None => o.raw("line", "null"),
        }
        .build()
    });
    json::Object::new()
        .str("schema", "tsocc-hang-report/v1")
        .u64("at_cycle", r.at_cycle)
        .u64("cores_unfinished", r.cores_unfinished as u64)
        .u64("busy_controllers", r.busy_controllers as u64)
        .str("summary", &r.summary())
        .raw("l1s", json::array(l1s))
        .raw("l2s", json::array(l2s))
        .raw("in_flight", json::array(in_flight))
        .raw("edges", json::array(r.edges.iter().map(edge_json)))
        .raw("cycle", json::array(r.cycle.iter().map(edge_json)))
        .build()
}

fn usize_field(v: &Value, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn lines_field(v: &Value, key: &str) -> Result<Vec<LineAddr>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))?
        .iter()
        .map(|l| {
            l.as_u64()
                .map(LineAddr::new)
                .ok_or_else(|| format!("non-numeric line in {key:?}"))
        })
        .collect()
}

fn parse_probe(v: &Value) -> Result<CtrlProbe, String> {
    let busy = v
        .get("busy")
        .and_then(Value::as_arr)
        .ok_or("missing busy array")?
        .iter()
        .map(|b| {
            Ok(BusyProbe {
                line: b
                    .get("line")
                    .and_then(Value::as_u64)
                    .map(LineAddr::new)
                    .ok_or("busy entry missing line")?,
                need_unblock: b.get("need_unblock") == Some(&Value::Bool(true)),
                need_owner_data: b.get("need_owner_data") == Some(&Value::Bool(true)),
                queued: usize_field(b, "queued")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CtrlProbe {
        mshr_lines: lines_field(v, "mshr_lines")?,
        wb_lines: lines_field(v, "wb_lines")?,
        busy,
        replay: usize_field(v, "replay")?,
        outbox: usize_field(v, "outbox")?,
    })
}

fn parse_edges(v: &Value, key: &str) -> Result<Vec<WaitEdge>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("missing array field {key:?}"))?
        .iter()
        .map(|e| {
            Ok(WaitEdge {
                from: e
                    .get("from")
                    .and_then(Value::as_str)
                    .ok_or("edge missing from")?
                    .to_string(),
                to: e
                    .get("to")
                    .and_then(Value::as_str)
                    .ok_or("edge missing to")?
                    .to_string(),
                line: e
                    .get("line")
                    .and_then(Value::as_u64)
                    .map(LineAddr::new)
                    .ok_or("edge missing line")?,
            })
        })
        .collect()
}

/// Parses a `tsocc-hang-report/v1` document back into a
/// [`HangReport`]. The inverse of [`hang_report_json`]; round-trip
/// equality is what the fault-injection tests assert.
///
/// # Errors
///
/// A human-readable description of the first malformed field.
pub fn parse_hang_report(src: &str) -> Result<HangReport, String> {
    let v = json::parse(src)?;
    if v.get("schema").and_then(Value::as_str) != Some("tsocc-hang-report/v1") {
        return Err("not a tsocc-hang-report/v1 document".to_string());
    }
    let l1s = v
        .get("l1s")
        .and_then(Value::as_arr)
        .ok_or("missing l1s")?
        .iter()
        .map(|h| {
            Ok(L1Hang {
                core: usize_field(h, "core")?,
                probe: parse_probe(h.get("probe").ok_or("l1 missing probe")?)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let l2s = v
        .get("l2s")
        .and_then(Value::as_arr)
        .ok_or("missing l2s")?
        .iter()
        .map(|h| {
            Ok(L2Hang {
                tile: usize_field(h, "tile")?,
                probe: parse_probe(h.get("probe").ok_or("l2 missing probe")?)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    // `kind` is `&'static str` on the wire type; map parsed kinds back
    // onto the small closed set the simulator emits, falling back to a
    // generic label for forward compatibility.
    const KINDS: [&str; 20] = [
        "GetS",
        "GetX",
        "PutE",
        "PutM",
        "FwdGetS",
        "FwdGetX",
        "Inv",
        "Recall",
        "Data",
        "InvAck",
        "InvAckToL2",
        "DowngradeData",
        "TransferAck",
        "RecallData",
        "Unblock",
        "PutAck",
        "MemRead",
        "MemWrite",
        "MemData",
        "TsReset",
    ];
    let in_flight = v
        .get("in_flight")
        .and_then(Value::as_arr)
        .ok_or("missing in_flight")?
        .iter()
        .map(|m| {
            let kind = m
                .get("kind")
                .and_then(Value::as_str)
                .ok_or("in_flight missing kind")?;
            Ok(NetHang {
                at: m
                    .get("at")
                    .and_then(Value::as_u64)
                    .ok_or("in_flight missing at")?,
                dst: usize_field(m, "dst")?,
                kind: KINDS
                    .iter()
                    .find(|k| **k == kind)
                    .copied()
                    .unwrap_or("message"),
                line: m.get("line").and_then(Value::as_u64).map(LineAddr::new),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(HangReport {
        at_cycle: v
            .get("at_cycle")
            .and_then(Value::as_u64)
            .ok_or("missing at_cycle")?,
        cores_unfinished: usize_field(&v, "cores_unfinished")?,
        busy_controllers: usize_field(&v, "busy_controllers")?,
        l1s,
        l2s,
        in_flight,
        edges: parse_edges(&v, "edges")?,
        cycle: parse_edges(&v, "cycle")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HangReport {
        HangReport {
            at_cycle: 1234,
            cores_unfinished: 1,
            busy_controllers: 2,
            l1s: vec![L1Hang {
                core: 1,
                probe: CtrlProbe {
                    mshr_lines: vec![LineAddr::new(0x80)],
                    wb_lines: vec![LineAddr::new(0x81)],
                    busy: vec![],
                    replay: 0,
                    outbox: 1,
                },
            }],
            l2s: vec![L2Hang {
                tile: 0,
                probe: CtrlProbe {
                    mshr_lines: vec![],
                    wb_lines: vec![],
                    busy: vec![BusyProbe {
                        line: LineAddr::new(0x80),
                        need_unblock: true,
                        need_owner_data: false,
                        queued: 3,
                    }],
                    replay: 2,
                    outbox: 0,
                },
            }],
            in_flight: vec![NetHang {
                at: 1240,
                dst: 3,
                kind: "Data",
                line: Some(LineAddr::new(0x99)),
            }],
            edges: vec![WaitEdge {
                from: "L1#1".to_string(),
                to: "L2#0".to_string(),
                line: LineAddr::new(0x80),
            }],
            cycle: vec![],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let doc = hang_report_json(&r);
        let back = parse_hang_report(&doc).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn parser_rejects_other_schemas() {
        assert!(parse_hang_report("{\"schema\": \"something-else\"}").is_err());
        assert!(parse_hang_report("not json").is_err());
    }
}
