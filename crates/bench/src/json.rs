//! A tiny hand-rolled JSON writer *and reader* (no third-party deps are
//! available in the build environment).
//!
//! Only what the sweep and conformance artifacts need: objects, arrays,
//! strings, integers and floats. Output is deterministic — fields
//! appear exactly in insertion order — which keeps `BENCH_sweep.json`
//! diffable across runs. The reader ([`parse`]) exists so CI can load
//! the *committed* artifact and fail the build when regenerated
//! simulated metrics drift; numbers are kept as raw tokens until asked
//! for, so 64-bit seeds survive without a float round-trip.

/// Escapes a string for inclusion in a JSON document (quotes included).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An incrementally built JSON object.
#[derive(Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Adds a pre-serialized JSON value under `key`.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let v = string(value);
        self.raw(key, v)
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a float field (non-finite values serialize as `null`).
    pub fn f64(self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() {
            format!("{value:.6}")
        } else {
            "null".to_string()
        };
        self.raw(key, v)
    }

    /// Serializes the object.
    pub fn build(&self) -> String {
        let inner: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}: {}", string(k), v))
            .collect();
        format!("{{{}}}", inner.join(", "))
    }
}

/// Serializes an array of pre-serialized JSON values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let inner: Vec<String> = items.into_iter().collect();
    format!("[{}]", inner.join(", "))
}

/// A parsed JSON value.
///
/// Numbers keep their raw source token ([`Value::Num`]) and only
/// convert on access: `as_u64` must not lose precision on 64-bit seeds,
/// which a mandatory `f64` representation would.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, as its raw source token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a numeric token that
    /// parses as one (exact — no float round-trip).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry the byte offset they occurred
/// at.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            if *pos == start {
                return Err(format!("unexpected character at byte {start}"));
            }
            let raw = std::str::from_utf8(&bytes[start..*pos])
                .unwrap()
                .to_string();
            raw.parse::<f64>()
                .map_err(|_| format!("bad number {raw:?} at byte {start}"))?;
            Ok(Value::Num(raw))
        }
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit} at byte {}", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences arrive
                // from our own writer unescaped).
                let s = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let obj = Object::new()
            .str("name", "a \"quoted\"\nline")
            .u64("count", 3)
            .f64("ratio", 0.5)
            .raw("list", array(["1".to_string(), "2".to_string()]))
            .build();
        assert_eq!(
            obj,
            r#"{"name": "a \"quoted\"\nline", "count": 3, "ratio": 0.500000, "list": [1, 2]}"#
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert!(Object::new().f64("x", f64::NAN).build().contains("null"));
    }

    #[test]
    fn parse_round_trips_the_writer() {
        let doc = Object::new()
            .str("name", "a \"quoted\"\nline")
            .u64("seed", 16051688110891259512) // > 2^53: must stay exact
            .f64("ratio", 0.5)
            .raw("list", array(["1".to_string(), "true".to_string()]))
            .raw("none", "null")
            .build();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"quoted\"\nline"));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(16051688110891259512));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(0.5));
        let list = v.get("list").unwrap().as_arr().unwrap();
        assert_eq!(list[0].as_u64(), Some(1));
        assert_eq!(list[1], Value::Bool(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "12 34", "{\"a\":}", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(parse(" {\"a\": [ ] } ").is_ok());
    }

    #[test]
    fn parse_committed_artifact_shape() {
        // The committed BENCH_sweep.json must stay loadable by this
        // parser — CI's drift check depends on it.
        let doc = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_sweep.json"
        ))
        .expect("committed artifact readable");
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("tsocc-sweep-baseline/v1")
        );
        let points = v.get("points").and_then(Value::as_arr).unwrap();
        assert!(points.len() >= 8);
        assert!(points[0].get("cycles").and_then(Value::as_u64).is_some());
    }
}
