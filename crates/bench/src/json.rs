//! A tiny hand-rolled JSON writer (no third-party deps are available in
//! the build environment).
//!
//! Only what the sweep artifacts need: objects, arrays, strings,
//! integers and floats. Output is deterministic — fields appear exactly
//! in insertion order — which keeps `BENCH_sweep.json` diffable across
//! runs.

/// Escapes a string for inclusion in a JSON document (quotes included).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An incrementally built JSON object.
#[derive(Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Adds a pre-serialized JSON value under `key`.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let v = string(value);
        self.raw(key, v)
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a float field (non-finite values serialize as `null`).
    pub fn f64(self, key: &str, value: f64) -> Self {
        let v = if value.is_finite() {
            format!("{value:.6}")
        } else {
            "null".to_string()
        };
        self.raw(key, v)
    }

    /// Serializes the object.
    pub fn build(&self) -> String {
        let inner: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}: {}", string(k), v))
            .collect();
        format!("{{{}}}", inner.join(", "))
    }
}

/// Serializes an array of pre-serialized JSON values.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let inner: Vec<String> = items.into_iter().collect();
    format!("[{}]", inner.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let obj = Object::new()
            .str("name", "a \"quoted\"\nline")
            .u64("count", 3)
            .f64("ratio", 0.5)
            .raw("list", array(["1".to_string(), "2".to_string()]))
            .build();
        assert_eq!(
            obj,
            r#"{"name": "a \"quoted\"\nline", "count": 3, "ratio": 0.500000, "list": [1, 2]}"#
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert!(Object::new().f64("x", f64::NAN).build().contains("null"));
    }
}
