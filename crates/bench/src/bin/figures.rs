//! Regenerates any figure or table of the paper (the former
//! `fig2`…`fig9` / `table1`–`table3` binaries, collapsed into one
//! subcommand interface):
//!
//! ```text
//! figures <table1|table2|table3|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|all>...
//! ```
//!
//! Multiple selections render in order, sharing one benchmark sweep.
//! `figures all` prints everything — the `all_figures` binary remains
//! as an alias for it.
//! Env: TSOCC_CORES, TSOCC_SCALE (tiny/small/full), TSOCC_SEED.

fn main() {
    let opts = tsocc_bench::SweepOpts::from_env();
    let selections: Vec<String> = std::env::args().skip(1).collect();
    if selections.is_empty() {
        eprintln!(
            "usage: figures <selection>...\nselections: {}",
            tsocc_bench::figures::SELECTIONS.join(", ")
        );
        std::process::exit(2);
    }
    if let Err(e) = tsocc_bench::figures::render_all(&selections, opts) {
        eprintln!("{e}");
        std::process::exit(2);
    }
}
