//! Regenerates the paper's Table 1 (TSO-CC storage breakdown).
fn main() {
    tsocc_bench::figures::print_table1();
}
