//! The conformance campaign entry point (§4.3 grown into CI): runs a
//! budgeted randomized N-thread litmus campaign against the operational
//! memory-model oracle and writes a JSON report.
//!
//! ```text
//! conform_campaign [--budget-ms N] [--seed N] [--threads N]
//!                  [--min-programs N] [--max-programs N]
//!                  [--cores N] [--iters N] [--oracle tso|sc]
//!                  [--all-configs] [--protocol NAME]... [--out PATH]
//! ```
//!
//! Defaults: 2000 ms budget, ≥ 500 programs, 3 threads per program,
//! MESI + TSO-CC-realistic(12,3), TSO oracle, `CONFORM_report.json`.
//! `--protocol` (repeatable, any `Protocol::from_name` display name,
//! e.g. `MESI-P2-G2`) replaces the default protocol list; the first use
//! clears it. `--protocol` and `--all-configs` are mutually exclusive.
//! `--oracle sc` deliberately strengthens the oracle to sequential
//! consistency — a TSO machine then *must* produce violations, which
//! demonstrates (and in CI smoke-tests) the catcher + shrinker end to
//! end.
//!
//! Exit status: nonzero iff violations were found under the TSO oracle
//! (under `--oracle sc` violations are the expected outcome and the
//! exit flips: zero iff at least one violation was caught and shrunk).

use std::time::Duration;

use tsocc_bench::json;
use tsocc_conform::{litmus_text, op_count, run_campaign, CampaignOpts, GenConfig};
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::tso_model::ModelMode;

fn parse_args() -> (CampaignOpts, String) {
    let mut opts = CampaignOpts {
        budget: Duration::from_millis(2000),
        min_programs: 500,
        protocols: vec![
            Protocol::Mesi,
            Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        ],
        gen: GenConfig {
            threads: 3,
            ..GenConfig::default()
        },
        ..Default::default()
    };
    let mut out = "CONFORM_report.json".to_string();
    let mut explicit_protocols = false;
    let mut all_configs = false;
    let mut args = std::env::args().skip(1);
    let num = |args: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{flag} needs a numeric argument"))
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--budget-ms" => opts.budget = Duration::from_millis(num(&mut args, "--budget-ms")),
            "--seed" => opts.seed = num(&mut args, "--seed"),
            "--threads" => opts.workers = num(&mut args, "--threads") as usize,
            "--min-programs" => opts.min_programs = num(&mut args, "--min-programs") as usize,
            "--max-programs" => opts.max_programs = num(&mut args, "--max-programs") as usize,
            "--cores" => opts.gen.threads = num(&mut args, "--cores") as usize,
            "--iters" => opts.iters_per_program = num(&mut args, "--iters"),
            "--oracle" => {
                opts.oracle = match args.next().as_deref() {
                    Some("tso") => ModelMode::Tso,
                    Some("sc") => ModelMode::Sc,
                    other => panic!("--oracle must be tso or sc, got {other:?}"),
                }
            }
            "--all-configs" => {
                assert!(
                    !explicit_protocols,
                    "--all-configs and --protocol are mutually exclusive"
                );
                all_configs = true;
                opts.protocols = Protocol::sweep_configs();
            }
            "--protocol" => {
                assert!(
                    !all_configs,
                    "--all-configs and --protocol are mutually exclusive"
                );
                let name = args.next().expect("--protocol needs a configuration name");
                let p = Protocol::from_name(&name)
                    .unwrap_or_else(|| panic!("unknown protocol configuration {name:?}"));
                if !explicit_protocols {
                    opts.protocols.clear();
                    explicit_protocols = true;
                }
                opts.protocols.push(p);
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown flag {other:?}"),
        }
    }
    (opts, out)
}

fn main() {
    let (opts, out_path) = parse_args();
    let report = run_campaign(&opts);
    eprintln!("{}", report.summary());

    let histogram = |h: &[u64]| json::array(h.iter().map(u64::to_string));
    let violations = report.violations.iter().map(|v| {
        let outcome = match &v.outcome {
            Some(o) => json::array(o.iter().map(u64::to_string)),
            None => "null".to_string(),
        };
        json::Object::new()
            .u64("program_index", v.program_index as u64)
            .u64("program_seed", v.program_seed)
            .str("protocol", &v.protocol)
            .raw("outcome", outcome)
            .str("error", v.error.as_deref().unwrap_or(""))
            .u64("original_ops", op_count(&v.program) as u64)
            .u64("shrunk_ops", op_count(&v.shrunk) as u64)
            .str("shrunk_litmus", &litmus_text(&v.shrunk))
            .build()
    });
    let doc = json::Object::new()
        .str("schema", "tsocc-conform-campaign/v1")
        .u64("seed", opts.seed)
        .u64("budget_ms", opts.budget.as_millis() as u64)
        .str(
            "oracle",
            match opts.oracle {
                ModelMode::Tso => "tso",
                ModelMode::Sc => "sc",
            },
        )
        .u64("gen_threads", opts.gen.threads as u64)
        .u64("gen_max_ops", opts.gen.max_ops as u64)
        .u64("gen_locations", opts.gen.locations as u64)
        .raw(
            "protocols",
            json::array(report.protocols.iter().map(|p| json::string(p))),
        )
        .u64("programs_checked", report.programs_checked as u64)
        .u64("programs_skipped_too_large", report.programs_skipped as u64)
        .u64("sim_runs", report.sim_runs)
        .u64("model_states_total", report.states_total)
        .u64("max_state_space", report.max_state_space as u64)
        .raw(
            "state_space_histogram_log2",
            histogram(&report.state_space_histogram),
        )
        .raw(
            "outcome_coverage_histogram_deciles",
            histogram(&report.coverage_histogram),
        )
        .u64("allowed_outcomes_total", report.allowed_outcomes_total)
        .u64("observed_outcomes_total", report.observed_outcomes_total)
        .u64("violations_total", report.violations_total)
        .raw("violations", json::array(violations))
        .f64("elapsed_seconds", report.elapsed.as_secs_f64())
        .build();
    std::fs::write(&out_path, doc + "\n").expect("write campaign report");
    eprintln!("wrote {out_path}");

    let failed = match opts.oracle {
        // Real oracle: any violation is a conformance bug.
        ModelMode::Tso => report.violations_total > 0,
        // Injected fault: the campaign must catch it and shrink small.
        ModelMode::Sc => !report.violations.iter().any(|v| op_count(&v.shrunk) <= 6),
    };
    if failed {
        std::process::exit(1);
    }
}
