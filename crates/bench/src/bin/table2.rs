//! Regenerates the paper's Table 2 (system parameters).
fn main() {
    let opts = tsocc_bench::SweepOpts::from_env();
    tsocc_bench::figures::print_table2(&opts);
}
