//! Ablation sweeps over TSO-CC's design parameters (§4.2's
//! design-space exploration, beyond the seven headline configurations):
//!
//! - `Bmaxacc`: the Shared-line access budget (the paper fixed 4 bits =
//!   16 hits after its own exploration),
//! - `Bts`: timestamp width, small enough here to force resets,
//! - write-group size, trading reset frequency against acquire-detection
//!   precision,
//! - decay threshold for the Shared→SharedRO transition.
//!
//! ```text
//! ablation [--cores N] [--seed N] [--json PATH]
//! ```
//!
//! Defaults: 16 cores, seed 7 (the same flag vocabulary as
//! `sweep_baseline`/`conform_campaign`; the old `TSOCC_CORES` /
//! `TSOCC_SEED` env knobs are gone). `--json` additionally writes every
//! row as a machine-readable `tsocc-ablation/v1` report. Flags parse
//! through the shared [`tsocc_bench::cli`] surface: `--help` documents
//! them and anything undeclared exits 2.

use tsocc::SystemConfig;
use tsocc_bench::cli::Cli;
use tsocc_bench::json;
use tsocc_proto::{TsParams, TsoCcConfig};
use tsocc_protocols::Protocol;
use tsocc_workloads::{run_workload, Benchmark, Scale};

struct Args {
    cores: usize,
    seed: u64,
    json_out: Option<String>,
}

fn parse_args() -> Args {
    let args = Cli::new(
        "ablation",
        "ablation sweeps over TSO-CC's design parameters",
    )
    .opt("--cores", "N", "core count")
    .opt("--seed", "N", "base simulation seed")
    .opt(
        "--json",
        "PATH",
        "also write a tsocc-ablation/v1 JSON report",
    )
    .parse();
    Args {
        cores: args.usize("--cores").unwrap_or(16),
        seed: args.u64("--seed").unwrap_or(7),
        json_out: args.str("--json").map(str::to_string),
    }
}

fn run(protocol: Protocol, n_cores: usize, bench: Benchmark, seed: u64) -> tsocc::RunStats {
    let w = bench.build(n_cores, Scale::Small, seed);
    let mut cfg = SystemConfig::builder()
        .cores(n_cores)
        .protocol(protocol)
        .build()
        .expect("valid config");
    cfg.seed = seed;
    run_workload(&w, cfg).expect("terminates")
}

/// One ablation row, printed as it is produced and collected for the
/// optional JSON report.
fn row(
    rows: &mut Vec<String>,
    ablation: &str,
    bench: &str,
    param: &str,
    value: &str,
    s: &tsocc::RunStats,
) {
    rows.push(
        json::Object::new()
            .str("ablation", ablation)
            .str("bench", bench)
            .str("param", param)
            .str("value", value)
            .u64("cycles", s.cycles)
            .u64("flits", s.total_flits())
            .u64("read_miss_shared", s.l1.read_miss_shared.get())
            .u64("read_hit_sharedro", s.l1.read_hit_sharedro.get())
            .u64("ts_resets", s.l1.ts_resets.get())
            .u64("selfinv_events", s.l1.selfinv_total())
            .u64("decays", s.l2.decays.get())
            .build(),
    );
}

fn main() {
    let args = parse_args();
    let (n, seed) = (args.cores, args.seed);
    let mut rows: Vec<String> = Vec::new();

    println!("== Ablation 1: Shared-line access budget (max_acc), x264 wavefront ==");
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "max_acc", "cycles", "flits", "rd-miss(S)"
    );
    for max_acc in [0u64, 1, 4, 16, 64, 256] {
        let cfg = TsoCcConfig {
            max_acc,
            ..TsoCcConfig::realistic(12, 3)
        };
        let s = run(Protocol::TsoCc(cfg), n, Benchmark::X264, seed);
        println!(
            "{:<12} {:>10} {:>12} {:>14}",
            max_acc,
            s.cycles,
            s.total_flits(),
            s.l1.read_miss_shared.get()
        );
        row(
            &mut rows,
            "max_acc",
            "x264",
            "max_acc",
            &max_acc.to_string(),
            &s,
        );
    }

    println!("\n== Ablation 2: timestamp width (forces resets), canneal ==");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12}",
        "ts_bits", "cycles", "flits", "resets", "selfinv"
    );
    for ts_bits in [4u32, 6, 9, 12, 31] {
        let cfg = TsoCcConfig {
            write_ts: Some(TsParams {
                ts_bits,
                write_group_bits: 0,
            }),
            ..TsoCcConfig::realistic(12, 3)
        };
        let s = run(Protocol::TsoCc(cfg), n, Benchmark::Canneal, seed);
        println!(
            "{:<12} {:>10} {:>12} {:>10} {:>12}",
            ts_bits,
            s.cycles,
            s.total_flits(),
            s.l1.ts_resets.get(),
            s.l1.selfinv_total()
        );
        row(
            &mut rows,
            "ts_bits",
            "canneal",
            "ts_bits",
            &ts_bits.to_string(),
            &s,
        );
    }

    println!("\n== Ablation 3: write-group size at fixed 6-bit timestamps, fft ==");
    println!(
        "{:<12} {:>10} {:>10} {:>12}",
        "group", "cycles", "resets", "selfinv"
    );
    for wg_bits in [0u32, 1, 3, 5] {
        let cfg = TsoCcConfig {
            write_ts: Some(TsParams {
                ts_bits: 6,
                write_group_bits: wg_bits,
            }),
            ..TsoCcConfig::realistic(12, 3)
        };
        let s = run(Protocol::TsoCc(cfg), n, Benchmark::Fft, seed);
        println!(
            "{:<12} {:>10} {:>10} {:>12}",
            1u64 << wg_bits,
            s.cycles,
            s.l1.ts_resets.get(),
            s.l1.selfinv_total()
        );
        row(
            &mut rows,
            "write_group",
            "fft",
            "group_size",
            &(1u64 << wg_bits).to_string(),
            &s,
        );
    }

    println!("\n== Ablation 4: Shared->SharedRO decay threshold (write-once/read-many kernel) ==");
    println!(
        "{:<12} {:>10} {:>10} {:>16}",
        "decay", "cycles", "decays", "SRO read hits"
    );
    for decay in [None, Some(16u64), Some(64), Some(256), Some(4096)] {
        let cfg = TsoCcConfig {
            decay_writes: decay,
            ..TsoCcConfig::realistic(12, 0)
        };
        // Small caches force evictions, which is how the L2's last-seen
        // timestamp table learns that writers have moved on (decay is
        // driven by that table, §3.4).
        let sys_cfg = SystemConfig::builder()
            .small()
            .cores(2)
            .protocol(Protocol::TsoCc(cfg))
            .build()
            .expect("valid config");
        let s = run_workload(&decay_workload(), sys_cfg).expect("terminates");
        let label = decay.map_or("off".to_string(), |d| d.to_string());
        println!(
            "{:<12} {:>10} {:>10} {:>16}",
            label,
            s.cycles,
            s.l2.decays.get(),
            s.l1.read_hit_sharedro.get()
        );
        row(
            &mut rows,
            "decay",
            "decay-synthetic",
            "decay_writes",
            &label,
            &s,
        );
    }

    if let Some(path) = args.json_out {
        let doc = json::Object::new()
            .str("schema", "tsocc-ablation/v1")
            .u64("cores", n as u64)
            .u64("seed", seed)
            .u64("rows_total", rows.len() as u64)
            .raw("rows", json::array(rows))
            .build();
        std::fs::write(&path, doc + "\n").expect("write ablation report");
        eprintln!("wrote {path}");
    }
}

/// The decay pattern: one line written once, then read repeatedly while
/// the writer streams writes elsewhere (advancing its timestamp past
/// the line's by more than the decay threshold).
fn decay_workload() -> tsocc_workloads::Workload {
    use tsocc_isa::{Asm, Reg};
    let hot = 0x4000u64;
    let stop = 0x4040u64;
    let mut writer = Asm::new();
    writer.movi(Reg::R1, 7);
    writer.store_abs(Reg::R1, hot);
    // Stream of private writes: conflict misses in the tiny L1 push
    // PutMs (and thus fresh timestamps) to the L2.
    writer.movi(Reg::R2, 0);
    let top = writer.new_label();
    writer.bind(top);
    writer.remi(Reg::R17, Reg::R2, 8);
    writer.muli(Reg::R17, Reg::R17, 0x200);
    writer.store(Reg::R2, Reg::R17, 0x10000);
    writer.addi(Reg::R2, Reg::R2, 1);
    writer.blt_imm(Reg::R2, 600, top);
    writer.movi(Reg::R3, 1);
    writer.store_abs(Reg::R3, stop);
    writer.halt();
    // Reader: hammer the hot line; its Shared copy keeps expiring until
    // the L2 decays the line to SharedRO, after which hits are free.
    let mut reader = Asm::new();
    let rtop = reader.new_label();
    reader.bind(rtop);
    reader.load_abs(Reg::R1, hot);
    reader.load_abs(Reg::R2, stop);
    reader.beq(Reg::R2, Reg::R0, rtop);
    reader.halt();
    tsocc_workloads::Workload {
        name: "decay-synthetic".to_string(),
        programs: vec![writer.finish(), reader.finish()],
        init: Vec::new(),
    }
}
