//! Ablation sweeps over TSO-CC's design parameters (§4.2's
//! design-space exploration, beyond the seven headline configurations):
//!
//! - `Bmaxacc`: the Shared-line access budget (the paper fixed 4 bits =
//!   16 hits after its own exploration),
//! - `Bts`: timestamp width, small enough here to force resets,
//! - write-group size, trading reset frequency against acquire-detection
//!   precision,
//! - decay threshold for the Shared→SharedRO transition.
//!
//! Env: TSOCC_CORES (default 16), TSOCC_SEED.

use tsocc::SystemConfig;
use tsocc_proto::{TsParams, TsoCcConfig};
use tsocc_protocols::Protocol;
use tsocc_workloads::{run_workload, Benchmark, Scale};

fn run(protocol: Protocol, n_cores: usize, bench: Benchmark, seed: u64) -> tsocc::RunStats {
    let w = bench.build(n_cores, Scale::Small, seed);
    let mut cfg = SystemConfig::table2_with_cores(protocol, n_cores);
    cfg.seed = seed;
    run_workload(&w, cfg).expect("terminates")
}

fn main() {
    let n: usize = std::env::var("TSOCC_CORES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let seed: u64 = std::env::var("TSOCC_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);

    println!("== Ablation 1: Shared-line access budget (max_acc), x264 wavefront ==");
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "max_acc", "cycles", "flits", "rd-miss(S)"
    );
    for max_acc in [0u64, 1, 4, 16, 64, 256] {
        let cfg = TsoCcConfig {
            max_acc,
            ..TsoCcConfig::realistic(12, 3)
        };
        let s = run(Protocol::TsoCc(cfg), n, Benchmark::X264, seed);
        println!(
            "{:<12} {:>10} {:>12} {:>14}",
            max_acc,
            s.cycles,
            s.total_flits(),
            s.l1.read_miss_shared.get()
        );
    }

    println!("\n== Ablation 2: timestamp width (forces resets), canneal ==");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12}",
        "ts_bits", "cycles", "flits", "resets", "selfinv"
    );
    for ts_bits in [4u32, 6, 9, 12, 31] {
        let cfg = TsoCcConfig {
            write_ts: Some(TsParams {
                ts_bits,
                write_group_bits: 0,
            }),
            ..TsoCcConfig::realistic(12, 3)
        };
        let s = run(Protocol::TsoCc(cfg), n, Benchmark::Canneal, seed);
        println!(
            "{:<12} {:>10} {:>12} {:>10} {:>12}",
            ts_bits,
            s.cycles,
            s.total_flits(),
            s.l1.ts_resets.get(),
            s.l1.selfinv_total()
        );
    }

    println!("\n== Ablation 3: write-group size at fixed 6-bit timestamps, fft ==");
    println!(
        "{:<12} {:>10} {:>10} {:>12}",
        "group", "cycles", "resets", "selfinv"
    );
    for wg_bits in [0u32, 1, 3, 5] {
        let cfg = TsoCcConfig {
            write_ts: Some(TsParams {
                ts_bits: 6,
                write_group_bits: wg_bits,
            }),
            ..TsoCcConfig::realistic(12, 3)
        };
        let s = run(Protocol::TsoCc(cfg), n, Benchmark::Fft, seed);
        println!(
            "{:<12} {:>10} {:>10} {:>12}",
            1u64 << wg_bits,
            s.cycles,
            s.l1.ts_resets.get(),
            s.l1.selfinv_total()
        );
    }

    println!("\n== Ablation 4: Shared->SharedRO decay threshold (write-once/read-many kernel) ==");
    println!(
        "{:<12} {:>10} {:>10} {:>16}",
        "decay", "cycles", "decays", "SRO read hits"
    );
    for decay in [None, Some(16u64), Some(64), Some(256), Some(4096)] {
        let cfg = TsoCcConfig {
            decay_writes: decay,
            ..TsoCcConfig::realistic(12, 0)
        };
        // Small caches force evictions, which is how the L2's last-seen
        // timestamp table learns that writers have moved on (decay is
        // driven by that table, §3.4).
        let sys_cfg = SystemConfig::small_test(2, Protocol::TsoCc(cfg));
        let s = run_workload(&decay_workload(), sys_cfg).expect("terminates");
        println!(
            "{:<12} {:>10} {:>10} {:>16}",
            decay.map_or("off".to_string(), |d| d.to_string()),
            s.cycles,
            s.l2.decays.get(),
            s.l1.read_hit_sharedro.get()
        );
    }
}

/// The decay pattern: one line written once, then read repeatedly while
/// the writer streams writes elsewhere (advancing its timestamp past
/// the line's by more than the decay threshold).
fn decay_workload() -> tsocc_workloads::Workload {
    use tsocc_isa::{Asm, Reg};
    let hot = 0x4000u64;
    let stop = 0x4040u64;
    let mut writer = Asm::new();
    writer.movi(Reg::R1, 7);
    writer.store_abs(Reg::R1, hot);
    // Stream of private writes: conflict misses in the tiny L1 push
    // PutMs (and thus fresh timestamps) to the L2.
    writer.movi(Reg::R2, 0);
    let top = writer.new_label();
    writer.bind(top);
    writer.remi(Reg::R17, Reg::R2, 8);
    writer.muli(Reg::R17, Reg::R17, 0x200);
    writer.store(Reg::R2, Reg::R17, 0x10000);
    writer.addi(Reg::R2, Reg::R2, 1);
    writer.blt_imm(Reg::R2, 600, top);
    writer.movi(Reg::R3, 1);
    writer.store_abs(Reg::R3, stop);
    writer.halt();
    // Reader: hammer the hot line; its Shared copy keeps expiring until
    // the L2 decays the line to SharedRO, after which hits are free.
    let mut reader = Asm::new();
    let rtop = reader.new_label();
    reader.bind(rtop);
    reader.load_abs(Reg::R1, hot);
    reader.load_abs(Reg::R2, stop);
    reader.beq(Reg::R2, Reg::R0, rtop);
    reader.halt();
    tsocc_workloads::Workload {
        name: "decay-synthetic".to_string(),
        programs: vec![writer.finish(), reader.finish()],
        init: Vec::new(),
    }
}
