//! Alias for `figures all`: runs the full benchmark sweep once and
//! regenerates every figure and table (the source of EXPERIMENTS.md).
//! Env: TSOCC_CORES, TSOCC_SCALE (tiny/small/full), TSOCC_SEED.

fn main() {
    tsocc_bench::figures::render("all", tsocc_bench::SweepOpts::from_env())
        .expect("\"all\" is always a valid selection");
}
