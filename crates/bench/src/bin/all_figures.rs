//! Runs the full benchmark sweep once and regenerates every figure and
//! table (the source of EXPERIMENTS.md).
//! Env: TSOCC_CORES, TSOCC_SCALE (tiny/small/full), TSOCC_SEED.
use tsocc_bench::{figures, Sweep, SweepOpts};

fn main() {
    let opts = SweepOpts::from_env();
    figures::print_table2(&opts);
    figures::print_table3();
    figures::print_table1();
    figures::print_fig2();
    let sweep = Sweep::run(opts);
    figures::print_fig3(&sweep);
    figures::print_fig4(&sweep);
    figures::print_fig5(&sweep);
    figures::print_fig6(&sweep);
    figures::print_fig7(&sweep);
    figures::print_fig8(&sweep);
    figures::print_fig9(&sweep);
}
