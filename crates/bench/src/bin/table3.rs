//! Regenerates the paper's Table 3 (benchmark suite).
fn main() {
    tsocc_bench::figures::print_table3();
}
