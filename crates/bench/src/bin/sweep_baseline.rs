//! Emits a machine-readable sweep baseline (`BENCH_sweep.json`): a
//! cores × protocol matrix with cycles and message counts per point,
//! plus serial-vs-parallel engine wall-clock so future PRs have a perf
//! trajectory to compare against.
//!
//! The matrix runs twice — once forced single-threaded, once on the
//! parallel engine — and the binary asserts the results are identical
//! before writing the artifact.
//!
//! Env: `TSOCC_SCALE` (tiny/small/full, default small like every
//! other sweep entry point), `TSOCC_SEED`, `TSOCC_THREADS`
//! (parallel-leg workers; default one per CPU), `TSOCC_SWEEP_CORES`
//! (comma-separated core counts, default `2,4,8`), `TSOCC_OUT`
//! (output path, default `BENCH_sweep.json`).

use std::time::Instant;

use tsocc_bench::json;
use tsocc_bench::sweep::{run_points, SweepOpts, SweepPoint};
use tsocc_protocols::Protocol;
use tsocc_workloads::Benchmark;

fn main() {
    let opts = SweepOpts::from_env();
    let scale = opts.scale;
    let core_counts: Vec<usize> = std::env::var("TSOCC_SWEEP_CORES")
        .unwrap_or_else(|_| "2,4,8".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out_path = std::env::var("TSOCC_OUT").unwrap_or_else(|_| "BENCH_sweep.json".to_string());

    let mut points = Vec::new();
    for &n_cores in &core_counts {
        for protocol in Protocol::paper_configs() {
            points.push(SweepPoint {
                bench: Benchmark::Fft,
                protocol,
                n_cores,
                scale,
            });
        }
    }
    assert!(
        points.len() >= 8,
        "baseline needs a >=8-point matrix, got {}",
        points.len()
    );

    eprintln!("== serial leg ({} points, 1 thread) ==", points.len());
    let t = Instant::now();
    let serial = run_points(&points, 1, opts.seed);
    let serial_wall = t.elapsed();

    eprintln!("== parallel leg ({} points) ==", points.len());
    let t = Instant::now();
    let parallel = run_points(&points, opts.threads, opts.seed);
    let parallel_wall = t.elapsed();

    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            (s.stats.cycles, s.stats.noc.total_messages()),
            (p.stats.cycles, p.stats.noc.total_messages()),
            "parallel sweep diverged from serial on {}/{}x{}",
            s.bench,
            s.config,
            s.n_cores,
        );
    }

    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);
    // Aggregate throughput over the whole matrix (total simulated
    // cycles per total per-point wall time): the one number CI logs
    // surface so throughput regressions are visible at a glance.
    // Computed from the *serial* leg — parallel per-point walls are
    // inflated by cross-point contention and would make the metric
    // swing with the runner's core count.
    let total_cycles: u64 = serial.iter().map(|p| p.stats.cycles).sum();
    let total_wall: f64 = serial.iter().map(|p| p.wall.as_secs_f64()).sum();
    let aggregate_cps = total_cycles as f64 / total_wall.max(1e-9);
    let doc = json::Object::new()
        .str("schema", "tsocc-sweep-baseline/v1")
        .str("bench", Benchmark::Fft.name())
        .str("scale", &format!("{scale:?}").to_lowercase())
        .u64("base_seed", opts.seed)
        .u64(
            "host_cpus",
            std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        )
        .u64("points_total", points.len() as u64)
        .f64("serial_wall_seconds", serial_wall.as_secs_f64())
        .f64("parallel_wall_seconds", parallel_wall.as_secs_f64())
        .f64("parallel_speedup", speedup)
        .f64("aggregate_sim_cycles_per_second", aggregate_cps)
        .raw("points", json::array(parallel.iter().map(|p| p.to_json())))
        .build();
    std::fs::write(&out_path, doc + "\n").expect("write baseline artifact");
    eprintln!(
        "wrote {out_path}: {} points, serial {serial_wall:.2?} vs parallel {parallel_wall:.2?} ({speedup:.2}x)",
        points.len()
    );
    eprintln!("aggregate sim_cycles_per_second: {aggregate_cps:.0}");
}
