//! Emits a machine-readable sweep baseline (`BENCH_sweep.json`): a
//! cores × protocol matrix with cycles and message counts per point,
//! plus serial-vs-parallel engine wall-clock so future PRs have a perf
//! trajectory to compare against.
//!
//! The matrix runs twice — once forced single-threaded, once on the
//! parallel engine — and the binary asserts the results are identical
//! before writing the artifact. Two further **stepper-parity legs**
//! then re-run the whole matrix under `Stepper::Reference` and
//! `Stepper::ParallelShards` and assert the full `RunStats` and the
//! final-memory fingerprint match the event-driven results point for
//! point, so the committed artifact is always one every stepper
//! reproduces bit-identically.
//!
//! Env: `TSOCC_SCALE` (tiny/small/full, default small like every
//! other sweep entry point), `TSOCC_SEED`, `TSOCC_THREADS`
//! (parallel-leg workers; default one per CPU), `TSOCC_SWEEP_CORES`
//! (comma-separated core counts, default `2,4,8,16,32,64,128`),
//! `TSOCC_OUT` (output path, default `BENCH_sweep.json`).
//!
//! Every row also reports the sharded stepper's wall throughput on the
//! same point (`shards_wall_seconds` / `shards_sim_cycles_per_second`,
//! from the `ParallelShards{4}` parity leg), so stepper performance is
//! tracked per point across PRs, not just in aggregate.
//!
//! `--check [PATH]` flips the binary into drift-check mode: instead of
//! writing an artifact, it loads the committed one (default
//! `BENCH_sweep.json`), re-runs the *same* matrix — scale, seed and
//! core counts come from the artifact, not the environment — and exits
//! nonzero if any **simulated** metric (cycles, instructions, messages,
//! flits, flit-hops, per-point seeds) differs. Wall-clock fields are
//! ignored: hosts differ, simulations must not. Flags parse through the
//! shared [`tsocc_bench::cli`] surface: `--help` documents them and
//! anything undeclared exits 2.

use std::time::Instant;

use tsocc::Stepper;
use tsocc_bench::cli::Cli;
use tsocc_bench::json::{self, Value};
use tsocc_bench::sweep::{baseline_matrix, run_points, run_points_with, SweepOpts};
use tsocc_workloads::{Benchmark, Scale};

/// Re-runs the committed artifact's matrix and diffs simulated metrics.
/// Returns the number of mismatches.
fn check_against(path: &str) -> usize {
    let doc = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed artifact {path}: {e}"));
    let doc = json::parse(&doc).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    let field = |v: &Value, key: &str| -> u64 {
        v.get(key)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("{path}: missing numeric field {key:?}"))
    };
    let scale = match doc.get("scale").and_then(Value::as_str) {
        Some("tiny") => Scale::Tiny,
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        other => panic!("{path}: unknown scale {other:?}"),
    };
    let base_seed = field(&doc, "base_seed");
    let committed = doc
        .get("points")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| panic!("{path}: missing points array"))
        .to_vec();
    // The artifact's matrix is (cores in first-appearance order) ×
    // paper configs — rebuilt through the same `baseline_matrix` the
    // writer uses.
    let mut core_counts: Vec<usize> = Vec::new();
    for p in &committed {
        let n = field(p, "n_cores") as usize;
        if !core_counts.contains(&n) {
            core_counts.push(n);
        }
    }
    let points = baseline_matrix(scale, &core_counts);
    assert_eq!(
        points.len(),
        committed.len(),
        "{path}: artifact has {} points, matrix reconstruction has {}",
        committed.len(),
        points.len()
    );
    eprintln!(
        "== drift check against {path}: {} points, scale {scale:?}, seed {base_seed} ==",
        points.len()
    );
    let results = run_points(&points, SweepOpts::from_env().threads, base_seed);
    let mut mismatches = 0usize;
    for (old, new) in committed.iter().zip(&results) {
        let sim_metrics = [
            ("seed", new.seed),
            ("cycles", new.stats.cycles),
            ("instructions", new.stats.instructions),
            ("msgs", new.stats.noc.total_messages()),
            ("flits", new.stats.total_flits()),
            ("flit_hops", new.stats.noc.flit_hops.get()),
        ];
        let id = format!("{}/{}x{}", new.bench, new.config, new.n_cores);
        let old_config = old.get("config").and_then(Value::as_str).unwrap_or("?");
        let old_bench = old.get("bench").and_then(Value::as_str).unwrap_or("?");
        if old_config != new.config
            || old_bench != new.bench
            || field(old, "n_cores") as usize != new.n_cores
        {
            eprintln!("MISMATCH {id}: committed row is {old_bench}/{old_config}");
            mismatches += 1;
            continue;
        }
        for (key, got) in sim_metrics {
            let want = field(old, key);
            if want != got {
                eprintln!("MISMATCH {id}.{key}: committed {want}, regenerated {got}");
                mismatches += 1;
            }
        }
        // The memory fingerprint is a simulated metric too, but older
        // artifacts predate it: only check it where committed.
        if let Some(want) = old.get("mem_fp").and_then(Value::as_u64) {
            if want != new.mem_fp {
                eprintln!(
                    "MISMATCH {id}.mem_fp: committed {want}, regenerated {}",
                    new.mem_fp
                );
                mismatches += 1;
            }
        }
    }
    mismatches
}

fn main() {
    let args = Cli::new(
        "sweep_baseline",
        "emit (or drift-check) the committed sweep baseline artifact",
    )
    .opt_default(
        "--check",
        "PATH",
        "drift-check against a committed artifact instead of writing one",
    )
    .parse();
    if args.present("--check") {
        let path = args.str("--check").unwrap_or("BENCH_sweep.json");
        let mismatches = check_against(path);
        if mismatches > 0 {
            eprintln!("{mismatches} simulated metric(s) drifted from {path}");
            std::process::exit(1);
        }
        eprintln!("all simulated metrics match {path}");
        return;
    }
    let opts = SweepOpts::from_env();
    let scale = opts.scale;
    let core_counts: Vec<usize> = std::env::var("TSOCC_SWEEP_CORES")
        .unwrap_or_else(|_| "2,4,8,16,32,64,128".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let out_path = std::env::var("TSOCC_OUT").unwrap_or_else(|_| "BENCH_sweep.json".to_string());

    let points = baseline_matrix(scale, &core_counts);
    assert!(
        points.len() >= 8,
        "baseline needs a >=8-point matrix, got {}",
        points.len()
    );

    eprintln!("== serial leg ({} points, 1 thread) ==", points.len());
    let t = Instant::now();
    let serial = run_points(&points, 1, opts.seed);
    let serial_wall = t.elapsed();

    eprintln!("== parallel leg ({} points) ==", points.len());
    let t = Instant::now();
    let parallel = run_points(&points, opts.threads, opts.seed);
    let parallel_wall = t.elapsed();

    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            (s.stats.cycles, s.stats.noc.total_messages()),
            (p.stats.cycles, p.stats.noc.total_messages()),
            "parallel sweep diverged from serial on {}/{}x{}",
            s.bench,
            s.config,
            s.n_cores,
        );
    }

    // Stepper-parity legs: the committed artifact must be one that
    // every stepper reproduces bit-identically — full `RunStats`
    // (host-side scheduler counters excluded by its `PartialEq`) and
    // the final-memory fingerprint, across the whole matrix. The
    // sharded leg's results are kept: its per-point wall times go into
    // the artifact rows as the stepper-throughput trajectory.
    let check_leg = |stepper: Stepper, label: &str| -> Vec<_> {
        eprintln!(
            "== stepper parity leg: {label} ({} points) ==",
            points.len()
        );
        let leg = run_points_with(&points, opts.threads, opts.seed, stepper);
        for (e, o) in serial.iter().zip(&leg) {
            let id = format!("{}/{}x{}", e.bench, e.config, e.n_cores);
            assert_eq!(
                e.stats, o.stats,
                "{label} stepper diverged from event-driven on {id}"
            );
            assert_eq!(
                e.mem_fp, o.mem_fp,
                "{label} stepper final memory diverged on {id}"
            );
        }
        leg
    };
    check_leg(Stepper::Reference, "Reference");
    let sharded = check_leg(Stepper::ParallelShards { shards: 4 }, "ParallelShards{4}");

    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);
    // Aggregate throughput over the whole matrix (total simulated
    // cycles per total per-point wall time): the one number CI logs
    // surface so throughput regressions are visible at a glance.
    // Computed from the *serial* leg — parallel per-point walls are
    // inflated by cross-point contention and would make the metric
    // swing with the runner's core count.
    let total_cycles: u64 = serial.iter().map(|p| p.stats.cycles).sum();
    let total_wall: f64 = serial.iter().map(|p| p.wall.as_secs_f64()).sum();
    let aggregate_cps = total_cycles as f64 / total_wall.max(1e-9);
    let doc = json::Object::new()
        .str("schema", "tsocc-sweep-baseline/v1")
        .str("bench", Benchmark::Fft.name())
        .str("scale", &format!("{scale:?}").to_lowercase())
        .u64("base_seed", opts.seed)
        .u64(
            "host_cpus",
            std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        )
        .u64("points_total", points.len() as u64)
        .f64("serial_wall_seconds", serial_wall.as_secs_f64())
        .f64("parallel_wall_seconds", parallel_wall.as_secs_f64())
        .f64("parallel_speedup", speedup)
        .f64("aggregate_sim_cycles_per_second", aggregate_cps)
        .str(
            "stepper_parity",
            "EventDriven == Reference == ParallelShards{4} (RunStats + memory fingerprint)",
        )
        .raw(
            "points",
            json::array(parallel.iter().zip(&sharded).map(|(p, s)| {
                p.to_json_obj()
                    .f64("shards_wall_seconds", s.wall.as_secs_f64())
                    .f64("shards_sim_cycles_per_second", s.sim_cycles_per_second())
                    .build()
            })),
        )
        .build();
    std::fs::write(&out_path, doc + "\n").expect("write baseline artifact");
    eprintln!(
        "wrote {out_path}: {} points, serial {serial_wall:.2?} vs parallel {parallel_wall:.2?} ({speedup:.2}x)",
        points.len()
    );
    eprintln!("aggregate sim_cycles_per_second: {aggregate_cps:.0}");
}
