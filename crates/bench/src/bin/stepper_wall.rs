//! Best-of-N wall-clock timing of one or more sweep points under
//! chosen steppers — the measurement harness behind the stepper
//! performance claims tracked across PRs.
//!
//! Unlike `BENCH_sweep.json` (whose rows time the default event-driven
//! stepper once, incidentally), this bin times *specific* steppers
//! best-of-N on identical points, so before/after comparisons of the
//! run-loop itself are apples-to-apples.
//!
//! ```text
//! stepper_wall [--cores 64,128] [--bench fft] [--reps 3] [--shards 4]
//! ```
//!
//! Output: one line per (point, stepper) with the best wall time and
//! the derived simulated-cycles-per-second. Flags parse through the
//! shared [`tsocc_bench::cli`] surface: `--help` documents them and
//! anything undeclared exits 2.

use std::time::Instant;

use tsocc::Stepper;
use tsocc_bench::cli::Cli;
use tsocc_bench::sweep::SweepPoint;
use tsocc_protocols::Protocol;
use tsocc_workloads::{Benchmark, Scale};

/// The `BENCH_sweep.json` base seed.
const BASE_SEED: u64 = 0xC0FFEE;

fn main() {
    let args = Cli::new(
        "stepper_wall",
        "best-of-N wall-clock timing of sweep points under chosen steppers",
    )
    .opt("--cores", "LIST", "comma-separated core counts")
    .opt("--bench", "NAME", "benchmark to time")
    .opt("--reps", "N", "repetitions per (point, stepper); best kept")
    .opt("--shards", "N", "worker shards for the parallel stepper")
    .parse();
    let cores_spec = args.str("--cores").unwrap_or("64,128");
    let bench_name = args.str("--bench").unwrap_or("fft");
    let reps = args.usize("--reps").unwrap_or(3);
    let shards = args.usize("--shards").unwrap_or(4);

    let bench = Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == bench_name)
        .unwrap_or_else(|| panic!("unknown benchmark {bench_name}"));
    let core_counts: Vec<usize> = cores_spec
        .split(',')
        .map(|s| s.trim().parse().expect("core count"))
        .collect();

    let steppers = [
        ("event_driven", Stepper::EventDriven),
        ("parallel", Stepper::ParallelShards { shards }),
    ];
    let protocols = [
        Protocol::Mesi,
        Protocol::MesiCoarse(Default::default()),
        Protocol::TsoCc(Default::default()),
    ];

    println!("bench={} reps={reps} shards={shards}", bench.name());
    for &n_cores in &core_counts {
        for protocol in protocols {
            let point = SweepPoint {
                bench,
                protocol,
                n_cores,
                scale: Scale::Small,
            };
            for (label, stepper) in steppers {
                let mut best = f64::INFINITY;
                let mut cycles = 0u64;
                for _ in 0..reps {
                    let t = Instant::now();
                    let r = point.run_with_stepper(BASE_SEED, stepper);
                    let wall = t.elapsed().as_secs_f64();
                    best = best.min(wall);
                    cycles = r.stats.cycles;
                }
                println!(
                    "{:<12} x{:<4} {:<13} best {:>8.3}s  {:>12.0} sim-cyc/s",
                    protocol.name(),
                    n_cores,
                    label,
                    best,
                    cycles as f64 / best.max(1e-9),
                );
            }
        }
    }
}
