//! Regenerates the paper's Figure 7 from a full benchmark sweep.
//! Env: TSOCC_CORES, TSOCC_SCALE (tiny/small/full), TSOCC_SEED.
use tsocc_bench::{figures, Sweep, SweepOpts};
fn main() {
    let sweep = Sweep::run(SweepOpts::from_env());
    figures::print_fig7(&sweep);
}
