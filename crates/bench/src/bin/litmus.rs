//! §4.3 verification: runs the TSO litmus suite against every protocol
//! configuration and reports forbidden-outcome counts.
//! Env: TSOCC_LITMUS_ITERS (default 200).
use tsocc_protocols::Protocol;
use tsocc_workloads::{litmus_suite, run_litmus};

fn main() {
    let iters: u64 = std::env::var("TSOCC_LITMUS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let mut failures = 0u64;
    println!(
        "{:<16} {:<16} {:>6} {:>10} {:>8}  outcomes",
        "test", "config", "iters", "forbidden", "relaxed"
    );
    for protocol in Protocol::paper_configs() {
        for test in litmus_suite() {
            let report = run_litmus(&test, protocol, iters, 0xBEEF);
            failures += report.forbidden_count;
            println!(
                "{:<16} {:<16} {:>6} {:>10} {:>8}  {:?}",
                test.name,
                protocol.name(),
                report.iterations,
                report.forbidden_count,
                if report.relaxed_seen { "yes" } else { "-" },
                report
                    .outcomes
                    .iter()
                    .map(|(k, v)| format!("{k:?}x{v}"))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
        }
    }
    if failures == 0 {
        println!("\nTSO SATISFIED: no forbidden outcomes across all configurations.");
    } else {
        println!("\nTSO VIOLATED: {failures} forbidden outcomes!");
        std::process::exit(1);
    }
}
