//! Regenerates the paper's Figure 2 (storage overhead vs core count).
fn main() {
    tsocc_bench::figures::print_fig2();
}
