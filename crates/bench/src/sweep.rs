//! The benchmark sweep: every Table 3 kernel × every §4.2 protocol
//! configuration.

use std::collections::BTreeMap;
use std::time::Instant;

use tsocc::{Protocol, RunStats, SystemConfig};
use tsocc_workloads::{run_workload, Benchmark, Scale};

/// Sweep parameters.
#[derive(Clone, Copy, Debug)]
pub struct SweepOpts {
    /// Core count (paper: 32).
    pub n_cores: usize,
    /// Workload scale.
    pub scale: Scale,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            n_cores: 32,
            scale: Scale::Small,
            seed: 0xC0FFEE,
        }
    }
}

impl SweepOpts {
    /// Reads `TSOCC_CORES`, `TSOCC_SCALE` and `TSOCC_SEED` from the
    /// environment, falling back to the paper defaults.
    pub fn from_env() -> Self {
        let mut opts = SweepOpts::default();
        if let Ok(v) = std::env::var("TSOCC_CORES") {
            if let Ok(n) = v.parse() {
                opts.n_cores = n;
            }
        }
        if let Ok(v) = std::env::var("TSOCC_SCALE") {
            opts.scale = match v.to_ascii_lowercase().as_str() {
                "tiny" => Scale::Tiny,
                "full" => Scale::Full,
                _ => Scale::Small,
            };
        }
        if let Ok(v) = std::env::var("TSOCC_SEED") {
            if let Ok(n) = v.parse() {
                opts.seed = n;
            }
        }
        opts
    }
}

/// Results of one full sweep, keyed by (benchmark, configuration).
#[derive(Debug)]
pub struct Sweep {
    /// Parameters the sweep ran with.
    pub opts: SweepOpts,
    /// `(benchmark name, config name) → stats`.
    pub results: BTreeMap<(String, String), RunStats>,
}

impl Sweep {
    /// Runs one benchmark under one protocol.
    pub fn run_one(bench: Benchmark, protocol: Protocol, opts: SweepOpts) -> RunStats {
        let threads = opts.n_cores;
        let workload = bench.build(threads, opts.scale, opts.seed);
        let mut cfg = SystemConfig::table2_with_cores(protocol, opts.n_cores);
        cfg.seed = opts.seed;
        run_workload(&workload, cfg)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", bench.name(), protocol.name()))
    }

    /// Runs the full 16×7 sweep, printing progress to stderr.
    pub fn run(opts: SweepOpts) -> Sweep {
        let mut results = BTreeMap::new();
        let configs = Protocol::paper_configs();
        let start = Instant::now();
        for bench in Benchmark::ALL {
            for protocol in &configs {
                let t = Instant::now();
                let stats = Sweep::run_one(bench, *protocol, opts);
                eprintln!(
                    "[{:>7.1?}] {:<16} {:<16} {:>10} cycles {:>10} flits ({:.1?})",
                    start.elapsed(),
                    bench.name(),
                    protocol.name(),
                    stats.cycles,
                    stats.total_flits(),
                    t.elapsed(),
                );
                results.insert(
                    (bench.name().to_string(), protocol.name().to_string()),
                    stats,
                );
            }
        }
        Sweep { opts, results }
    }

    /// Stats for one (benchmark, config) cell.
    pub fn get(&self, bench: &str, config: &str) -> &RunStats {
        self.results
            .get(&(bench.to_string(), config.to_string()))
            .unwrap_or_else(|| panic!("missing sweep cell {bench}/{config}"))
    }

    /// Configuration names in the paper's figure order.
    pub fn config_names() -> Vec<String> {
        Protocol::paper_configs()
            .iter()
            .map(Protocol::name)
            .collect()
    }

    /// Benchmark names in the paper's figure order.
    pub fn bench_names() -> Vec<&'static str> {
        Benchmark::ALL.iter().map(Benchmark::name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        let o = SweepOpts::default();
        assert_eq!(o.n_cores, 32);
        assert!(matches!(o.scale, Scale::Small));
    }

    #[test]
    fn run_one_tiny() {
        let opts = SweepOpts {
            n_cores: 4,
            scale: Scale::Tiny,
            seed: 1,
        };
        let s = Sweep::run_one(Benchmark::Fft, Protocol::Mesi, opts);
        assert!(s.cycles > 0);
        assert!(s.total_flits() > 0);
    }

    #[test]
    fn names_align_with_paper() {
        assert_eq!(Sweep::config_names().len(), 7);
        assert_eq!(Sweep::bench_names().len(), 16);
    }
}
