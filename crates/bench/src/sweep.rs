//! The sweep engine: runs a matrix of (benchmark × protocol × machine)
//! configuration points, fanning the points out over worker threads.
//!
//! Each point gets a **deterministic seed** derived from the base seed
//! and the point's identity (benchmark, protocol, core count) — never
//! from which worker picked the point up — so a parallel sweep produces
//! bit-identical results to a serial one (verified by
//! `tests::parallel_matches_serial`). Systems are built, run and
//! dropped entirely inside one worker; nothing about the simulator
//! itself needs to be thread-safe beyond the shared
//! [`tsocc_coherence::ProtocolFactory`] handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tsocc::{RunStats, Stepper, System, SystemConfig};
use tsocc_mem::Addr;
use tsocc_protocols::Protocol;
use tsocc_sim::rng::SplitMix64;
use tsocc_workloads::{Benchmark, Scale};

use crate::json;

/// Sweep parameters.
#[derive(Clone, Copy, Debug)]
pub struct SweepOpts {
    /// Core count (paper: 32).
    pub n_cores: usize,
    /// Workload scale.
    pub scale: Scale,
    /// Base simulation seed (per-point seeds derive from it).
    pub seed: u64,
    /// Worker threads for the point fan-out; `0` means one per
    /// available CPU.
    pub threads: usize,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            n_cores: 32,
            scale: Scale::Small,
            seed: 0xC0FFEE,
            threads: 0,
        }
    }
}

impl SweepOpts {
    /// Reads `TSOCC_CORES`, `TSOCC_SCALE`, `TSOCC_SEED` and
    /// `TSOCC_THREADS` from the environment, falling back to the paper
    /// defaults.
    pub fn from_env() -> Self {
        let mut opts = SweepOpts::default();
        if let Ok(v) = std::env::var("TSOCC_CORES") {
            if let Ok(n) = v.parse() {
                opts.n_cores = n;
            }
        }
        if let Ok(v) = std::env::var("TSOCC_SCALE") {
            opts.scale = match v.to_ascii_lowercase().as_str() {
                "tiny" => Scale::Tiny,
                "full" => Scale::Full,
                _ => Scale::Small,
            };
        }
        if let Ok(v) = std::env::var("TSOCC_SEED") {
            if let Ok(n) = v.parse() {
                opts.seed = n;
            }
        }
        if let Ok(v) = std::env::var("TSOCC_THREADS") {
            if let Ok(n) = v.parse() {
                opts.threads = n;
            }
        }
        opts
    }
}

/// One configuration point of a sweep matrix.
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// The workload.
    pub bench: Benchmark,
    /// The protocol configuration.
    pub protocol: Protocol,
    /// Machine core count.
    pub n_cores: usize,
    /// Workload scale.
    pub scale: Scale,
}

impl SweepPoint {
    /// The point's deterministic seed: a hash of the base seed and the
    /// point's identity. Independent of point order and thread
    /// schedule.
    pub fn seed(&self, base_seed: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.bench.name().as_bytes());
        eat(self.protocol.name().as_bytes());
        eat(&(self.n_cores as u64).to_le_bytes());
        eat(format!("{:?}", self.scale).as_bytes());
        SplitMix64::new(base_seed ^ h).next_u64()
    }

    /// Runs this point to completion under the default stepper.
    pub fn run(&self, base_seed: u64) -> PointResult {
        self.run_with_stepper(base_seed, Stepper::default())
    }

    /// The exact [`SystemConfig`] this point runs under (with its
    /// derived per-point seed installed) — exposed so the orchestrator
    /// can content-address a point by the *resolved* machine, including
    /// every field the builder derives from the core count.
    ///
    /// # Panics
    ///
    /// Panics if the point's configuration is invalid (the run path
    /// reports that case with exit code 2 instead; see
    /// [`SweepPoint::run_with_stepper`]).
    pub fn system_config(&self, base_seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig::builder()
            .cores(self.n_cores)
            .protocol(self.protocol)
            .build()
            .expect("valid config");
        cfg.seed = self.seed(base_seed);
        cfg
    }

    /// Runs this point under a specific [`Stepper`] — the hook behind
    /// the baseline's stepper-parity leg, which re-runs the whole
    /// matrix under `Reference` and `ParallelShards` and diffs the
    /// results (including the memory fingerprint) against the default.
    pub fn run_with_stepper(&self, base_seed: u64, stepper: Stepper) -> PointResult {
        let seed = self.seed(base_seed);
        let workload = self.bench.build(self.n_cores, self.scale, seed);
        let mut cfg = self.system_config(base_seed);
        cfg.stepper = stepper;
        let t = Instant::now();
        // Benchmark drivers are batch programs: a rejected machine
        // configuration is an operator error, reported cleanly with
        // exit code 2 rather than a panic backtrace.
        let mut sys = match System::try_new(cfg, workload.programs.clone()) {
            Ok(sys) => sys,
            Err(e) => {
                eprintln!(
                    "sweep point {} on {} ({} cores): {e}",
                    self.bench.name(),
                    self.protocol.name(),
                    self.n_cores
                );
                std::process::exit(2);
            }
        };
        for &(addr, value) in &workload.init {
            sys.write_word(Addr::new(addr), value);
        }
        let stats = sys
            .run(200_000_000)
            .unwrap_or_else(|e| panic!("{} on {}: {e}", self.bench.name(), self.protocol.name()));
        let wall = t.elapsed();
        // FNV-1a over the sorted DRAM image: a simulated metric, so it
        // belongs in the drift-checked artifact alongside cycle counts.
        let mut mem_fp = 0xcbf2_9ce4_8422_2325u64;
        for (line, data) in sys.memory_image() {
            for chunk in std::iter::once(line.as_u64()).chain(data.words().iter().copied()) {
                for b in chunk.to_le_bytes() {
                    mem_fp = (mem_fp ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        PointResult {
            bench: self.bench.name().to_string(),
            config: self.protocol.name(),
            n_cores: self.n_cores,
            seed,
            stats,
            mem_fp,
            wall,
        }
    }
}

/// The outcome of one sweep point.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Benchmark name.
    pub bench: String,
    /// Protocol configuration name.
    pub config: String,
    /// Machine core count.
    pub n_cores: usize,
    /// The seed the point ran with.
    pub seed: u64,
    /// Simulation results.
    pub stats: RunStats,
    /// FNV-1a fingerprint of the final DRAM image (line addresses and
    /// payloads in sorted order) — a compact simulated metric that
    /// pins final memory, not just counters, in the drift check.
    pub mem_fp: u64,
    /// Host wall-clock time spent simulating this point.
    pub wall: Duration,
}

impl PointResult {
    /// Simulated-cycles per host wall-clock second: the simulator
    /// throughput metric tracked across PRs.
    pub fn sim_cycles_per_second(&self) -> f64 {
        self.stats.cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The point as a JSON object (the `BENCH_sweep.json` row format).
    pub fn to_json(&self) -> String {
        self.to_json_obj().build()
    }

    /// The row as a still-open [`json::Object`], so callers can append
    /// extra fields (`sweep_baseline` adds the sharded stepper's
    /// per-point wall throughput) before serializing.
    pub fn to_json_obj(&self) -> json::Object {
        json::Object::new()
            .str("bench", &self.bench)
            .str("config", &self.config)
            .u64("n_cores", self.n_cores as u64)
            .u64("seed", self.seed)
            .u64("cycles", self.stats.cycles)
            .u64("instructions", self.stats.instructions)
            .u64("msgs", self.stats.noc.total_messages())
            .u64("flits", self.stats.total_flits())
            .u64("flit_hops", self.stats.noc.flit_hops.get())
            .u64("mem_fp", self.mem_fp)
            .u64("sched_pops", self.stats.sched.events_popped)
            .u64("sched_pushes", self.stats.sched.pushes)
            .u64("sched_stale_skips", self.stats.sched.stale_skips)
            .f64("wall_seconds", self.wall.as_secs_f64())
            .f64("sim_cycles_per_second", self.sim_cycles_per_second())
    }
}

/// The committed-baseline matrix (`BENCH_sweep.json`): every sweep
/// protocol configuration ([`Protocol::sweep_configs`]) at each core
/// count, on the fft benchmark. The `sweep_baseline` writer, its drift
/// checker, and the orchestrator's `sweep` subcommand all build the
/// matrix through this one function, so they can never disagree on its
/// shape.
pub fn baseline_matrix(scale: Scale, core_counts: &[usize]) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &n_cores in core_counts {
        for protocol in Protocol::sweep_configs() {
            points.push(SweepPoint {
                bench: Benchmark::Fft,
                protocol,
                n_cores,
                scale,
            });
        }
    }
    points
}

/// How many workers a fan-out should actually use.
fn effective_threads(requested: usize, n_points: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t = if requested == 0 { auto } else { requested };
    t.clamp(1, n_points.max(1))
}

/// Runs `points` on `threads` workers (0 = one per CPU) and returns the
/// results in point order.
///
/// Workers pull points off a shared counter, so long points do not
/// stall the queue behind them. Results are keyed by point index:
/// output order (and content, thanks to per-point seeds) is identical
/// no matter the interleaving.
///
/// # Panics
///
/// Panics if any point fails to complete (propagated from the worker).
pub fn run_points(points: &[SweepPoint], threads: usize, base_seed: u64) -> Vec<PointResult> {
    run_points_with(points, threads, base_seed, Stepper::default())
}

/// [`run_points`] under a specific [`Stepper`] (the stepper-parity
/// legs of `sweep_baseline` re-run the matrix under `Reference` and
/// `ParallelShards` through this).
pub fn run_points_with(
    points: &[SweepPoint],
    threads: usize,
    base_seed: u64,
    stepper: Stepper,
) -> Vec<PointResult> {
    let threads = effective_threads(threads, points.len());
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<PointResult>>> = points.iter().map(|_| Mutex::new(None)).collect();
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else { break };
                let result = point.run_with_stepper(base_seed, stepper);
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "[{:>7.1?}] {:>3}/{} {:<16} {:<16} {:>12} cycles ({:.1?})",
                    start.elapsed(),
                    finished,
                    points.len(),
                    result.bench,
                    result.config,
                    result.stats.cycles,
                    result.wall,
                );
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no worker panicked holding a result slot")
                .expect("every slot filled once the scope joins")
        })
        .collect()
}

/// Results of one full sweep, keyed by (benchmark, configuration).
#[derive(Debug)]
pub struct Sweep {
    /// Parameters the sweep ran with.
    pub opts: SweepOpts,
    /// `(benchmark name, config name) → stats`.
    pub results: BTreeMap<(String, String), RunStats>,
}

impl Sweep {
    /// The full paper matrix for `opts`: every Table 3 benchmark ×
    /// every §4.2 protocol configuration.
    pub fn paper_points(opts: &SweepOpts) -> Vec<SweepPoint> {
        let mut points = Vec::new();
        for bench in Benchmark::ALL {
            for protocol in Protocol::paper_configs() {
                points.push(SweepPoint {
                    bench,
                    protocol,
                    n_cores: opts.n_cores,
                    scale: opts.scale,
                });
            }
        }
        points
    }

    /// Runs one benchmark under one protocol (one point of the paper
    /// matrix, same per-point seed as the full sweep).
    pub fn run_one(bench: Benchmark, protocol: Protocol, opts: SweepOpts) -> RunStats {
        SweepPoint {
            bench,
            protocol,
            n_cores: opts.n_cores,
            scale: opts.scale,
        }
        .run(opts.seed)
        .stats
    }

    /// Runs the full 16×7 sweep across `opts.threads` workers, printing
    /// progress to stderr.
    pub fn run(opts: SweepOpts) -> Sweep {
        let points = Sweep::paper_points(&opts);
        let results = run_points(&points, opts.threads, opts.seed);
        Sweep::from_results(opts, results)
    }

    /// Runs the full sweep on the calling thread only (the reference
    /// mode the parallel engine is checked against).
    pub fn run_serial(opts: SweepOpts) -> Sweep {
        let points = Sweep::paper_points(&opts);
        let results = run_points(&points, 1, opts.seed);
        Sweep::from_results(opts, results)
    }

    fn from_results(opts: SweepOpts, results: Vec<PointResult>) -> Sweep {
        let results = results
            .into_iter()
            .map(|r| ((r.bench, r.config), r.stats))
            .collect();
        Sweep { opts, results }
    }

    /// Stats for one (benchmark, config) cell.
    pub fn get(&self, bench: &str, config: &str) -> &RunStats {
        self.results
            .get(&(bench.to_string(), config.to_string()))
            .unwrap_or_else(|| panic!("missing sweep cell {bench}/{config}"))
    }

    /// Configuration names in the paper's figure order.
    pub fn config_names() -> Vec<String> {
        Protocol::paper_configs()
            .iter()
            .map(Protocol::name)
            .collect()
    }

    /// Benchmark names in the paper's figure order.
    pub fn bench_names() -> Vec<&'static str> {
        Benchmark::ALL.iter().map(Benchmark::name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> SweepOpts {
        SweepOpts {
            n_cores: 4,
            scale: Scale::Tiny,
            seed: 1,
            threads: 0,
        }
    }

    #[test]
    fn env_parsing_defaults() {
        let o = SweepOpts::default();
        assert_eq!(o.n_cores, 32);
        assert!(matches!(o.scale, Scale::Small));
        assert_eq!(o.threads, 0);
    }

    #[test]
    fn run_one_tiny() {
        let s = Sweep::run_one(Benchmark::Fft, Protocol::Mesi, tiny_opts());
        assert!(s.cycles > 0);
        assert!(s.total_flits() > 0);
    }

    #[test]
    fn names_align_with_paper() {
        assert_eq!(Sweep::config_names().len(), 7);
        assert_eq!(Sweep::bench_names().len(), 16);
    }

    #[test]
    fn point_seeds_are_deterministic_and_distinct() {
        let opts = tiny_opts();
        let points = Sweep::paper_points(&opts);
        let mut seeds: Vec<u64> = points.iter().map(|p| p.seed(opts.seed)).collect();
        let replay: Vec<u64> = points.iter().map(|p| p.seed(opts.seed)).collect();
        assert_eq!(seeds, replay);
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(
            seeds.len(),
            points.len(),
            "per-point seeds must not collide"
        );

        // Every identity field participates in the hash, including scale.
        let p = points[0];
        let other = SweepPoint {
            scale: Scale::Small,
            ..p
        };
        assert_ne!(
            p.seed(opts.seed),
            other.seed(opts.seed),
            "scale must be part of the point identity"
        );
    }

    #[test]
    fn parallel_matches_serial() {
        // A 2×2 matrix is enough to exercise the fan-out while staying
        // fast: two benchmarks with different behaviours × two
        // protocols, on 4 workers.
        let opts = tiny_opts();
        let points: Vec<SweepPoint> = [Benchmark::Fft, Benchmark::Intruder]
            .into_iter()
            .flat_map(|bench| {
                [Protocol::Mesi, Protocol::TsoCc(Default::default())]
                    .into_iter()
                    .map(move |protocol| SweepPoint {
                        bench,
                        protocol,
                        n_cores: opts.n_cores,
                        scale: opts.scale,
                    })
            })
            .collect();
        let serial = run_points(&points, 1, opts.seed);
        let parallel = run_points(&points, 4, opts.seed);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(
                (&s.bench, &s.config),
                (&p.bench, &p.config),
                "order preserved"
            );
            assert_eq!(s.seed, p.seed, "{}/{}", s.bench, s.config);
            assert_eq!(s.stats.cycles, p.stats.cycles, "{}/{}", s.bench, s.config);
            assert_eq!(s.stats.instructions, p.stats.instructions);
            assert_eq!(s.stats.total_flits(), p.stats.total_flits());
            assert_eq!(s.stats.noc.total_messages(), p.stats.noc.total_messages());
        }
    }

    #[test]
    fn point_json_has_the_headline_fields() {
        let opts = tiny_opts();
        let r = SweepPoint {
            bench: Benchmark::Fft,
            protocol: Protocol::Mesi,
            n_cores: opts.n_cores,
            scale: opts.scale,
        }
        .run(opts.seed);
        let j = r.to_json();
        for key in [
            "\"bench\"",
            "\"config\"",
            "\"cycles\"",
            "\"msgs\"",
            "\"flits\"",
            "\"sim_cycles_per_second\"",
        ] {
            assert!(j.contains(key), "{j}");
        }
        assert!(r.sim_cycles_per_second() > 0.0);
    }
}
