//! Evaluation harness: regenerates every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §6):
//! `table1`–`table3`, `fig2`–`fig9`, `litmus`, and `all_figures` (which
//! runs the benchmark sweep once and prints everything).
//!
//! Environment knobs (read by [`SweepOpts::from_env`]):
//!
//! - `TSOCC_CORES` — core count (default 32, the paper's Table 2),
//! - `TSOCC_SCALE` — `tiny` / `small` / `full` workload scale,
//! - `TSOCC_SEED` — simulation seed,
//! - `TSOCC_THREADS` — sweep worker threads (default: one per CPU).
//!
//! Sweeps fan configuration points out over worker threads with
//! deterministic per-point seeds (see [`sweep::run_points`]); serial
//! and parallel runs produce identical results.

pub mod figures;
pub mod json;
pub mod sweep;

pub use sweep::{PointResult, Sweep, SweepOpts, SweepPoint};
