//! Evaluation harness: regenerates every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §6):
//! `table1`–`table3`, `fig2`–`fig9`, `litmus`, and `all_figures` (which
//! runs the benchmark sweep once and prints everything).
//!
//! Environment knobs (read by [`SweepOpts::from_env`]):
//!
//! - `TSOCC_CORES` — core count (default 32, the paper's Table 2),
//! - `TSOCC_SCALE` — `tiny` / `small` / `full` workload scale,
//! - `TSOCC_SEED` — simulation seed.

pub mod figures;
pub mod sweep;

pub use sweep::{Sweep, SweepOpts};
