//! Evaluation harness: regenerates every table and figure of the paper.
//!
//! The `figures` binary reproduces any table or figure via a
//! subcommand (`figures fig3`, `figures table1`, …; see DESIGN.md §6);
//! `figures all` — aliased by the `all_figures` binary — runs the
//! benchmark sweep once and prints everything. `litmus`,
//! `sweep_baseline`, `ablation` and `conform_campaign` cover the
//! remaining entry points.
//!
//! Environment knobs (read by [`SweepOpts::from_env`]):
//!
//! - `TSOCC_CORES` — core count (default 32, the paper's Table 2),
//! - `TSOCC_SCALE` — `tiny` / `small` / `full` workload scale,
//! - `TSOCC_SEED` — simulation seed,
//! - `TSOCC_THREADS` — sweep worker threads (default: one per CPU).
//!
//! Sweeps fan configuration points out over worker threads with
//! deterministic per-point seeds (see [`sweep::run_points`]); serial
//! and parallel runs produce identical results.

pub mod cli;
pub mod figures;
pub mod hang;
pub mod json;
pub mod sweep;

pub use sweep::{PointResult, Sweep, SweepOpts, SweepPoint};
