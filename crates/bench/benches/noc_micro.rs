//! Criterion micro-benchmarks of the mesh network model: injection and
//! delivery throughput under uniform-random traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsocc_noc::{Mesh, MeshTopology, NocConfig, VNet};
use tsocc_sim::{Cycle, Xoshiro256StarStar};

fn bench_uniform_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_uniform_random");
    for n in [16usize, 32, 64] {
        group.bench_function(format!("{n}_routers_1k_msgs"), |b| {
            b.iter(|| {
                let topo = MeshTopology::for_tiles(n);
                let mut mesh: Mesh<u32> = Mesh::new(topo, NocConfig::default());
                let mut rng = Xoshiro256StarStar::seed_from_u64(7);
                let mut delivered = 0usize;
                let mut t = 0u64;
                for i in 0..1000u32 {
                    let src = rng.index(n);
                    let dst = rng.index(n);
                    let flits = if i % 3 == 0 { 5 } else { 1 };
                    mesh.send(Cycle::new(t), src, dst, VNet::Request, flits, i);
                    if i % 4 == 0 {
                        t += 1;
                        delivered += mesh.deliver(Cycle::new(t)).len();
                    }
                }
                while !mesh.is_idle() {
                    t += 1;
                    delivered += mesh.deliver(Cycle::new(t)).len();
                }
                assert_eq!(delivered, 1000);
                black_box(mesh.stats().flit_hops.get())
            })
        });
    }
    group.finish();
}

fn bench_xy_routing(c: &mut Criterion) {
    let topo = MeshTopology::for_tiles(128);
    c.bench_function("xy_route_128", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for src in (0..128).step_by(7) {
                for dst in (0..128).step_by(11) {
                    total += topo.route(src, dst).len();
                }
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench_uniform_random, bench_xy_routing);
criterion_main!(benches);
