//! Simulator-throughput benchmark: simulated-cycles per wall-clock
//! second and host steps ("events") per second, for the event-driven
//! scheduler and the cycle-by-cycle reference stepper.
//!
//! The ratio between the two steppers' throughput is the payoff of the
//! wake-list scheduler; the absolute numbers are the perf trajectory
//! tracked across PRs (also recorded per sweep point in
//! `BENCH_sweep.json` as `sim_cycles_per_second`).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsocc::{Stepper, System, SystemConfig};
use tsocc_mem::Addr;
use tsocc_protocols::Protocol;
use tsocc_workloads::{Benchmark, Scale};

/// Runs one fft sweep point to completion; returns (cycles, host steps).
fn run_once(n_cores: usize, stepper: Stepper) -> (u64, u64) {
    let seed = 0xC0FFEE;
    let workload = Benchmark::Fft.build(n_cores, Scale::Small, seed);
    let mut cfg = SystemConfig::builder()
        .cores(n_cores)
        .protocol(Protocol::TsoCc(Default::default()))
        .build()
        .expect("valid config");
    cfg.seed = seed;
    cfg.stepper = stepper;
    let mut sys = System::new(cfg, workload.programs.clone());
    for &(addr, value) in &workload.init {
        sys.write_word(Addr::new(addr), value);
    }
    let stats = sys.run(200_000_000).expect("fft completes");
    (stats.cycles, sys.steps_executed())
}

fn bench_steppers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    for (label, stepper) in [
        ("event_driven_8c", Stepper::EventDriven),
        ("reference_8c", Stepper::Reference),
    ] {
        // Report the headline rates once per stepper, outside the
        // timed iterations.
        let t = Instant::now();
        let (cycles, steps) = run_once(8, stepper);
        let wall = t.elapsed().as_secs_f64().max(1e-9);
        eprintln!(
            "{label}: {cycles} cycles in {steps} host steps, \
             {:.0} sim-cycles/s, {:.0} host-events/s",
            cycles as f64 / wall,
            steps as f64 / wall,
        );
        group.bench_function(label, |b| b.iter(|| black_box(run_once(8, stepper))));
    }
    group.finish();
}

criterion_group!(benches, bench_steppers);
criterion_main!(benches);
