//! Criterion versions of the paper's figure measurements at miniature
//! scale, one group per figure family, so `cargo bench` exercises every
//! measurement path quickly. The full-scale numbers come from the
//! `fig*` binaries (`cargo run --release -p tsocc-bench --bin all_figures`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsocc::SystemConfig;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::{run_workload, Benchmark, Scale};

const CORES: usize = 4;

fn run(bench: Benchmark, protocol: Protocol) -> tsocc::RunStats {
    let w = bench.build(CORES, Scale::Tiny, 3);
    let cfg = SystemConfig::builder()
        .small()
        .cores(CORES)
        .protocol(protocol)
        .build()
        .expect("valid config");
    run_workload(&w, cfg).expect("terminates")
}

/// Figure 3 family: execution time, MESI vs best TSO-CC.
fn bench_fig3_execution_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_execution_time");
    for protocol in [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
    ] {
        group.bench_function(format!("fft/{}", protocol.name()), |b| {
            b.iter(|| black_box(run(Benchmark::Fft, protocol).cycles))
        });
    }
    group.finish();
}

/// Figure 4 family: network traffic.
fn bench_fig4_traffic(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_network_traffic");
    for protocol in [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::cc_shared_to_l2()),
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
    ] {
        group.bench_function(format!("x264/{}", protocol.name()), |b| {
            b.iter(|| black_box(run(Benchmark::X264, protocol).total_flits()))
        });
    }
    group.finish();
}

/// Figures 5-7/9 family: the miss/self-invalidation statistics path.
fn bench_fig7_selfinv(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_selfinv_stats");
    for protocol in [
        Protocol::TsoCc(TsoCcConfig::basic()),
        Protocol::TsoCc(TsoCcConfig::noreset()),
    ] {
        group.bench_function(format!("canneal/{}", protocol.name()), |b| {
            b.iter(|| {
                let s = run(Benchmark::Canneal, protocol);
                black_box((s.l1.selfinv_total(), s.selfinv_rate_per_miss()))
            })
        });
    }
    group.finish();
}

/// Figure 8 family: RMW latency over the STM commit path.
fn bench_fig8_rmw(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_rmw_latency");
    for protocol in [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
    ] {
        group.bench_function(format!("intruder/{}", protocol.name()), |b| {
            b.iter(|| black_box(run(Benchmark::Intruder, protocol).rmw_latency.mean()))
        });
    }
    group.finish();
}

/// Figure 2 / Table 1 family: the storage model (pure computation).
fn bench_fig2_storage_model(c: &mut Criterion) {
    use tsocc_proto::StorageModel;
    c.bench_function("fig2_storage_model_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n in [16usize, 32, 64, 128] {
                let m = StorageModel::paper(n);
                acc ^= m.mesi_bits();
                acc ^= m.tsocc_bits(&TsoCcConfig::realistic(12, 3));
                acc ^= m.tsocc_bits(&TsoCcConfig::basic());
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_fig3_execution_time,
    bench_fig4_traffic,
    bench_fig7_selfinv,
    bench_fig8_rmw,
    bench_fig2_storage_model
);
criterion_main!(benches);
