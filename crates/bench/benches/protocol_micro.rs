//! Criterion micro-benchmarks: protocol-level simulation throughput on
//! small fixed workloads (simulator performance, not paper metrics —
//! the paper's figures come from the `fig*` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tsocc::{System, SystemConfig};
use tsocc_isa::{Asm, Reg};
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;

/// The Figure 1 producer-consumer pair.
fn mp_programs() -> Vec<tsocc_isa::Program> {
    let data = 0x8000u64;
    let flag = 0x8040u64;
    let mut p = Asm::new();
    p.movi(Reg::R1, 42);
    p.store_abs(Reg::R1, data);
    p.movi(Reg::R2, 1);
    p.store_abs(Reg::R2, flag);
    p.halt();
    let mut c = Asm::new();
    let spin = c.new_label();
    c.bind(spin);
    c.load_abs(Reg::R1, flag);
    c.beq(Reg::R1, Reg::R0, spin);
    c.load_abs(Reg::R2, data);
    c.halt();
    vec![p.finish(), c.finish()]
}

fn bench_message_passing(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_passing");
    for protocol in [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
        Protocol::TsoCc(TsoCcConfig::basic()),
    ] {
        group.bench_function(protocol.name(), |b| {
            b.iter(|| {
                let cfg = SystemConfig::builder()
                    .small()
                    .cores(2)
                    .protocol(protocol)
                    .build()
                    .expect("valid config");
                let mut sys = System::new(cfg, mp_programs());
                black_box(sys.run(1_000_000).expect("terminates"))
            })
        });
    }
    group.finish();
}

fn bench_contended_rmw(c: &mut Criterion) {
    let make = || {
        let mut a = Asm::new();
        a.movi(Reg::R1, 1);
        a.movi(Reg::R2, 0);
        let top = a.new_label();
        a.bind(top);
        a.fetch_add(Reg::R3, Reg::R0, 0x9000, Reg::R1);
        a.addi(Reg::R2, Reg::R2, 1);
        a.blt_imm(Reg::R2, 20, top);
        a.halt();
        a.finish()
    };
    let mut group = c.benchmark_group("contended_rmw");
    for protocol in [
        Protocol::Mesi,
        Protocol::TsoCc(TsoCcConfig::realistic(12, 3)),
    ] {
        group.bench_function(protocol.name(), |b| {
            b.iter(|| {
                let cfg = SystemConfig::builder()
                    .small()
                    .cores(4)
                    .protocol(protocol)
                    .build()
                    .expect("valid config");
                let mut sys = System::new(cfg, vec![make(), make(), make(), make()]);
                black_box(sys.run(10_000_000).expect("terminates"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_message_passing, bench_contended_rmw);
criterion_main!(benches);
