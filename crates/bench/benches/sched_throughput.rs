//! Scheduler microbenchmark: churn throughput of the indexed radix
//! wake-queue against the lazy-deletion `BinaryHeap` it replaced, at a
//! small (8-core), a large (64-core) and the sweep's largest
//! (128-core) machine id population, plus a shard-local leg measuring
//! what reusing per-shard queues across runs buys the parallel
//! stepper.
//!
//! The workload is the steady-state stepper pattern: every round pops
//! all due ids and immediately re-arms each a short random distance
//! into the future, so the queue stays near its working size while
//! time advances monotonically — exactly the access pattern
//! `System::run_event_driven` generates. The reported ratio between
//! the two structures is the per-event payoff of the radix heap; the
//! end-to-end payoff is tracked by the `sim_throughput` bench and the
//! `sim_cycles_per_second` fields in `BENCH_sweep.json`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use tsocc_sim::{SplitMix64, WakeQueue};

/// Rounds per measured iteration: enough that floor re-bucketing
/// amortizes, small enough that one iteration stays sub-millisecond.
const ROUNDS: u64 = 4_096;

/// Mean re-arm distance; matches the few-cycle latencies that dominate
/// the simulator's wake keys.
const SPREAD: u64 = 16;

/// Steady-state churn on the radix wake-queue; returns events popped.
fn radix_churn(n_ids: usize) -> u64 {
    let mut q = WakeQueue::new(n_ids);
    let mut rng = SplitMix64::new(0xC0FFEE);
    for id in 0..n_ids {
        q.set(id, rng.next_u64() % SPREAD);
    }
    let mut due = Vec::new();
    let mut popped = 0u64;
    for now in 0..ROUNDS {
        due.clear();
        q.pop_due(now, &mut due);
        popped += due.len() as u64;
        for &id in &due {
            q.set(id as usize, now + 1 + rng.next_u64() % SPREAD);
        }
    }
    popped
}

/// The same churn on the structure the queue replaced: a binary heap
/// with lazy deletion keyed by a desired-wake map.
fn heap_churn(n_ids: usize) -> u64 {
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut desired = vec![u64::MAX; n_ids];
    let mut rng = SplitMix64::new(0xC0FFEE);
    for (id, slot) in desired.iter_mut().enumerate() {
        let key = rng.next_u64() % SPREAD;
        *slot = key;
        heap.push(Reverse((key, id as u32)));
    }
    let mut due = Vec::new();
    let mut popped = 0u64;
    for now in 0..ROUNDS {
        due.clear();
        while let Some(&Reverse((key, id))) = heap.peek() {
            if key > now {
                break;
            }
            heap.pop();
            if desired[id as usize] == key {
                desired[id as usize] = u64::MAX;
                due.push(id);
            }
        }
        popped += due.len() as u64;
        for &id in &due {
            let key = now + 1 + rng.next_u64() % SPREAD;
            desired[id as usize] = key;
            heap.push(Reverse((key, id)));
        }
    }
    popped
}

/// One shard's worth of churn over `queues`: each queue is re-floored
/// with `reset` (the parallel stepper's per-run priming) and then
/// churned over its shard-local id space. Mirrors how
/// `System::shard_queues` lends one queue per worker and reuses them
/// across runs.
fn shard_churn(queues: &mut [WakeQueue], ids_per_shard: usize) -> u64 {
    let mut rng = SplitMix64::new(0xC0FFEE);
    let mut due = Vec::new();
    let mut popped = 0u64;
    for q in queues.iter_mut() {
        q.reset(ids_per_shard, 0);
        for id in 0..ids_per_shard {
            q.set(id, rng.next_u64() % SPREAD);
        }
        for now in 0..ROUNDS / 8 {
            due.clear();
            q.pop_due(now, &mut due);
            popped += due.len() as u64;
            for &id in &due {
                q.set(id as usize, now + 1 + rng.next_u64() % SPREAD);
            }
        }
    }
    popped
}

fn bench_sched(c: &mut Criterion) {
    // Id populations of the 8-, 64- and 128-core table-2 machines
    // (cores + L1s + L2 banks + memory controllers).
    for (label, n_ids) in [
        ("machine_8c", 8 * 3 + 4),
        ("machine_64c", 64 * 3 + 4),
        ("machine_128c", 128 * 3 + 4),
    ] {
        // The two structures must agree on what the workload *is*
        // before their speeds are comparable.
        assert_eq!(radix_churn(n_ids), heap_churn(n_ids), "{label}");
        let mut group = c.benchmark_group(format!("sched_throughput/{label}"));
        group.bench_function("radix_wake_queue", |b| {
            b.iter(|| black_box(radix_churn(black_box(n_ids))))
        });
        group.bench_function("binary_heap_lazy", |b| {
            b.iter(|| black_box(heap_churn(black_box(n_ids))))
        });
        group.finish();
    }

    // Shard-local queues: 8 workers over the 128-core machine, each
    // owning the ids of its own tile slice. `reused` keeps one queue
    // per shard alive across iterations (what `System::shard_queues`
    // does between runs — `reset` preserves bucket capacity); `fresh`
    // constructs the queues anew every time.
    let shards = 8;
    let ids_per_shard = (128 * 3 + 4) / shards;
    let mut group = c.benchmark_group("sched_throughput/shard_local_128c");
    let mut reused: Vec<WakeQueue> = (0..shards).map(|_| WakeQueue::new(0)).collect();
    group.bench_function("reused_queues", |b| {
        b.iter(|| black_box(shard_churn(&mut reused, black_box(ids_per_shard))))
    });
    group.bench_function("fresh_queues", |b| {
        b.iter(|| {
            let mut fresh: Vec<WakeQueue> = (0..shards).map(|_| WakeQueue::new(0)).collect();
            black_box(shard_churn(&mut fresh, black_box(ids_per_shard)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
