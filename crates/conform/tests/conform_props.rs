//! Property tests for the campaign engine (proptest-shim).
//!
//! Three families, per the campaign's contract:
//!
//! 1. **generator determinism** — a program is a pure function of
//!    `(GenConfig, seed)`;
//! 2. **shrinker soundness** — the shrunk program still violates, is
//!    never larger, and is locally minimal under the predicate;
//! 3. **model agreement** — the extended N-thread/RMW model restricted
//!    to the old two-thread `{St, Ld, Fence}` family agrees with the
//!    historical enumeration entry point, and the fence-saturation
//!    theorem ties the TSO enumerator to the independent SC enumerator.

use proptest::prelude::*;
use tsocc_conform::{generate_program, op_count, shrink, GenConfig};
use tsocc_workloads::tso_model::{
    allowed_outcomes, enumerate, generate_two_thread_programs, ModelMode, ModelOp, ModelProgram,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generator_is_deterministic_and_seed_sensitive(seed in any::<u64>()) {
        let cfg = GenConfig::default();
        let a = generate_program(&cfg, seed);
        let b = generate_program(&cfg, seed);
        prop_assert_eq!(&a, &b, "same seed must regenerate the same program");
        // A different seed almost surely yields a different program;
        // checking three successors makes a collision astronomically
        // unlikely rather than merely unlikely.
        let differs = (1..=3u64).any(|d| generate_program(&cfg, seed.wrapping_add(d)) != a);
        prop_assert!(differs, "neighbouring seeds all regenerated the same program");
    }

    #[test]
    fn generator_shapes_follow_config(
        seed in any::<u64>(),
        threads in 1usize..5,
        locations in 1usize..5,
    ) {
        let cfg = GenConfig { threads, locations, ..GenConfig::default() };
        let p = generate_program(&cfg, seed);
        prop_assert_eq!(p.len(), threads);
        for op in p.iter().flatten() {
            let addr = match *op {
                ModelOp::Store { addr, .. } | ModelOp::Load { addr } | ModelOp::Rmw { addr, .. } => addr,
                ModelOp::Fence => 0,
            };
            prop_assert!((addr as usize) < locations);
        }
    }

    #[test]
    fn shrinker_is_sound_and_locally_minimal(seed in any::<u64>()) {
        // Synthetic violation predicate: "some thread stores to x0 and
        // some thread loads x0". Fast to evaluate, so the property can
        // also verify local minimality by re-trying every single
        // deletion on the result.
        let program = generate_program(&GenConfig::default(), seed);
        let violates = |p: &ModelProgram| {
            p.iter().flatten().any(|o| matches!(o, ModelOp::Store { addr: 0, .. }))
                && p.iter().flatten().any(|o| matches!(o, ModelOp::Load { addr: 0 }))
        };
        if !violates(&program) {
            return Ok(()); // not a violating input this time
        }
        let shrunk = shrink(&program, violates);
        prop_assert!(violates(&shrunk), "soundness: shrunk program no longer violates");
        prop_assert!(op_count(&shrunk) <= op_count(&program));
        prop_assert!(shrunk.len() <= program.len());
        // Local minimality: no single thread removal or op deletion
        // keeps the predicate true.
        for t in 0..shrunk.len() {
            if shrunk.len() > 1 {
                let mut c = shrunk.clone();
                c.remove(t);
                prop_assert!(!violates(&c), "thread {t} was still removable");
            }
            for i in 0..shrunk[t].len() {
                let mut c = shrunk.clone();
                c[t].remove(i);
                prop_assert!(!violates(&c), "op {t}/{i} was still deletable");
            }
        }
    }

    #[test]
    fn extended_model_agrees_with_the_legacy_two_thread_family(index in 0usize..219) {
        // The old family (2 threads × 2 ops from {St, Ld, Fence}): the
        // generalized enumerator must reproduce the historical
        // allowed-outcome sets exactly, and its SC mode must be a
        // strengthening.
        let programs = generate_two_thread_programs(2);
        let program = &programs[index % programs.len()];
        let legacy = allowed_outcomes(program);
        let tso = enumerate(program, ModelMode::Tso, 2_000_000).unwrap();
        prop_assert_eq!(&tso.outcomes, &legacy);
        let sc = enumerate(program, ModelMode::Sc, 2_000_000).unwrap();
        prop_assert!(sc.outcomes.is_subset(&legacy), "SC must allow no more than TSO");
        prop_assert!(!sc.outcomes.is_empty());
    }

    #[test]
    fn fence_saturated_tso_equals_sc(seed in any::<u64>()) {
        // Independent cross-check of the two modes: inserting a fence
        // after every op makes the TSO enumeration collapse to exactly
        // the SC enumeration of the original program (fences are no-ops
        // under SC, and a drained buffer makes every store immediately
        // visible under TSO).
        let cfg = GenConfig { threads: 3, min_ops: 1, max_ops: 3, ..GenConfig::default() };
        let program = generate_program(&cfg, seed);
        let fenced: ModelProgram = program
            .iter()
            .map(|ops| {
                ops.iter()
                    .flat_map(|&op| [op, ModelOp::Fence])
                    .collect()
            })
            .collect();
        let tso_fenced = enumerate(&fenced, ModelMode::Tso, 2_000_000).unwrap();
        let sc = enumerate(&program, ModelMode::Sc, 2_000_000).unwrap();
        prop_assert_eq!(tso_fenced.outcomes, sc.outcomes);
    }
}
