//! The writer/sequence value encoding used by randomized coherence
//! exploration (hoisted from `tests/protocol_fuzz.rs`).
//!
//! Stores carry `writer * 2^32 + seq` with `seq` strictly increasing
//! per writer, so any recorded load can be decoded back to *who* wrote
//! the value and *when* — the per-(address, writer) monotonicity oracle
//! (CoWW + CoRR) falls out of comparing sequence numbers.

/// Encodes writer `writer`'s `seq`-th value. `0` is reserved for the
/// initial memory contents.
pub fn encode(writer: usize, seq: u32) -> u64 {
    ((writer as u64 + 1) << 32) | seq as u64
}

/// Decodes a value back to `(writer, seq)`; `None` for the initial
/// value 0.
pub fn decode(value: u64) -> Option<(usize, u32)> {
    if value == 0 {
        return None;
    }
    Some(((value >> 32) as usize - 1, value as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_initial() {
        assert_eq!(decode(0), None);
        for writer in 0..8 {
            for seq in [0u32, 1, 77, u32::MAX] {
                assert_eq!(decode(encode(writer, seq)), Some((writer, seq)));
            }
        }
    }

    #[test]
    fn encoding_orders_by_seq_within_a_writer() {
        assert!(encode(2, 3) < encode(2, 4));
        assert_ne!(encode(0, 1), encode(1, 1));
    }
}
