#![warn(missing_docs)]

//! The conformance campaign engine — the repository's growth of the
//! paper's §4.3 verification story from a fixed two-thread litmus
//! family to an open-ended, randomized, N-thread campaign.
//!
//! A *campaign* generates seeded random programs (stores with distinct
//! values, loads, fences, and CAS/FADD/SWAP RMWs over a small address
//! pool that includes two words of the same cache line), computes each
//! program's exact allowed-outcome set with the operational TSO
//! reference model ([`tsocc_workloads::tso_model`]), then executes the
//! program on the full simulator — every protocol under test, several
//! randomized timings each — and checks every observed outcome against
//! the model. A violating program is *shrunk* (op deletion, thread
//! removal, value canonicalization) to a minimal reproducer that is
//! printed as a ready-to-paste litmus test.
//!
//! Modules:
//!
//! - [`compile`] — model-program → TVM compilation and outcome
//!   extraction (shared with `tests/systematic_litmus.rs`);
//! - [`version`] — the writer/sequence value encoding shared with
//!   `tests/protocol_fuzz.rs`;
//! - [`gen`] — the seeded program generator;
//! - [`mod@shrink`] — the counterexample shrinker;
//! - [`engine`] — the multi-threaded campaign driver and its report.
//!
//! The `conform_campaign` binary in `tsocc-bench` wraps [`engine`] with
//! CLI flags and a JSON report; CI runs a budgeted smoke on every PR
//! and a long nightly campaign.

pub mod compile;
pub mod engine;
pub mod gen;
pub mod shrink;
pub mod version;

pub use compile::{
    compile_model_thread, compile_program, core_ops, observation_count, observed_outcome,
    DEFAULT_POOL, MAX_OBSERVATIONS,
};
pub use engine::{litmus_text, run_campaign, CampaignOpts, CampaignReport, Violation};
pub use gen::{generate_program, GenConfig};
pub use shrink::{op_count, shrink};

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");
