//! The campaign driver: generate → enumerate → simulate → check →
//! shrink, fanned out over worker threads.
//!
//! Work distribution follows the sweep engine's pattern
//! (`tsocc-bench::sweep`): workers pull program indices off a shared
//! atomic counter, and everything a program does — generation,
//! enumeration, simulation seeds — derives deterministically from the
//! campaign seed and the program index, never from which worker picked
//! it up. A campaign runs until its time budget expires *and* at least
//! `min_programs` programs have been checked, so CI smokes can pin a
//! floor while nightly runs scale with their budget.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use tsocc::{FaultPlan, System, SystemConfig};
use tsocc_isa::RmwOp;
use tsocc_protocols::Protocol;
use tsocc_sim::rng::SplitMix64;
use tsocc_workloads::tso_model::{enumerate, ModelMode, ModelOp, ModelProgram};

use crate::compile::{compile_program, observed_outcome, DEFAULT_POOL};
use crate::gen::{generate_program, GenConfig};
use crate::shrink::{op_count, shrink};

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignOpts {
    /// Base seed; every program/run seed derives from it.
    pub seed: u64,
    /// Worker threads (`0` = one per available CPU).
    pub workers: usize,
    /// Time budget. The campaign keeps generating fresh programs until
    /// the budget is spent (and the floor below is met).
    pub budget: Duration,
    /// Check at least this many programs even if the budget expires.
    pub min_programs: usize,
    /// Hard cap on generated programs (`0` = none).
    pub max_programs: usize,
    /// Randomized-timing simulator runs per (program, protocol).
    pub iters_per_program: u64,
    /// Protocols every program runs on.
    pub protocols: Vec<Protocol>,
    /// Program shape.
    pub gen: GenConfig,
    /// The oracle the simulator is checked against. [`ModelMode::Tso`]
    /// is the real contract; [`ModelMode::Sc`] is strictly stronger and
    /// exists to *inject* violations when testing the campaign itself.
    pub oracle: ModelMode,
    /// Per-program enumeration bound; larger programs are skipped and
    /// counted, not fatal.
    pub max_states: usize,
    /// Initial random delay compiled into every thread (timing spread).
    pub jitter: u32,
    /// Simulator runs used to re-confirm a violation on each shrink
    /// candidate.
    pub shrink_iters: u64,
    /// At most this many violations are shrunk and kept in full (the
    /// rest only count toward `violations_total`).
    pub max_violations: usize,
    /// Fault-injection plan installed on every simulator run.
    /// [`FaultPlan::none`] (the default) checks the healthy simulator;
    /// a protocol mutation turns the campaign into a
    /// mutation-detection oracle — the mutation is caught when the
    /// campaign reports violations (model mismatches or hangs).
    pub faults: FaultPlan,
}

impl Default for CampaignOpts {
    fn default() -> Self {
        CampaignOpts {
            seed: 0xC0FFEE,
            workers: 0,
            budget: Duration::ZERO,
            min_programs: 100,
            max_programs: 0,
            iters_per_program: 2,
            protocols: vec![Protocol::Mesi, Protocol::TsoCc(Default::default())],
            gen: GenConfig::default(),
            oracle: ModelMode::Tso,
            max_states: 60_000,
            jitter: 50,
            shrink_iters: 24,
            max_violations: 8,
            faults: FaultPlan::none(),
        }
    }
}

/// One confirmed conformance violation, with its shrunk reproducer.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Campaign program index (regenerate with the campaign seed).
    pub program_index: usize,
    /// The program's derived generation seed.
    pub program_seed: u64,
    /// Protocol configuration that violated.
    pub protocol: String,
    /// The simulator outcome that is not in the oracle's allowed set
    /// (`None` if the run failed to terminate instead).
    pub outcome: Option<Vec<u64>>,
    /// Run error text for non-termination violations.
    pub error: Option<String>,
    /// The original generated program.
    pub program: ModelProgram,
    /// The shrunk minimal reproducer.
    pub shrunk: ModelProgram,
}

/// Aggregated campaign results.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Programs generated, enumerated and simulated.
    pub programs_checked: usize,
    /// Programs skipped because enumeration outgrew `max_states`.
    pub programs_skipped: usize,
    /// Total simulator executions.
    pub sim_runs: u64,
    /// Sum of model state-space sizes over checked programs.
    pub states_total: u64,
    /// Largest single state space enumerated.
    pub max_state_space: usize,
    /// Programs bucketed by `log2(state-space size)` (last bucket is
    /// `>= 2^15`).
    pub state_space_histogram: [u64; 16],
    /// Programs bucketed by the share of model-allowed outcomes the
    /// simulator actually exhibited (deciles; last bucket = 90–100%).
    pub coverage_histogram: [u64; 10],
    /// Sum of allowed-outcome-set sizes.
    pub allowed_outcomes_total: u64,
    /// Sum of distinct outcomes observed on the machine.
    pub observed_outcomes_total: u64,
    /// All violations found (shrunk reproducers, capped at
    /// `max_violations`).
    pub violations: Vec<Violation>,
    /// Total violating (program, protocol) pairs, including ones beyond
    /// the shrink cap.
    pub violations_total: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Names of the protocols checked.
    pub protocols: Vec<String>,
}

impl CampaignReport {
    fn absorb(&mut self, other: CampaignReport) {
        self.programs_checked += other.programs_checked;
        self.programs_skipped += other.programs_skipped;
        self.sim_runs += other.sim_runs;
        self.states_total += other.states_total;
        self.max_state_space = self.max_state_space.max(other.max_state_space);
        for (a, b) in self
            .state_space_histogram
            .iter_mut()
            .zip(other.state_space_histogram)
        {
            *a += b;
        }
        for (a, b) in self
            .coverage_histogram
            .iter_mut()
            .zip(other.coverage_histogram)
        {
            *a += b;
        }
        self.allowed_outcomes_total += other.allowed_outcomes_total;
        self.observed_outcomes_total += other.observed_outcomes_total;
        self.violations_total += other.violations_total;
        self.violations.extend(other.violations);
    }

    /// A human-readable one-screen summary (the binary prints this to
    /// stderr next to the JSON artifact).
    pub fn summary(&self) -> String {
        let mut s = format!(
            "conformance campaign: {} programs checked ({} skipped as too large), \
             {} sim runs on [{}] in {:.2?}\n\
             state spaces: {} states total, largest {}\n\
             outcome coverage: {} of {} allowed outcomes observed\n",
            self.programs_checked,
            self.programs_skipped,
            self.sim_runs,
            self.protocols.join(", "),
            self.elapsed,
            self.states_total,
            self.max_state_space,
            self.observed_outcomes_total,
            self.allowed_outcomes_total,
        );
        if self.violations_total == 0 {
            s.push_str("violations: none\n");
        } else {
            s.push_str(&format!(
                "violations: {} (showing {} shrunk reproducers)\n",
                self.violations_total,
                self.violations.len()
            ));
            for v in &self.violations {
                s.push_str(&format!(
                    "--- program {} under {} ({} ops shrunk to {}) ---\n{}",
                    v.program_index,
                    v.protocol,
                    op_count(&v.program),
                    op_count(&v.shrunk),
                    litmus_text(&v.shrunk),
                ));
            }
        }
        s
    }
}

/// Renders a model program as a ready-to-paste litmus test: a diy-style
/// column table plus the equivalent Rust construction.
pub fn litmus_text(program: &ModelProgram) -> String {
    fn op_text(op: &ModelOp) -> String {
        match *op {
            ModelOp::Store { addr, value } => format!("St x{addr}={value}"),
            ModelOp::Load { addr } => format!("Ld x{addr}"),
            ModelOp::Fence => "Fence".to_string(),
            ModelOp::Rmw { addr, rmw } => match rmw {
                RmwOp::Cas { expected, new } => format!("CAS x{addr} {expected}->{new}"),
                RmwOp::FetchAdd { operand } => format!("FADD x{addr}+={operand}"),
                RmwOp::Swap { operand } => format!("SWAP x{addr}={operand}"),
            },
        }
    }
    fn op_rust(op: &ModelOp) -> String {
        match *op {
            ModelOp::Store { addr, value } => {
                format!("ModelOp::Store {{ addr: {addr}, value: {value} }}")
            }
            ModelOp::Load { addr } => format!("ModelOp::Load {{ addr: {addr} }}"),
            ModelOp::Fence => "ModelOp::Fence".to_string(),
            ModelOp::Rmw { addr, rmw } => {
                let r = match rmw {
                    RmwOp::Cas { expected, new } => {
                        format!("RmwOp::Cas {{ expected: {expected}, new: {new} }}")
                    }
                    RmwOp::FetchAdd { operand } => {
                        format!("RmwOp::FetchAdd {{ operand: {operand} }}")
                    }
                    RmwOp::Swap { operand } => format!("RmwOp::Swap {{ operand: {operand} }}"),
                };
                format!("ModelOp::Rmw {{ addr: {addr}, rmw: {r} }}")
            }
        }
    }
    let rows = program.iter().map(Vec::len).max().unwrap_or(0);
    let width = program
        .iter()
        .flatten()
        .map(|op| op_text(op).len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = String::new();
    for t in 0..program.len() {
        out.push_str(&format!("{:<width$} | ", format!("P{t}")));
    }
    out.push('\n');
    for row in 0..rows {
        for ops in program {
            let cell = ops.get(row).map(op_text).unwrap_or_default();
            out.push_str(&format!("{cell:<width$} | "));
        }
        out.push('\n');
    }
    out.push_str("vec![\n");
    for ops in program {
        out.push_str("    vec![");
        out.push_str(&ops.iter().map(op_rust).collect::<Vec<_>>().join(", "));
        out.push_str("],\n");
    }
    out.push_str("]\n");
    out
}

/// Stable seed mixing (order- and worker-independent).
fn mix(a: u64, b: u64) -> u64 {
    SplitMix64::new(a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Runs one simulator execution of `program`; `Ok` is the observed
/// outcome.
fn run_once(
    program: &ModelProgram,
    pool: &[u64],
    protocol: Protocol,
    jitter: u32,
    seed: u64,
    faults: FaultPlan,
) -> Result<Vec<u64>, String> {
    let compiled = compile_program(program, pool, jitter);
    let mut cfg = SystemConfig::builder()
        .small()
        .cores(program.len().max(1))
        .protocol(protocol)
        .build()
        .expect("valid config");
    cfg.seed = seed;
    cfg.faults = faults;
    let mut sys = System::new(cfg, compiled);
    sys.run(5_000_000).map_err(|e| e.to_string())?;
    Ok(observed_outcome(&sys, program))
}

/// Runs a full campaign. See [`CampaignOpts`] for the knobs.
///
/// # Panics
///
/// Panics if `opts.protocols` is empty or the generator's location
/// count exceeds the built-in pool.
pub fn run_campaign(opts: &CampaignOpts) -> CampaignReport {
    assert!(!opts.protocols.is_empty(), "campaign needs >= 1 protocol");
    assert!(
        opts.gen.locations <= DEFAULT_POOL.len(),
        "generator locations exceed the address pool"
    );
    let pool = &DEFAULT_POOL[..opts.gen.locations];
    let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = if opts.workers == 0 {
        auto
    } else {
        opts.workers
    };
    let next = AtomicUsize::new(0);
    let checked = AtomicUsize::new(0);
    // Global cap on shrunk violations (shrinking is the expensive
    // path); shared across workers so the report honours
    // `max_violations` no matter the fan-out.
    let shrink_slots = AtomicUsize::new(opts.max_violations);
    // Safety valve for the min-programs floor: if the generator's shape
    // makes nearly every program exceed `max_states`, the floor could
    // be unreachable — after this many *attempts* the budget alone
    // decides, so the campaign always terminates.
    let attempt_cap = opts.min_programs.saturating_mul(20).max(1_000);
    let start = Instant::now();
    let mut report = CampaignReport {
        protocols: opts.protocols.iter().map(Protocol::name).collect(),
        ..Default::default()
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = CampaignReport::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if opts.max_programs > 0 && i >= opts.max_programs {
                            break;
                        }
                        if (checked.load(Ordering::Relaxed) >= opts.min_programs
                            || i >= attempt_cap)
                            && start.elapsed() >= opts.budget
                        {
                            break;
                        }
                        let pseed = mix(opts.seed, i as u64);
                        let program = generate_program(&opts.gen, pseed);
                        let Ok(en) = enumerate(&program, opts.oracle, opts.max_states) else {
                            local.programs_skipped += 1;
                            continue;
                        };
                        checked.fetch_add(1, Ordering::Relaxed);
                        local.programs_checked += 1;
                        local.states_total += en.states_explored as u64;
                        local.max_state_space = local.max_state_space.max(en.states_explored);
                        let bucket = (en.states_explored.max(1).ilog2() as usize).min(15);
                        local.state_space_histogram[bucket] += 1;
                        let mut observed = std::collections::BTreeSet::new();
                        for (pi, &protocol) in opts.protocols.iter().enumerate() {
                            // One violation per (program, protocol)
                            // pair: later iterations of a reproducibly
                            // broken pair add nothing and would re-run
                            // the expensive shrink.
                            let mut pair_violated = false;
                            for it in 0..opts.iters_per_program {
                                local.sim_runs += 1;
                                let run_seed = mix(pseed, ((pi as u64) << 32) | it);
                                let (outcome, error, violated) = match run_once(
                                    &program,
                                    pool,
                                    protocol,
                                    opts.jitter,
                                    run_seed,
                                    opts.faults,
                                ) {
                                    Ok(outcome) => {
                                        let bad = !en.outcomes.contains(&outcome);
                                        observed.insert(outcome.clone());
                                        (Some(outcome), None, bad)
                                    }
                                    Err(e) => (None, Some(e), true),
                                };
                                if !violated || pair_violated {
                                    continue;
                                }
                                pair_violated = true;
                                local.violations_total += 1;
                                // Claim one of the campaign-wide shrink
                                // slots (`max_violations` total across
                                // all workers).
                                let claimed = shrink_slots
                                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |slots| {
                                        slots.checked_sub(1)
                                    })
                                    .is_ok();
                                if !claimed {
                                    continue;
                                }
                                // Shrink against the same oracle: a
                                // candidate still violates if any of
                                // `shrink_iters` timings produces an
                                // outcome outside its own allowed set
                                // (or fails to terminate). The original
                                // program short-circuits to true — this
                                // very run is its witness; a rare
                                // violation must not be lost to the
                                // statistical re-check.
                                let shrunk = shrink(&program, |p: &ModelProgram| {
                                    if p == &program {
                                        return true;
                                    }
                                    let Ok(en) = enumerate(p, opts.oracle, opts.max_states) else {
                                        return false;
                                    };
                                    (0..opts.shrink_iters).any(|sit| {
                                        let seed = mix(run_seed, 0x5_4213 ^ sit);
                                        match run_once(
                                            p,
                                            pool,
                                            protocol,
                                            opts.jitter,
                                            seed,
                                            opts.faults,
                                        ) {
                                            Ok(o) => !en.outcomes.contains(&o),
                                            Err(_) => true,
                                        }
                                    })
                                });
                                local.violations.push(Violation {
                                    program_index: i,
                                    program_seed: pseed,
                                    protocol: protocol.name(),
                                    outcome,
                                    error,
                                    program: program.clone(),
                                    shrunk,
                                });
                            }
                        }
                        let coverage = observed.len() as f64 / en.outcomes.len().max(1) as f64;
                        let decile = ((coverage * 10.0) as usize).min(9);
                        local.coverage_histogram[decile] += 1;
                        local.allowed_outcomes_total += en.outcomes.len() as u64;
                        local.observed_outcomes_total += observed.len() as u64;
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            let local = h.join().expect("campaign worker panicked");
            report.absorb(local);
        }
    });
    report.elapsed = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn litmus_text_round_trips_the_shape() {
        let program: ModelProgram = vec![
            vec![
                ModelOp::Store { addr: 0, value: 1 },
                ModelOp::Load { addr: 1 },
            ],
            vec![ModelOp::Rmw {
                addr: 1,
                rmw: RmwOp::FetchAdd { operand: 2 },
            }],
        ];
        let text = litmus_text(&program);
        assert!(text.contains("St x0=1"), "{text}");
        assert!(text.contains("FADD x1+=2"), "{text}");
        assert!(text.contains("ModelOp::Load { addr: 1 }"), "{text}");
        assert!(text.contains("P0"), "{text}");
        assert!(text.contains("P1"), "{text}");
    }

    #[test]
    fn mix_is_stable_and_spread() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(1, 3));
        assert_ne!(mix(1, 2), mix(2, 2));
    }
}
