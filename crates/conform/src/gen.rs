//! The seeded program generator: N-thread model programs over a small
//! contended location pool, with multi-value stores and RMWs.
//!
//! Generation is a pure function of `(GenConfig, seed)` — the campaign
//! engine derives one seed per program index, so a reported
//! counterexample is reproducible from its index alone, and the
//! property tests pin determinism directly.

use tsocc_isa::RmwOp;
use tsocc_sim::Xoshiro256StarStar;
use tsocc_workloads::tso_model::{ModelOp, ModelProgram};

use crate::compile::MAX_OBSERVATIONS;

/// Shape of the generated programs.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Threads per program (the paper family had 2; campaigns run ≥3).
    pub threads: usize,
    /// Minimum ops per thread.
    pub min_ops: usize,
    /// Maximum ops per thread (inclusive).
    pub max_ops: usize,
    /// How many pool locations programs range over (≤ the compile
    /// pool's length; the default pool has 4, including two words of
    /// one line).
    pub locations: usize,
    /// Whether to generate CAS/FADD/SWAP ops.
    pub rmws: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            threads: 3,
            min_ops: 2,
            max_ops: 5,
            locations: 4,
            rmws: true,
        }
    }
}

/// Generates one model program. Store values (and RMW `new`/operand
/// values) are drawn from a per-program counter, so every write is
/// distinguishable in outcomes; CAS `expected` values are biased toward
/// values actually written to that location (or the initial 0) so both
/// success and failure paths are exercised.
///
/// The program always contains at least one observing op (a load is
/// prepended to thread 0 otherwise — an observation-free program has a
/// single trivial outcome and would waste a campaign slot).
///
/// # Panics
///
/// Panics if the config is degenerate (no threads, `min_ops >
/// max_ops`, `max_ops > MAX_OBSERVATIONS`, or no locations).
pub fn generate_program(cfg: &GenConfig, seed: u64) -> ModelProgram {
    assert!(cfg.threads >= 1, "at least one thread");
    assert!(cfg.min_ops <= cfg.max_ops, "min_ops must be <= max_ops");
    assert!(
        cfg.max_ops <= MAX_OBSERVATIONS,
        "every op could observe; cap ops at the observation registers"
    );
    assert!(cfg.locations >= 1, "at least one location");
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut next_value = 1u64;
    let mut fresh = move || {
        let v = next_value;
        next_value += 1;
        v
    };
    // Values written per location so far (any thread) — candidate CAS
    // `expected` values. Generation order is deterministic, which is
    // all that matters; real interleavings decide what CAS actually
    // sees.
    let mut written: Vec<Vec<u64>> = vec![Vec::new(); cfg.locations];
    let mut program: ModelProgram = Vec::new();
    for _ in 0..cfg.threads {
        let n_ops = cfg.min_ops + rng.index(cfg.max_ops - cfg.min_ops + 1);
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let addr = rng.index(cfg.locations) as u8;
            let roll = rng.range(0, 100);
            let op = match roll {
                // 35% loads, 35% stores, 10% fences, 20% RMWs (folded
                // into loads/stores when RMWs are disabled).
                0..=34 => ModelOp::Load { addr },
                35..=69 => {
                    let value = fresh();
                    written[addr as usize].push(value);
                    ModelOp::Store { addr, value }
                }
                70..=79 => ModelOp::Fence,
                _ if !cfg.rmws => {
                    if roll < 90 {
                        ModelOp::Load { addr }
                    } else {
                        let value = fresh();
                        written[addr as usize].push(value);
                        ModelOp::Store { addr, value }
                    }
                }
                80..=86 => {
                    let pool = &written[addr as usize];
                    let expected = if pool.is_empty() || rng.chance(0.5) {
                        0
                    } else {
                        pool[rng.index(pool.len())]
                    };
                    let new = fresh();
                    written[addr as usize].push(new);
                    ModelOp::Rmw {
                        addr,
                        rmw: RmwOp::Cas { expected, new },
                    }
                }
                87..=93 => ModelOp::Rmw {
                    addr,
                    rmw: RmwOp::FetchAdd {
                        operand: 1 + rng.range(0, 3),
                    },
                },
                _ => {
                    let operand = fresh();
                    written[addr as usize].push(operand);
                    ModelOp::Rmw {
                        addr,
                        rmw: RmwOp::Swap { operand },
                    }
                }
            };
            ops.push(op);
        }
        program.push(ops);
    }
    if !program.iter().flatten().any(ModelOp::observes) {
        program[0].insert(0, ModelOp::Load { addr: 0 });
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_shape_bounds() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let p = generate_program(&cfg, seed);
            assert_eq!(p.len(), cfg.threads);
            for ops in &p {
                assert!(ops.len() <= cfg.max_ops + 1, "load-insertion slack only");
                for op in ops {
                    let addr = match *op {
                        ModelOp::Store { addr, .. }
                        | ModelOp::Load { addr }
                        | ModelOp::Rmw { addr, .. } => addr,
                        ModelOp::Fence => 0,
                    };
                    assert!((addr as usize) < cfg.locations);
                }
            }
            assert!(p.iter().flatten().any(ModelOp::observes));
        }
    }

    #[test]
    fn store_values_are_distinct() {
        for seed in 0..100 {
            let p = generate_program(&GenConfig::default(), seed);
            let mut values: Vec<u64> = p
                .iter()
                .flatten()
                .filter_map(|op| match op {
                    ModelOp::Store { value, .. } => Some(*value),
                    ModelOp::Rmw {
                        rmw: RmwOp::Swap { operand },
                        ..
                    }
                    | ModelOp::Rmw {
                        rmw: RmwOp::Cas { new: operand, .. },
                        ..
                    } => Some(*operand),
                    _ => None,
                })
                .collect();
            let n = values.len();
            values.sort_unstable();
            values.dedup();
            assert_eq!(values.len(), n, "seed {seed}: written values collide");
        }
    }

    #[test]
    fn rmw_free_config_generates_no_rmws() {
        let cfg = GenConfig {
            rmws: false,
            ..GenConfig::default()
        };
        for seed in 0..100 {
            let p = generate_program(&cfg, seed);
            assert!(!p
                .iter()
                .flatten()
                .any(|op| matches!(op, ModelOp::Rmw { .. })));
        }
    }

    #[test]
    fn rmws_actually_appear_in_the_default_config() {
        let hits = (0..100)
            .filter(|&seed| {
                generate_program(&GenConfig::default(), seed)
                    .iter()
                    .flatten()
                    .any(|op| matches!(op, ModelOp::Rmw { .. }))
            })
            .count();
        assert!(hits > 50, "only {hits}/100 programs contained an RMW");
    }
}
