//! Compiling model programs to TVM and reading outcomes back.
//!
//! Hoisted from `tests/systematic_litmus.rs` and generalized: any
//! number of threads, any address pool (model location index `i` maps
//! to `pool[i]`), and RMW ops. The conventions are load-bearing for the
//! whole campaign:
//!
//! - observation slots: every load *and every RMW* records the value it
//!   read into `R1, R2, ...` in program order — [`observed_outcome`]
//!   reads them back in the same order the model's enumerator fills its
//!   `observed` vectors;
//! - warm-up: each pool line is pulled into the cache (`R20..`) before
//!   the timed body so the store-buffer window is exercised rather than
//!   hidden behind cold misses;
//! - scratch: `R25`/`R26` carry store values and RMW operands, `R27+`
//!   stay free for the assembler's own conventions.

use tsocc::System;
use tsocc_coherence::CoreOp;
use tsocc_isa::{Asm, Program, Reg, RmwOp};
use tsocc_mem::Addr;
use tsocc_workloads::tso_model::{ModelOp, ModelProgram};

/// The default campaign address pool: two words sharing line A, one
/// word each on lines B and C — same-line multi-writer interleavings
/// and cross-line races in one pool. (Same layout as the protocol-fuzz
/// pool; the model sees each word as an independent location, which is
/// exactly the architectural contract line granularity must not break.)
pub const DEFAULT_POOL: [u64; 4] = [0x2000, 0x2008, 0x2040, 0x2080];

/// Highest number of observation slots per thread (`R1..=R19`; `R20+`
/// are warm-up/scratch).
pub const MAX_OBSERVATIONS: usize = 19;

/// How many observation slots `ops` fills (loads + RMWs).
pub fn observation_count(ops: &[ModelOp]) -> usize {
    ops.iter().filter(|op| op.observes()).count()
}

/// Compiles one model thread to TVM IR against `pool`. Loads and RMW
/// old-values record into `R1, R2, ...` in program order; a warm-up
/// pulls every pool line into the cache and `jitter` adds a random
/// initial delay so repeated runs explore different timings.
///
/// # Panics
///
/// Panics if an op's location index is out of `pool`'s bounds, if the
/// thread observes more than [`MAX_OBSERVATIONS`] values, or if the
/// pool needs more warm-up registers than `R20..=R24` offers.
pub fn compile_model_thread(ops: &[ModelOp], pool: &[u64], jitter: u32) -> Program {
    assert!(pool.len() <= 5, "warm-up registers are R20..=R24");
    assert!(
        observation_count(ops) <= MAX_OBSERVATIONS,
        "thread observes more values than it has observation registers"
    );
    let mut a = Asm::new();
    for (i, &addr) in pool.iter().enumerate() {
        a.load_abs(Reg::from_index(20 + i), addr);
    }
    if jitter > 0 {
        a.rand_delay(jitter);
    }
    let mut next_obs = 1;
    let mut obs_reg = || {
        let r = Reg::from_index(next_obs);
        next_obs += 1;
        r
    };
    for op in ops {
        match *op {
            ModelOp::Store { addr, value } => {
                a.movi(Reg::R25, value);
                a.store_abs(Reg::R25, pool[addr as usize]);
            }
            ModelOp::Load { addr } => {
                let rd = obs_reg();
                a.load_abs(rd, pool[addr as usize]);
            }
            ModelOp::Fence => {
                a.fence();
            }
            ModelOp::Rmw { addr, rmw } => {
                let rd = obs_reg();
                match rmw {
                    RmwOp::Cas { expected, new } => {
                        a.movi(Reg::R26, expected);
                        a.movi(Reg::R25, new);
                        a.cas_abs(rd, pool[addr as usize], Reg::R26, Reg::R25);
                    }
                    RmwOp::FetchAdd { operand } => {
                        a.movi(Reg::R25, operand);
                        a.fetch_add_abs(rd, pool[addr as usize], Reg::R25);
                    }
                    RmwOp::Swap { operand } => {
                        a.movi(Reg::R25, operand);
                        a.swap_abs(rd, pool[addr as usize], Reg::R25);
                    }
                }
            }
        }
    }
    a.halt();
    a.finish()
}

/// Lowers one model thread to the coherence-layer [`CoreOp`] sequence
/// the model checker's scheduler executes directly — the same
/// pool-indexed address mapping as [`compile_model_thread`], minus the
/// TVM register conventions (the checker's store-buffer shim records
/// observations itself, so no observation registers are needed).
///
/// # Panics
///
/// Panics if an op's location index is out of `pool`'s bounds.
pub fn core_ops(ops: &[ModelOp], pool: &[u64]) -> Vec<CoreOp> {
    ops.iter()
        .map(|op| match *op {
            ModelOp::Store { addr, value } => CoreOp::Store(Addr::new(pool[addr as usize]), value),
            ModelOp::Load { addr } => CoreOp::Load(Addr::new(pool[addr as usize])),
            ModelOp::Fence => CoreOp::Fence,
            ModelOp::Rmw { addr, rmw } => CoreOp::Rmw(Addr::new(pool[addr as usize]), rmw),
        })
        .collect()
}

/// Compiles every thread of `program` against `pool` with the same
/// `jitter`.
pub fn compile_program(program: &ModelProgram, pool: &[u64], jitter: u32) -> Vec<Program> {
    program
        .iter()
        .map(|ops| compile_model_thread(ops, pool, jitter))
        .collect()
}

/// Reads the outcome a finished system observed, in the model's layout:
/// every thread's observation registers in program order, thread-major.
pub fn observed_outcome(sys: &System, program: &ModelProgram) -> Vec<u64> {
    let mut outcome = Vec::new();
    for (t, ops) in program.iter().enumerate() {
        for i in 0..observation_count(ops) {
            outcome.push(sys.core(t).thread().reg(Reg::from_index(1 + i)));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc::SystemConfig;
    use tsocc_protocols::Protocol;
    use tsocc_workloads::tso_model::allowed_outcomes;

    #[test]
    fn observation_counting_includes_rmws() {
        let ops = [
            ModelOp::Store { addr: 0, value: 1 },
            ModelOp::Load { addr: 1 },
            ModelOp::Rmw {
                addr: 0,
                rmw: RmwOp::FetchAdd { operand: 1 },
            },
            ModelOp::Fence,
        ];
        assert_eq!(observation_count(&ops), 2);
    }

    #[test]
    fn compiled_rmw_program_matches_model_on_the_machine() {
        // Two threads fetch-add the same word: the machine must observe
        // exactly one of the model's two outcomes, never [0, 0].
        let fadd = ModelOp::Rmw {
            addr: 0,
            rmw: RmwOp::FetchAdd { operand: 1 },
        };
        let program: ModelProgram = vec![vec![fadd], vec![fadd]];
        let allowed = allowed_outcomes(&program);
        for seed in 0..10u64 {
            let compiled = compile_program(&program, &DEFAULT_POOL, 30);
            let mut cfg = SystemConfig::builder()
                .small()
                .cores(2)
                .protocol(Protocol::Mesi)
                .build()
                .expect("valid config");
            cfg.seed = seed;
            let mut sys = System::new(cfg, compiled);
            sys.run(5_000_000).unwrap();
            let outcome = observed_outcome(&sys, &program);
            assert!(allowed.contains(&outcome), "{outcome:?} not in {allowed:?}");
        }
    }
}
