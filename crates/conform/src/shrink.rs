//! Counterexample shrinking: reduce a violating program to a minimal
//! reproducer while preserving the violation.
//!
//! The shrinker is oracle-agnostic — it takes a `violates` predicate
//! and greedily applies three reductions until a fixpoint:
//!
//! 1. **thread removal** (biggest first: a whole thread at a time),
//! 2. **op deletion** (one op at a time, every position),
//! 3. **value canonicalization** (renumber all written values to a
//!    dense `1..=k` in first-occurrence order, preserving the equality
//!    structure — so the final reproducer reads like a hand-written
//!    litmus test).
//!
//! In the campaign engine the predicate re-runs the candidate on the
//! simulator against the model oracle; in the property tests it is
//! synthetic, which pins the shrinker's soundness (the result always
//! still violates) and minimality (no single removal can be applied)
//! without paying for simulation.

use std::collections::BTreeMap;

use tsocc_isa::RmwOp;
use tsocc_workloads::tso_model::{ModelOp, ModelProgram};

/// Total number of ops across all threads.
pub fn op_count(program: &ModelProgram) -> usize {
    program.iter().map(Vec::len).sum()
}

/// Renumbers every written value (store values, CAS `expected`/`new`,
/// swap operands) to `1..=k` in first-occurrence order. FADD operands
/// are left alone (they are deltas, not identities). Equal values stay
/// equal, distinct values stay distinct, and `0` keeps meaning "the
/// initial value".
fn canonicalize_values(program: &ModelProgram) -> ModelProgram {
    let mut map: BTreeMap<u64, u64> = BTreeMap::new();
    map.insert(0, 0);
    let mut next = 1u64;
    let mut remap = |v: u64| {
        *map.entry(v).or_insert_with(|| {
            let n = next;
            next += 1;
            n
        })
    };
    program
        .iter()
        .map(|ops| {
            ops.iter()
                .map(|op| match *op {
                    ModelOp::Store { addr, value } => ModelOp::Store {
                        addr,
                        value: remap(value),
                    },
                    ModelOp::Rmw {
                        addr,
                        rmw: RmwOp::Cas { expected, new },
                    } => ModelOp::Rmw {
                        addr,
                        rmw: RmwOp::Cas {
                            expected: remap(expected),
                            new: remap(new),
                        },
                    },
                    ModelOp::Rmw {
                        addr,
                        rmw: RmwOp::Swap { operand },
                    } => ModelOp::Rmw {
                        addr,
                        rmw: RmwOp::Swap {
                            operand: remap(operand),
                        },
                    },
                    other => other,
                })
                .collect()
        })
        .collect()
}

/// Shrinks `program` with respect to `violates`, which must hold for
/// the input (if it does not, the input is returned unchanged). The
/// result still satisfies `violates`, and neither removing any single
/// thread nor deleting any single op keeps it violating — a local
/// minimum, which for the memory-model violations the campaign feeds in
/// is the familiar 4-op litmus core.
pub fn shrink(
    program: &ModelProgram,
    mut violates: impl FnMut(&ModelProgram) -> bool,
) -> ModelProgram {
    if !violates(program) {
        return program.clone();
    }
    let mut current = program.clone();
    loop {
        let mut changed = false;
        // Pass 1: drop whole threads (re-test from the front after
        // every success so indices stay honest).
        let mut t = 0;
        while current.len() > 1 && t < current.len() {
            let mut candidate = current.clone();
            candidate.remove(t);
            if violates(&candidate) {
                current = candidate;
                changed = true;
            } else {
                t += 1;
            }
        }
        // Pass 2: drop single ops.
        let mut t = 0;
        while t < current.len() {
            let mut i = 0;
            while i < current[t].len() {
                let mut candidate = current.clone();
                candidate[t].remove(i);
                if violates(&candidate) {
                    current = candidate;
                    changed = true;
                } else {
                    i += 1;
                }
            }
            t += 1;
        }
        if !changed {
            break;
        }
    }
    // Final polish: canonical values, kept only if the violation
    // survives the renaming (it does for any value-agnostic oracle; a
    // value-sensitive predicate simply keeps the original values).
    let canonical = canonicalize_values(&current);
    if canonical != current && violates(&canonical) {
        current = canonical;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(addr: u8, value: u64) -> ModelOp {
        ModelOp::Store { addr, value }
    }
    fn ld(addr: u8) -> ModelOp {
        ModelOp::Load { addr }
    }

    #[test]
    fn shrinks_sb_core_out_of_noise() {
        // The classic SB shape buried in dead ops across 3 threads; the
        // predicate demands the shape itself (store-then-load on
        // crossing addresses in two threads).
        let program: ModelProgram = vec![
            vec![ModelOp::Fence, st(0, 7), ld(1), ld(2)],
            vec![st(2, 9), st(1, 8), ld(0)],
            vec![ld(2), ModelOp::Fence],
        ];
        let has_sb = |p: &ModelProgram| {
            let stld = |ops: &[ModelOp], a: u8, b: u8| {
                let s = ops
                    .iter()
                    .position(|o| matches!(o, ModelOp::Store { addr, .. } if *addr == a));
                let l = ops
                    .iter()
                    .rposition(|o| matches!(o, ModelOp::Load { addr } if *addr == b));
                matches!((s, l), (Some(s), Some(l)) if s < l)
            };
            p.iter().any(|t| stld(t, 0, 1)) && p.iter().any(|t| stld(t, 1, 0))
        };
        let shrunk = shrink(&program, has_sb);
        assert!(has_sb(&shrunk), "soundness: result must still violate");
        assert_eq!(op_count(&shrunk), 4, "{shrunk:?}");
        assert_eq!(shrunk.len(), 2, "{shrunk:?}");
        // Canonicalization renamed 7/8 to 1/2.
        assert_eq!(shrunk[0], vec![st(0, 1), ld(1)]);
        assert_eq!(shrunk[1], vec![st(1, 2), ld(0)]);
    }

    #[test]
    fn non_violating_input_is_returned_unchanged() {
        let program: ModelProgram = vec![vec![st(0, 1)], vec![ld(0)]];
        let shrunk = shrink(&program, |_| false);
        assert_eq!(shrunk, program);
    }

    #[test]
    fn value_sensitive_predicates_keep_original_values() {
        // A predicate that cares about the literal value 7 must not see
        // it canonicalized away.
        let program: ModelProgram = vec![vec![st(0, 7), ld(0)]];
        let wants_seven = |p: &ModelProgram| {
            p.iter()
                .flatten()
                .any(|o| matches!(o, ModelOp::Store { value: 7, .. }))
        };
        let shrunk = shrink(&program, wants_seven);
        assert!(wants_seven(&shrunk));
    }
}
