//! Protocol-independent DRAM controller.

use tsocc_mem::MainMemory;
use tsocc_sim::{Counter, Cycle};

use crate::iface::CacheController;
use crate::msg::{Agent, Msg, NetMsg};
use crate::outbox::Outbox;

/// A memory controller servicing line reads and writebacks from L2
/// tiles with a fixed access latency.
///
/// The paper's Table 2 lists 120–230 cycle memory latency; the spread
/// there comes from NUCA distance, which our mesh already models, so the
/// controller itself charges a flat array latency.
///
/// # Examples
///
/// ```
/// use tsocc_coherence::{Agent, CacheController, MemCtrl, Msg};
/// use tsocc_mem::{Addr, MainMemory};
/// use tsocc_sim::Cycle;
///
/// let mut mc = MemCtrl::new(0, MainMemory::new(), 100);
/// let line = Addr::new(0x40).line();
/// mc.handle_message(Cycle::ZERO, Agent::L2(3), Msg::MemRead { line });
/// assert_eq!(mc.next_event(), Cycle::new(100));
/// let mut out = Vec::new();
/// mc.drain_outbox(Cycle::new(99), &mut out);
/// assert!(out.is_empty());
/// mc.drain_outbox(Cycle::new(100), &mut out);
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].dst, Agent::L2(3));
/// ```
#[derive(Debug)]
pub struct MemCtrl {
    id: usize,
    memory: MainMemory,
    latency: u64,
    outbox: Outbox,
    /// Reads and writes serviced.
    pub reads: Counter,
    /// Writebacks absorbed.
    pub writes: Counter,
}

impl MemCtrl {
    /// Creates controller `id` over `memory` with the given access
    /// latency in cycles.
    pub fn new(id: usize, memory: MainMemory, latency: u64) -> Self {
        MemCtrl {
            id,
            memory,
            latency,
            outbox: Outbox::new(),
            reads: Counter::new(),
            writes: Counter::new(),
        }
    }

    /// This controller's agent identity.
    pub fn agent(&self) -> Agent {
        Agent::Mem(self.id)
    }

    /// Read access to the backing memory (for result checking).
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }

    /// Mutable access to the backing memory (for program loading).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.memory
    }
}

impl CacheController for MemCtrl {
    fn handle_message(&mut self, now: Cycle, src: Agent, msg: Msg) {
        match msg {
            Msg::MemRead { line } => {
                self.reads.inc();
                let data = self.memory.read_line(line);
                self.outbox.push(
                    now + self.latency,
                    NetMsg {
                        src: self.agent(),
                        dst: src,
                        msg: Msg::MemData { line, data },
                    },
                );
            }
            Msg::MemWrite { line, data } => {
                self.writes.inc();
                self.memory.write_line(line, data);
            }
            other => panic!("memory controller received {other:?} from {src}"),
        }
    }

    fn tick(&mut self, _now: Cycle) {}

    fn drain_outbox(&mut self, now: Cycle, out: &mut Vec<NetMsg>) {
        self.outbox.drain_ready_into(now, out);
    }

    fn is_quiescent(&self) -> bool {
        self.outbox.is_empty()
    }

    fn next_event(&self) -> Cycle {
        // Purely reactive: acts only when a queued response matures.
        self.outbox.next_ready()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_mem::{Addr, LineData};

    #[test]
    fn read_returns_written_data() {
        let mut mem = MainMemory::new();
        mem.write_word(Addr::new(0x40), 99);
        let mut mc = MemCtrl::new(0, mem, 10);
        let line = Addr::new(0x40).line();
        mc.handle_message(Cycle::ZERO, Agent::L2(1), Msg::MemRead { line });
        assert_eq!(mc.next_event(), Cycle::new(10));
        let mut out = Vec::new();
        mc.drain_outbox(Cycle::new(10), &mut out);
        assert_eq!(mc.next_event(), Cycle::MAX);
        match &out[0].msg {
            Msg::MemData { data, .. } => assert_eq!(data.read_word(0), 99),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(mc.reads.get(), 1);
    }

    #[test]
    fn writeback_updates_memory_without_reply() {
        let mut mc = MemCtrl::new(0, MainMemory::new(), 10);
        let line = Addr::new(0x80).line();
        let mut data = LineData::zeroed();
        data.write_word(1, 5);
        mc.handle_message(Cycle::ZERO, Agent::L2(0), Msg::MemWrite { line, data });
        let mut out = Vec::new();
        mc.drain_outbox(Cycle::new(1000), &mut out);
        assert!(out.is_empty());
        assert_eq!(mc.memory().read_word(Addr::new(0x88)), 5);
        assert_eq!(mc.writes.get(), 1);
        assert!(mc.is_quiescent());
    }

    #[test]
    #[should_panic]
    fn unexpected_message_panics() {
        let mut mc = MemCtrl::new(0, MainMemory::new(), 10);
        let line = Addr::new(0).line();
        mc.handle_message(Cycle::ZERO, Agent::L1(0), Msg::GetS { line });
    }
}
