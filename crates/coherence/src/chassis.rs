//! The shared cache-controller chassis: every protocol-independent
//! piece of an L1 or L2 controller, hoisted out of the per-protocol
//! crates.
//!
//! A coherence controller splits into two layers:
//!
//! - the **chassis** — line arrays, MSHR allocation, the writeback
//!   buffer, the latency-modelling outbox, transaction (busy-table)
//!   bookkeeping, replay queues, and the `drain`/`next_event`/
//!   quiescence plumbing the run loop drives. None of this depends on
//!   *which* coherence protocol runs on top.
//! - the **policy** — the per-protocol line-state type plus the
//!   transition rules: what a GetS does to a Shared line, when to
//!   self-invalidate, which messages a forward produces.
//!
//! This module owns the chassis. A protocol implements [`L1Policy`] /
//! [`L2Policy`] over its own line/MSHR/transaction types and is wrapped
//! in [`L1Ctl`] / [`L2Ctl`], which provide the entire
//! [`CacheController`]/[`L1Controller`]/[`L2Controller`] surface.
//!
//! ## Which paper baseline is which policy
//!
//! Three protocols ship on this chassis (see `tsocc_protocols`):
//!
//! - **MESI** (`tsocc-mesi`) — the paper's §4.2 baseline: a blocking
//!   NUCA-L2 directory with a *full sharing vector* (one bit per core,
//!   the storage cost TSO-CC attacks).
//! - **MESI-coarse** (`tsocc-mesi-coarse`) — the classic
//!   limited-pointer / coarse-vector directory MESI is traditionally
//!   compared against: exact sharer pointers up to a configurable
//!   budget, falling back to a coarse group vector on overflow. Same L1
//!   policy as MESI; only the directory representation differs.
//! - **TSO-CC** (`tsocc-proto`) — the paper's contribution:
//!   consistency-directed coherence with no sharer tracking at all
//!   (§3), in every §4.2 configuration.
//!
//! The wake-list contract of the event-driven scheduler is implemented
//! once, here: both controller kinds are message-driven, so between
//! steps the only self-driven deadline is the outbox head (plus a
//! pending replay queue at the L2, which demands an immediate tick).

use std::collections::VecDeque;

use tsocc_faults::FaultState;
use tsocc_mem::{CacheArray, CacheParams, InsertOutcome, LineAddr, LineData, LineMap};
use tsocc_sim::Cycle;

use crate::iface::{
    BusyProbe, CacheController, Completion, CoreOp, CtrlProbe, L1Controller, L2Controller,
    LineAccess, Submit,
};
use crate::msg::{Agent, Epoch, Msg, NetMsg, Ts};
use crate::outbox::Outbox;
use crate::stats::{L1Stats, L2Stats};
use crate::wb::WritebackBuffer;

// ---------------------------------------------------------------------------
// MSHR table

/// Miss-status holding registers: one in-flight transaction per line.
///
/// A thin, intention-revealing wrapper over [`LineMap`] that enforces
/// the one-MSHR-per-line invariant both L1 policies rely on (allocation
/// panics on a duplicate; `line_free` checks go through
/// [`MshrTable::contains`]).
#[derive(Clone, Debug, Default)]
pub struct MshrTable<R> {
    entries: LineMap<R>,
}

impl<R> MshrTable<R> {
    /// Creates an empty table.
    pub fn new() -> Self {
        MshrTable {
            entries: LineMap::new(),
        }
    }

    /// Allocates an MSHR for `line`.
    ///
    /// # Panics
    ///
    /// Panics if the line already has one (callers must check
    /// [`MshrTable::contains`] / the chassis `line_free` first).
    pub fn alloc(&mut self, line: LineAddr, req: R) {
        let prev = self.entries.insert(line, req);
        assert!(prev.is_none(), "duplicate MSHR for {line}");
    }

    /// Whether `line` has an in-flight transaction.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.contains_key(line)
    }

    /// The MSHR for `line`, if any.
    pub fn get(&self, line: LineAddr) -> Option<&R> {
        self.entries.get(line)
    }

    /// Mutable access to the MSHR for `line`.
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut R> {
        self.entries.get_mut(line)
    }

    /// Retires the MSHR for `line`.
    pub fn remove(&mut self, line: LineAddr) -> Option<R> {
        self.entries.remove(line)
    }

    /// Whether no transactions are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of in-flight transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over every in-flight transaction.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &R)> {
        self.entries.iter()
    }
}

// ---------------------------------------------------------------------------
// L1 chassis

/// Outcome of installing a line into an L1 array.
#[derive(Clone, Copy, Debug)]
pub enum Install<L> {
    /// The line is resident (installed fresh or replaced in place).
    Done,
    /// Installed; this victim was displaced and must be written back or
    /// dropped by the policy.
    Evicted(LineAddr, L),
    /// No evictable way (every way pinned by an in-flight MSHR); the
    /// policy completes the access without caching.
    NoWay,
}

/// The protocol-independent core of an L1 controller: geometry, the
/// line array, MSHRs, the writeback buffer, the outbox, the completion
/// queue and statistics.
///
/// Generic over the protocol's line state `L` and MSHR payload `R`; the
/// protocol's transition rules live in an [`L1Policy`] that receives
/// `&mut L1Chassis` on every submit and message.
#[derive(Debug)]
pub struct L1Chassis<L, R> {
    id: usize,
    n_cores: usize,
    n_tiles: usize,
    l2_banks: usize,
    issue_latency: u64,
    /// The data/tag array.
    pub cache: CacheArray<L>,
    /// In-flight misses, one per line.
    pub mshrs: MshrTable<R>,
    /// Evicted-but-unacknowledged lines (eviction/forward races).
    pub wb: WritebackBuffer,
    /// Outgoing messages, held for the modelled issue latency.
    pub outbox: Outbox,
    /// Finished misses awaiting the core's drain.
    pub completions: Vec<Completion>,
    /// Per-L1 statistics (the paper's Figures 5–9 breakdowns).
    pub stats: L1Stats,
    /// The fault-injection seam: inert by default, armed by the
    /// protocol factory when a [`tsocc_faults::FaultPlan`] targets this
    /// controller. Policies consult it at their mutation hook sites.
    pub faults: FaultState,
}

impl<L: Copy, R> L1Chassis<L, R> {
    /// Creates the chassis for core `id` on a machine with `n_cores`
    /// cores and `n_tiles` L2 tiles of `l2_banks` banks each (the
    /// line→home interleaving granularity; `1` for the paper's Table 2
    /// machine).
    pub fn new(
        id: usize,
        n_cores: usize,
        n_tiles: usize,
        l2_banks: usize,
        issue_latency: u64,
        params: CacheParams,
    ) -> Self {
        L1Chassis {
            id,
            n_cores,
            n_tiles,
            l2_banks,
            issue_latency,
            cache: CacheArray::new(params),
            mshrs: MshrTable::new(),
            wb: WritebackBuffer::new(),
            outbox: Outbox::new(),
            completions: Vec::new(),
            stats: L1Stats::default(),
            faults: FaultState::none(),
        }
    }

    /// This core's id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of cores in the machine (reset broadcasts).
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Number of L2 tiles (home interleaving).
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// This controller's network address.
    pub fn agent(&self) -> Agent {
        Agent::L1(self.id)
    }

    /// The home L2 tile of `line`. Mirrors
    /// `MachineShape::home_tile` — the two must agree or requests and
    /// memory-controller routing diverge.
    pub fn home(&self, line: LineAddr) -> Agent {
        Agent::L2(line.home_banked(self.n_tiles, self.l2_banks))
    }

    /// Queues `msg` to `dst`, charged with the tag-array issue latency.
    pub fn send(&mut self, now: Cycle, dst: Agent, msg: Msg) {
        self.outbox.push(
            now + self.issue_latency,
            NetMsg {
                src: self.agent(),
                dst,
                msg,
            },
        );
    }

    /// Whether a new transaction may start on `line` (no MSHR and no
    /// in-flight writeback).
    pub fn line_free(&self, line: LineAddr) -> bool {
        !self.mshrs.contains(line) && self.wb.get(line).is_none()
    }

    /// Sends the directory Unblock that closes an acknowledged grant.
    pub fn send_unblock(&mut self, now: Cycle, line: LineAddr) {
        let home = self.home(line);
        let from = self.id;
        self.send(now, home, Msg::Unblock { line, from });
    }

    /// Parks an evicted line in the writeback buffer and sends the
    /// matching PUT to its home tile: PutE for clean lines, PutM (with
    /// the given timestamp/epoch) for dirty ones.
    pub fn park_writeback(
        &mut self,
        now: Cycle,
        line: LineAddr,
        data: LineData,
        dirty: bool,
        ts: Ts,
        epoch: Epoch,
    ) {
        self.wb.insert(line, data, dirty, ts, epoch);
        let home = self.home(line);
        let msg = if dirty {
            Msg::PutM {
                line,
                data,
                ts,
                epoch,
            }
        } else {
            Msg::PutE { line }
        };
        self.send(now, home, msg);
    }

    /// Installs a line delivered by a data response: replaces a
    /// resident copy in place, otherwise inserts — never displacing a
    /// line with an in-flight MSHR. The policy writes back (or drops)
    /// the victim of an [`Install::Evicted`] outcome.
    pub fn install(&mut self, now: Cycle, line: LineAddr, entry: L) -> Install<L> {
        if let Some(resident) = self.cache.peek_mut(line) {
            *resident = entry;
            return Install::Done;
        }
        let mshrs = &self.mshrs;
        let outcome = self
            .cache
            .insert(line, entry, now.as_u64(), |la, _| !mshrs.contains(la));
        match outcome {
            InsertOutcome::Installed => Install::Done,
            InsertOutcome::Evicted(victim, old) => Install::Evicted(victim, old),
            InsertOutcome::SetFull => Install::NoWay,
        }
    }
}

/// A coherence protocol's L1 transition rules, layered over an
/// [`L1Chassis`].
///
/// Policies hold only protocol-specific state (timestamp tables,
/// configuration); everything structural lives in the chassis handed to
/// every method. [`L1Ctl`] wires a policy + chassis pair into the full
/// [`L1Controller`] surface.
pub trait L1Policy: Send {
    /// Per-line protocol state (Invalid is represented by absence).
    type Line: Copy + std::fmt::Debug + Send;
    /// Per-miss MSHR payload.
    type Mshr: std::fmt::Debug + Send;

    /// Attempts a core operation (load/store/RMW/fence).
    fn submit(
        &mut self,
        ch: &mut L1Chassis<Self::Line, Self::Mshr>,
        now: Cycle,
        op: CoreOp,
    ) -> Submit;

    /// Delivers one network message.
    fn handle_message(
        &mut self,
        ch: &mut L1Chassis<Self::Line, Self::Mshr>,
        now: Cycle,
        src: Agent,
        msg: Msg,
    );

    /// Classifies a resident line's current core-facing permission for
    /// [`CacheController::access_lines`]. The conservative default
    /// (read-only) keeps every axiom trivially satisfied for policies
    /// that don't opt in; MESI and TSO-CC override it.
    fn line_access(&self, _line: &Self::Line) -> LineAccess {
        LineAccess::Read
    }
}

/// An L1 controller assembled from an [`L1Chassis`] and an
/// [`L1Policy`]: the concrete `MesiL1` / `TsoCcL1` types are aliases of
/// this.
#[derive(Debug)]
pub struct L1Ctl<P: L1Policy> {
    /// The protocol-independent machinery.
    pub chassis: L1Chassis<P::Line, P::Mshr>,
    /// The protocol's transition rules and private state.
    pub policy: P,
}

impl<P: L1Policy> L1Ctl<P> {
    /// Assembles a controller.
    pub fn assemble(chassis: L1Chassis<P::Line, P::Mshr>, policy: P) -> Self {
        L1Ctl { chassis, policy }
    }
}

impl<P: L1Policy> CacheController for L1Ctl<P> {
    fn handle_message(&mut self, now: Cycle, src: Agent, msg: Msg) {
        self.policy.handle_message(&mut self.chassis, now, src, msg);
    }

    fn tick(&mut self, _now: Cycle) {}

    fn drain_outbox(&mut self, now: Cycle, out: &mut Vec<NetMsg>) {
        self.chassis.outbox.drain_ready_into(now, out);
    }

    fn is_quiescent(&self) -> bool {
        self.chassis.mshrs.is_empty()
            && self.chassis.wb.is_empty()
            && self.chassis.outbox.is_empty()
    }

    fn next_event(&self) -> Cycle {
        // MSHRs and writeback entries complete on message arrival; the
        // only self-driven action is injecting queued outbox messages.
        self.chassis.outbox.next_ready()
    }

    fn probe(&self) -> CtrlProbe {
        let mut mshr_lines: Vec<LineAddr> = self.chassis.mshrs.iter().map(|(l, _)| l).collect();
        mshr_lines.sort_unstable();
        let mut wb_lines: Vec<LineAddr> = self.chassis.wb.lines().collect();
        wb_lines.sort_unstable();
        CtrlProbe {
            mshr_lines,
            wb_lines,
            busy: Vec::new(),
            replay: 0,
            outbox: self.chassis.outbox.len(),
        }
    }

    fn access_lines(&self) -> Vec<(LineAddr, LineAccess)> {
        let mut lines: Vec<(LineAddr, LineAccess)> = self
            .chassis
            .cache
            .iter()
            .map(|(line, l)| (line, self.policy.line_access(l)))
            .collect();
        lines.sort_unstable();
        lines
    }
}

impl<P: L1Policy> L1Controller for L1Ctl<P> {
    fn submit(&mut self, now: Cycle, op: CoreOp) -> Submit {
        self.policy.submit(&mut self.chassis, now, op)
    }

    fn drain_completions(&mut self, out: &mut Vec<Completion>) {
        out.append(&mut self.chassis.completions);
    }

    fn stats(&self) -> &L1Stats {
        &self.chassis.stats
    }
}

// ---------------------------------------------------------------------------
// L2 chassis

/// One in-flight directory transaction: the protocol's state machine
/// `K` plus the bookkeeping every blocking directory shares — whether a
/// requester Unblock and/or owner data are still owed, and the requests
/// queued behind the line.
#[derive(Debug)]
pub struct Txn<K> {
    /// Protocol-specific transaction state.
    pub kind: K,
    /// A requester Unblock is still outstanding.
    pub need_unblock: bool,
    /// Owner-supplied data (downgrade/recall/acks) is still
    /// outstanding.
    pub need_owner_data: bool,
    /// Requests that arrived while the line was busy, replayed in
    /// arrival order once the transaction finishes.
    pub waiting: VecDeque<(Agent, Msg)>,
}

impl<K> Txn<K> {
    /// A fresh transaction with an empty waiting queue.
    pub fn new(kind: K, need_unblock: bool, need_owner_data: bool) -> Self {
        Txn {
            kind,
            need_unblock,
            need_owner_data,
            waiting: VecDeque::new(),
        }
    }
}

/// The protocol-independent core of an L2 tile controller: geometry,
/// the line array, the busy (transaction) table, the replay queue, the
/// outbox and statistics.
#[derive(Debug)]
pub struct L2Chassis<L, K> {
    tile: usize,
    n_cores: usize,
    n_mem: usize,
    latency: u64,
    /// The data/directory array.
    pub cache: CacheArray<L>,
    /// In-flight transactions, one per line.
    pub busy: LineMap<Txn<K>>,
    /// Requests unblocked by a finished transaction, reprocessed on the
    /// same cycle's tick.
    pub replay: VecDeque<(Agent, Msg)>,
    /// Outgoing messages, held for the modelled array latency.
    pub outbox: Outbox,
    /// Per-tile statistics.
    pub stats: L2Stats,
    /// The fault-injection seam: inert by default, armed by the
    /// protocol factory when a [`tsocc_faults::FaultPlan`] targets this
    /// tile. Policies consult it at their mutation hook sites.
    pub faults: FaultState,
}

impl<L: Copy, K> L2Chassis<L, K> {
    /// Creates the chassis for tile `tile`.
    pub fn new(
        tile: usize,
        n_cores: usize,
        n_mem: usize,
        latency: u64,
        params: CacheParams,
    ) -> Self {
        L2Chassis {
            tile,
            n_cores,
            n_mem,
            latency,
            cache: CacheArray::new(params),
            busy: LineMap::new(),
            replay: VecDeque::new(),
            outbox: Outbox::new(),
            stats: L2Stats::default(),
            faults: FaultState::none(),
        }
    }

    /// This tile's index.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Number of cores (invalidation fan-out).
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// This controller's network address.
    pub fn agent(&self) -> Agent {
        Agent::L2(self.tile)
    }

    /// The memory controller backing this tile.
    pub fn mem(&self) -> Agent {
        Agent::Mem(self.tile % self.n_mem)
    }

    /// Queues `msg` to `dst`, charged with the array access latency.
    pub fn send(&mut self, now: Cycle, dst: Agent, msg: Msg) {
        self.outbox.push(
            now + self.latency,
            NetMsg {
                src: self.agent(),
                dst,
                msg,
            },
        );
    }

    /// Opens a transaction on `line`.
    ///
    /// # Panics
    ///
    /// Panics if the line is already busy (requests against busy lines
    /// queue in [`Txn::waiting`] and never reach the policy).
    pub fn begin(&mut self, line: LineAddr, txn: Txn<K>) {
        let prev = self.busy.insert(line, txn);
        assert!(
            prev.is_none(),
            "L2[{}]: double transaction on {line}",
            self.tile
        );
    }

    /// Finishes the transaction on `line` if all terminal events
    /// (Unblock, owner data) have arrived, releasing queued requests to
    /// the replay queue.
    pub fn maybe_finish(&mut self, line: LineAddr) {
        let done = self
            .busy
            .get(line)
            .is_some_and(|t| !t.need_unblock && !t.need_owner_data);
        if done {
            let txn = self.busy.remove(line).expect("checked");
            self.replay.extend(txn.waiting);
        }
    }

    /// Unconditionally closes the transaction on `line`, releasing its
    /// queued requests, and returns it (for terminal handlers like
    /// RecallData that consume the transaction state). `None` when the
    /// line was idle — policies turn that into their own "stray
    /// message" panic with protocol context.
    pub fn finish(&mut self, line: LineAddr) -> Option<Txn<K>> {
        let mut txn = self.busy.remove(line)?;
        self.replay.extend(std::mem::take(&mut txn.waiting));
        Some(txn)
    }

    /// Installs a fetched line; returns the displaced victim (which the
    /// policy evicts) if one was chosen. Never displaces a busy line.
    ///
    /// # Panics
    ///
    /// Panics if every way of the set is pinned busy (directories size
    /// their busy tables so this cannot happen).
    pub fn install(&mut self, now: Cycle, line: LineAddr, entry: L) -> Option<(LineAddr, L)> {
        let busy = &self.busy;
        let outcome = self
            .cache
            .insert(line, entry, now.as_u64(), |la, _| !busy.contains_key(la));
        match outcome {
            InsertOutcome::Installed => None,
            InsertOutcome::Evicted(victim, old) => Some((victim, old)),
            InsertOutcome::SetFull => {
                panic!("L2[{}]: no evictable way for {line}", self.tile)
            }
        }
    }
}

/// A coherence protocol's L2 (directory) transition rules, layered over
/// an [`L2Chassis`].
///
/// The chassis driver ([`L2Ctl`]) owns the blocking-directory
/// discipline shared by every protocol: requests against busy lines
/// queue and replay in order, Unblock messages close grants, and the
/// replay queue drains on tick. Policies see only requests against idle
/// lines plus their own protocol's response messages.
pub trait L2Policy: Send {
    /// Per-line directory state (absence = not present).
    type Line: Copy + std::fmt::Debug + Send;
    /// Protocol-specific transaction state machine.
    type Busy: std::fmt::Debug + Send;

    /// A GetS (read request) against an idle line.
    fn gets(
        &mut self,
        ch: &mut L2Chassis<Self::Line, Self::Busy>,
        now: Cycle,
        line: LineAddr,
        requester: usize,
    );

    /// A GetX (write/upgrade request) against an idle line.
    fn getx(
        &mut self,
        ch: &mut L2Chassis<Self::Line, Self::Busy>,
        now: Cycle,
        line: LineAddr,
        requester: usize,
    );

    /// A PutE (`data == None`) or PutM (`data == Some`) against an idle
    /// line; `ts`/`epoch` carry the writer's timestamp for protocols
    /// that track one.
    #[allow(clippy::too_many_arguments)]
    fn put(
        &mut self,
        ch: &mut L2Chassis<Self::Line, Self::Busy>,
        now: Cycle,
        line: LineAddr,
        from: usize,
        data: Option<LineData>,
        ts: Ts,
        epoch: Epoch,
    );

    /// Every message that is neither a queueable request nor an
    /// Unblock: data/ack responses, recalls, resets.
    fn handle_message(
        &mut self,
        ch: &mut L2Chassis<Self::Line, Self::Busy>,
        now: Cycle,
        src: Agent,
        msg: Msg,
    );
}

/// An L2 tile controller assembled from an [`L2Chassis`] and an
/// [`L2Policy`]: the concrete `MesiL2` / `TsoCcL2` types are aliases of
/// this.
#[derive(Debug)]
pub struct L2Ctl<P: L2Policy> {
    /// The protocol-independent machinery.
    pub chassis: L2Chassis<P::Line, P::Busy>,
    /// The protocol's transition rules and private state.
    pub policy: P,
}

impl<P: L2Policy> L2Ctl<P> {
    /// Assembles a controller.
    pub fn assemble(chassis: L2Chassis<P::Line, P::Busy>, policy: P) -> Self {
        L2Ctl { chassis, policy }
    }

    /// Queues the request if its line is busy, otherwise dispatches it
    /// to the policy — the blocking-directory discipline.
    fn process_request(&mut self, now: Cycle, src: Agent, msg: Msg) {
        let line = match &msg {
            Msg::GetS { line } | Msg::GetX { line } | Msg::PutE { line } => *line,
            Msg::PutM { line, .. } => *line,
            other => unreachable!("not a queueable request: {other:?}"),
        };
        if let Some(txn) = self.chassis.busy.get_mut(line) {
            txn.waiting.push_back((src, msg));
            return;
        }
        let requester = match src {
            Agent::L1(i) => i,
            other => panic!("request from non-L1 {other}"),
        };
        match msg {
            Msg::GetS { .. } => self.policy.gets(&mut self.chassis, now, line, requester),
            Msg::GetX { .. } => self.policy.getx(&mut self.chassis, now, line, requester),
            Msg::PutE { .. } => self.policy.put(
                &mut self.chassis,
                now,
                line,
                requester,
                None,
                Ts::INVALID,
                Epoch::ZERO,
            ),
            Msg::PutM {
                data, ts, epoch, ..
            } => self.policy.put(
                &mut self.chassis,
                now,
                line,
                requester,
                Some(data),
                ts,
                epoch,
            ),
            _ => unreachable!(),
        }
    }
}

impl<P: L2Policy> CacheController for L2Ctl<P> {
    fn handle_message(&mut self, now: Cycle, src: Agent, msg: Msg) {
        match msg {
            Msg::GetS { .. } | Msg::GetX { .. } | Msg::PutE { .. } | Msg::PutM { .. } => {
                self.process_request(now, src, msg);
            }
            Msg::Unblock { line, .. } => {
                let tile = self.chassis.tile;
                let txn = self
                    .chassis
                    .busy
                    .get_mut(line)
                    .unwrap_or_else(|| panic!("L2[{tile}]: Unblock for idle {line}"));
                txn.need_unblock = false;
                self.chassis.maybe_finish(line);
            }
            other => self
                .policy
                .handle_message(&mut self.chassis, now, src, other),
        }
    }

    fn tick(&mut self, now: Cycle) {
        let pending: Vec<_> = self.chassis.replay.drain(..).collect();
        for (src, msg) in pending {
            self.process_request(now, src, msg);
        }
    }

    fn drain_outbox(&mut self, now: Cycle, out: &mut Vec<NetMsg>) {
        self.chassis.outbox.drain_ready_into(now, out);
    }

    fn is_quiescent(&self) -> bool {
        self.chassis.busy.is_empty()
            && self.chassis.replay.is_empty()
            && self.chassis.outbox.is_empty()
    }

    fn next_event(&self) -> Cycle {
        // The replay queue is filled by message handling and drained by
        // the same cycle's tick, so between steps it is empty; if a
        // driver queries mid-cycle anyway, demand an immediate tick.
        if !self.chassis.replay.is_empty() {
            return Cycle::ZERO;
        }
        self.chassis.outbox.next_ready()
    }

    fn probe(&self) -> CtrlProbe {
        let mut busy: Vec<BusyProbe> = self
            .chassis
            .busy
            .iter()
            .map(|(line, txn)| BusyProbe {
                line,
                need_unblock: txn.need_unblock,
                need_owner_data: txn.need_owner_data,
                queued: txn.waiting.len(),
            })
            .collect();
        busy.sort_unstable_by_key(|b| b.line);
        CtrlProbe {
            mshr_lines: Vec::new(),
            wb_lines: Vec::new(),
            busy,
            replay: self.chassis.replay.len(),
            outbox: self.chassis.outbox.len(),
        }
    }
}

impl<P: L2Policy> L2Controller for L2Ctl<P> {
    fn stats(&self) -> &L2Stats {
        &self.chassis.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_mem::Addr;

    #[test]
    fn mshr_table_invariants() {
        let mut t: MshrTable<u32> = MshrTable::new();
        let line = Addr::new(0x40).line();
        assert!(t.is_empty());
        t.alloc(line, 7);
        assert!(t.contains(line));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(line), Some(&7));
        *t.get_mut(line).unwrap() = 9;
        assert_eq!(t.remove(line), Some(9));
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic]
    fn duplicate_mshr_panics() {
        let mut t: MshrTable<u32> = MshrTable::new();
        let line = Addr::new(0x40).line();
        t.alloc(line, 1);
        t.alloc(line, 2);
    }

    #[test]
    fn txn_lifecycle() {
        let mut ch: L2Chassis<u8, u8> = L2Chassis::new(0, 2, 1, 1, CacheParams::new(4, 2));
        let line = Addr::new(0x40).line();
        ch.begin(line, Txn::new(0, true, false));
        ch.maybe_finish(line);
        assert!(ch.busy.contains_key(line), "unblock still owed");
        ch.busy.get_mut(line).unwrap().need_unblock = false;
        ch.maybe_finish(line);
        assert!(ch.busy.is_empty());
    }
}
