//! Outgoing-message queue with modelled controller latency.

use std::collections::VecDeque;

use tsocc_sim::Cycle;

use crate::msg::NetMsg;

/// A FIFO of outgoing messages, each held until its ready time.
///
/// Controllers model their internal access latency (e.g. the 30-cycle
/// L2 array access of Table 2) by pushing responses with
/// `ready_at = now + latency`; the system injects them into the mesh
/// once ready. Order is preserved between messages with equal ready
/// times.
///
/// # Examples
///
/// ```
/// use tsocc_coherence::{Agent, Msg, NetMsg, Outbox};
/// use tsocc_mem::Addr;
/// use tsocc_sim::Cycle;
///
/// let mut ob = Outbox::new();
/// let m = NetMsg {
///     src: Agent::L1(0),
///     dst: Agent::L2(0),
///     msg: Msg::GetS { line: Addr::new(0).line() },
/// };
/// ob.push(Cycle::new(10), m.clone());
/// assert!(ob.drain_ready(Cycle::new(9)).is_empty());
/// assert_eq!(ob.drain_ready(Cycle::new(10)), vec![m]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Outbox {
    queue: VecDeque<(Cycle, NetMsg)>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox {
            queue: VecDeque::new(),
        }
    }

    /// Enqueues `msg` to become injectable at `ready_at`.
    ///
    /// Ready times must be pushed in non-decreasing order per outbox;
    /// this holds naturally because controllers add a constant latency
    /// to a monotonically advancing `now`. Violations are caught in
    /// debug builds.
    pub fn push(&mut self, ready_at: Cycle, msg: NetMsg) {
        debug_assert!(
            self.queue.back().is_none_or(|(t, _)| *t <= ready_at),
            "outbox ready times must be monotonic"
        );
        self.queue.push_back((ready_at, msg));
    }

    /// Removes and returns every message with `ready_at <= now`.
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<NetMsg> {
        let mut out = Vec::new();
        self.drain_ready_into(now, &mut out);
        out
    }

    /// Appends every message with `ready_at <= now` to `out`, avoiding
    /// a fresh allocation per drain (the run loop reuses one scratch
    /// buffer across all controllers).
    pub fn drain_ready_into(&mut self, now: Cycle, out: &mut Vec<NetMsg>) {
        while let Some((t, _)) = self.queue.front() {
            if *t > now {
                break;
            }
            out.push(self.queue.pop_front().expect("peeked").1);
        }
    }

    /// The ready time of the oldest pending message, or [`Cycle::MAX`]
    /// when the outbox is empty. Because ready times are monotonic,
    /// this is the earliest cycle at which a drain can yield anything —
    /// the controller's wake deadline for the event-driven scheduler.
    pub fn next_ready(&self) -> Cycle {
        self.queue.front().map_or(Cycle::MAX, |(t, _)| *t)
    }

    /// Whether no messages are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Agent, Msg};
    use tsocc_mem::Addr;

    fn msg(n: u64) -> NetMsg {
        NetMsg {
            src: Agent::L1(0),
            dst: Agent::L2(0),
            msg: Msg::GetS {
                line: Addr::new(n * 64).line(),
            },
        }
    }

    #[test]
    fn drains_in_fifo_order() {
        let mut ob = Outbox::new();
        ob.push(Cycle::new(5), msg(1));
        ob.push(Cycle::new(5), msg(2));
        ob.push(Cycle::new(8), msg(3));
        let ready = ob.drain_ready(Cycle::new(6));
        assert_eq!(ready, vec![msg(1), msg(2)]);
        assert_eq!(ob.len(), 1);
        assert!(!ob.is_empty());
        assert_eq!(ob.drain_ready(Cycle::new(100)), vec![msg(3)]);
        assert!(ob.is_empty());
    }

    #[test]
    fn nothing_ready_before_time() {
        let mut ob = Outbox::new();
        ob.push(Cycle::new(5), msg(1));
        assert!(ob.drain_ready(Cycle::new(4)).is_empty());
    }

    #[test]
    fn next_ready_tracks_head() {
        let mut ob = Outbox::new();
        assert_eq!(ob.next_ready(), Cycle::MAX);
        ob.push(Cycle::new(5), msg(1));
        ob.push(Cycle::new(8), msg(2));
        assert_eq!(ob.next_ready(), Cycle::new(5));
        let mut out = Vec::new();
        ob.drain_ready_into(Cycle::new(5), &mut out);
        assert_eq!(out, vec![msg(1)]);
        assert_eq!(ob.next_ready(), Cycle::new(8));
        ob.drain_ready_into(Cycle::new(8), &mut out);
        assert_eq!(out.len(), 2, "drain appends, preserving prior content");
        assert_eq!(ob.next_ready(), Cycle::MAX);
    }
}
