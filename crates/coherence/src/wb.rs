//! Writeback buffer: resolves eviction/forward races.
//!
//! When an L1 evicts a private line it sends PutE/PutM to the home L2
//! tile, but a forwarded request (FwdGetS/FwdGetX/Recall) for the same
//! line may already be in flight towards the L1. The L1 therefore keeps
//! the evicted line's data in a writeback buffer until the L2's PutAck
//! arrives, and services forwards from that buffer in the meantime.
//! This is the standard resolution used by gem5's Ruby protocols.

use tsocc_mem::{LineAddr, LineData, LineMap};

use crate::msg::{Epoch, Ts};

/// One evicted-but-unacknowledged line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WbEntry {
    /// The evicted data.
    pub data: LineData,
    /// Whether the line was dirty (PutM) or clean (PutE).
    pub dirty: bool,
    /// Last-written timestamp of the line (TSO-CC).
    pub ts: Ts,
    /// Epoch of the writer's timestamp source at eviction.
    pub epoch: Epoch,
    /// Whether a forward already consumed this entry (the eventual
    /// PutAck just drops it; the PUT itself was stale from the L2's
    /// point of view).
    pub forwarded: bool,
}

/// Map of lines with in-flight evictions.
///
/// # Examples
///
/// ```
/// use tsocc_coherence::{Epoch, Ts, WritebackBuffer};
/// use tsocc_mem::{Addr, LineData};
///
/// let mut wb = WritebackBuffer::new();
/// let line = Addr::new(0x40).line();
/// wb.insert(line, LineData::zeroed(), true, Ts::new(3), Epoch::ZERO);
/// assert!(wb.get(line).is_some());
/// wb.remove(line);
/// assert!(wb.get(line).is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct WritebackBuffer {
    entries: LineMap<WbEntry>,
}

impl WritebackBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        WritebackBuffer {
            entries: LineMap::new(),
        }
    }

    /// Records an in-flight eviction.
    ///
    /// # Panics
    ///
    /// Panics if the line already has an in-flight eviction (the L1 can
    /// only evict a resident line, and the line is not resident while an
    /// eviction is pending).
    pub fn insert(&mut self, line: LineAddr, data: LineData, dirty: bool, ts: Ts, epoch: Epoch) {
        let prev = self.entries.insert(
            line,
            WbEntry {
                data,
                dirty,
                ts,
                epoch,
                forwarded: false,
            },
        );
        assert!(prev.is_none(), "double eviction of {line}");
    }

    /// Looks up an in-flight eviction.
    pub fn get(&self, line: LineAddr) -> Option<&WbEntry> {
        self.entries.get(line)
    }

    /// Mutable lookup (to mark `forwarded`).
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut WbEntry> {
        self.entries.get_mut(line)
    }

    /// Completes an eviction (PutAck received).
    pub fn remove(&mut self, line: LineAddr) -> Option<WbEntry> {
        self.entries.remove(line)
    }

    /// Iterates over the lines with in-flight evictions.
    pub fn lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.entries.iter().map(|(l, _)| l)
    }

    /// Whether no evictions are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of in-flight evictions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_mem::Addr;

    #[test]
    fn forward_marking() {
        let mut wb = WritebackBuffer::new();
        let line = Addr::new(0x40).line();
        wb.insert(line, LineData::zeroed(), false, Ts::INVALID, Epoch::ZERO);
        wb.get_mut(line).unwrap().forwarded = true;
        assert!(wb.get(line).unwrap().forwarded);
        let e = wb.remove(line).unwrap();
        assert!(e.forwarded);
        assert!(wb.is_empty());
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let mut wb = WritebackBuffer::new();
        let line = Addr::new(0x40).line();
        wb.insert(line, LineData::zeroed(), false, Ts::INVALID, Epoch::ZERO);
        wb.insert(line, LineData::zeroed(), true, Ts::INVALID, Epoch::ZERO);
    }

    #[test]
    fn len_tracks_entries() {
        let mut wb = WritebackBuffer::new();
        assert_eq!(wb.len(), 0);
        wb.insert(
            Addr::new(0x40).line(),
            LineData::zeroed(),
            true,
            Ts::new(1),
            Epoch::ZERO,
        );
        wb.insert(
            Addr::new(0x80).line(),
            LineData::zeroed(),
            false,
            Ts::INVALID,
            Epoch::ZERO,
        );
        assert_eq!(wb.len(), 2);
    }
}
