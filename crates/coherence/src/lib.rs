#![warn(missing_docs)]

//! Protocol-agnostic coherence plumbing shared by the MESI baseline and
//! the TSO-CC protocol.
//!
//! This crate defines:
//!
//! - the on-chip [`Msg`] vocabulary and [`Agent`] addressing,
//! - logical timestamps ([`Ts`]) and epoch-ids ([`Epoch`]) used by
//!   TSO-CC's transitive-reduction optimization (paper §3.3/§3.5),
//! - the controller interfaces ([`L1Controller`], [`CacheController`])
//!   through which the system assembly drives every protocol,
//! - the shared controller [`chassis`] ([`L1Chassis`], [`L2Chassis`],
//!   [`MshrTable`], [`Txn`]) that hosts each protocol's transition
//!   policy ([`L1Policy`], [`L2Policy`]),
//! - an [`Outbox`] with modelled controller latency,
//! - shared statistics ([`L1Stats`], [`L2Stats`]) matching the paper's
//!   figure breakdowns,
//! - the protocol-independent [`MemCtrl`] DRAM controller,
//! - a [`WritebackBuffer`] that holds evicted lines until the directory
//!   acknowledges the writeback (needed to resolve eviction/forward
//!   races in both protocols).
//!
//! Design note: both protocols share a single `Msg` enum (each uses a
//! subset) rather than being generic over a message type. This keeps the
//! system assembly monomorphic and the protocol code legible, at the
//! cost of a few variants that MESI never sends.

pub mod chassis;
pub mod iface;
pub mod memctrl;
pub mod msg;
pub mod outbox;
pub mod stats;
pub mod wb;

pub use chassis::{
    Install, L1Chassis, L1Ctl, L1Policy, L2Chassis, L2Ctl, L2Policy, MshrTable, Txn,
};
pub use iface::{
    BusyProbe, CacheController, CoherenceDiscipline, Completion, CoreOp, CtrlProbe, L1Controller,
    L2Controller, LineAccess, MachineShape, ProtocolFactory, ProtocolHandle, Submit,
};
pub use memctrl::MemCtrl;
pub use msg::{Agent, Epoch, Grant, Msg, NetMsg, Ts, TsSource};
// Re-exported so protocol crates can fill `MachineShape::mesh` without
// depending on the NoC crate directly.
pub use outbox::Outbox;
pub use stats::{L1Stats, L2Stats, SelfInvCause};
// Re-exported so protocol crates and the system assembly share one
// fault vocabulary without each depending on the faults crate.
pub use tsocc_faults::{FaultPlan, FaultState, NocFault, ProtocolFault, StepperFault};
pub use tsocc_noc::MeshTopology;
pub use wb::WritebackBuffer;

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");
