//! Controller interfaces through which the system assembly drives the
//! protocols.

use tsocc_mem::Addr;
use tsocc_sim::Cycle;

use crate::msg::{Agent, Msg, NetMsg};
use crate::stats::L1Stats;
use tsocc_isa::RmwOp;

/// A memory operation submitted by the core pipeline / write buffer to
/// its L1 controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreOp {
    /// Read one word.
    Load(Addr),
    /// Write one word (issued when the store reaches the write-buffer
    /// head).
    Store(Addr, u64),
    /// Atomic read-modify-write (core guarantees the write buffer is
    /// empty).
    Rmw(Addr, RmwOp),
    /// Full fence (core guarantees the write buffer is empty).
    Fence,
}

impl CoreOp {
    /// The access address, if any.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            CoreOp::Load(a) | CoreOp::Store(a, _) | CoreOp::Rmw(a, _) => Some(*a),
            CoreOp::Fence => None,
        }
    }
}

/// Immediate result of submitting a [`CoreOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Submit {
    /// The operation hit in the L1 and is complete; for loads and RMWs
    /// the returned word is the (old) value. The core charges the L1 hit
    /// latency itself.
    Hit(u64),
    /// The operation missed and was accepted; a [`Completion`] will be
    /// produced later.
    Miss,
    /// The controller cannot accept the operation right now (MSHR
    /// conflict on the same line); retry next cycle.
    Retry,
}

/// A finished miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// An outstanding load or RMW finished with this value.
    Load(u64),
    /// An outstanding store finished (write-buffer entry may retire).
    Store,
}

/// Common behaviour of every coherence controller (L1, L2 tile, memory
/// controller): receive network messages, advance internal time, and
/// emit outgoing messages.
pub trait CacheController {
    /// Delivers one message from the network.
    fn handle_message(&mut self, now: Cycle, src: Agent, msg: Msg);

    /// Advances internal state by one cycle (retries, sweeps).
    fn tick(&mut self, now: Cycle);

    /// Takes every outgoing message that is ready to inject at `now`.
    fn drain_outbox(&mut self, now: Cycle) -> Vec<NetMsg>;

    /// Whether this controller has no in-flight transactions and no
    /// queued messages (used for run-loop termination diagnostics).
    fn is_quiescent(&self) -> bool;
}

/// The core-facing interface of an L1 controller, implemented by both
/// the MESI and the TSO-CC L1s.
pub trait L1Controller: CacheController {
    /// Attempts to perform `op`.
    fn submit(&mut self, now: Cycle, op: CoreOp) -> Submit;

    /// Takes all miss completions that became ready.
    fn pop_completions(&mut self) -> Vec<Completion>;

    /// Per-L1 statistics for the paper's Figures 5–9.
    fn stats(&self) -> &L1Stats;
}

/// The system-facing interface of an L2 tile controller.
pub trait L2Controller: CacheController {
    /// Per-tile statistics.
    fn stats(&self) -> &crate::stats::L2Stats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_op_addr() {
        assert_eq!(CoreOp::Load(Addr::new(8)).addr(), Some(Addr::new(8)));
        assert_eq!(
            CoreOp::Store(Addr::new(16), 1).addr(),
            Some(Addr::new(16))
        );
        assert_eq!(CoreOp::Fence.addr(), None);
    }
}
