//! Controller interfaces through which the system assembly drives the
//! protocols.

use tsocc_faults::FaultPlan;
use tsocc_mem::{Addr, LineAddr};
use tsocc_sim::Cycle;

use crate::msg::{Agent, Msg, NetMsg};
use crate::stats::L1Stats;
use tsocc_isa::RmwOp;

/// A memory operation submitted by the core pipeline / write buffer to
/// its L1 controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreOp {
    /// Read one word.
    Load(Addr),
    /// Write one word (issued when the store reaches the write-buffer
    /// head).
    Store(Addr, u64),
    /// Atomic read-modify-write (core guarantees the write buffer is
    /// empty).
    Rmw(Addr, RmwOp),
    /// Full fence (core guarantees the write buffer is empty).
    Fence,
}

impl CoreOp {
    /// The access address, if any.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            CoreOp::Load(a) | CoreOp::Store(a, _) | CoreOp::Rmw(a, _) => Some(*a),
            CoreOp::Fence => None,
        }
    }
}

/// Immediate result of submitting a [`CoreOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Submit {
    /// The operation hit in the L1 and is complete; for loads and RMWs
    /// the returned word is the (old) value. The core charges the L1 hit
    /// latency itself.
    Hit(u64),
    /// The operation missed and was accepted; a [`Completion`] will be
    /// produced later.
    Miss,
    /// The controller cannot accept the operation right now (MSHR
    /// conflict on the same line); retry next cycle.
    Retry,
}

/// A finished miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// An outstanding load or RMW finished with this value.
    Load(u64),
    /// An outstanding store finished (write-buffer entry may retire).
    Store,
}

/// The access permission a resident cache line currently grants, as
/// reported by [`CacheController::access_lines`]. The model checker's
/// coherence axioms are phrased over this classification: at most one
/// L1 may hold [`LineAccess::Write`] on a line at any instant, and
/// under an eager ([`CoherenceDiscipline::Eager`]) protocol a writer
/// excludes every reader.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LineAccess {
    /// The line may be read but not written (Shared/SharedRO states).
    Read,
    /// The line may be written (Exclusive/Modified states — Exclusive
    /// counts because the upgrade to Modified is silent).
    Write,
}

/// How a protocol propagates writes to sharers, declared by
/// [`ProtocolFactory::coherence_discipline`] so protocol-agnostic
/// verifiers know which coherence axioms apply.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CoherenceDiscipline {
    /// Invalidation-based: a write eagerly invalidates every sharer, so
    /// a writer and a reader of the same line never coexist (strict
    /// single-writer/multiple-reader). MESI and its variants.
    #[default]
    Eager,
    /// Consistency-directed lazy coherence: sharers may legally hold
    /// stale copies while a writer proceeds (self-invalidation plus
    /// timestamps bound the staleness instead). TSO-CC. Only the
    /// one-writer-at-a-time half of SWMR applies.
    Lazy,
}

/// One in-flight directory transaction as seen by a [`CtrlProbe`]:
/// which line is blocked and which terminal events it still waits for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusyProbe {
    /// The blocked line.
    pub line: LineAddr,
    /// A requester Unblock is still outstanding.
    pub need_unblock: bool,
    /// Owner-supplied data (downgrade/recall/acks) is still
    /// outstanding.
    pub need_owner_data: bool,
    /// Requests queued behind the busy line.
    pub queued: usize,
}

/// A deterministic snapshot of a controller's outstanding work, used
/// by the hang-diagnosis layer to assemble a structured report (and a
/// wait-for graph) when a run deadlocks or times out. All line lists
/// are sorted by line address.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CtrlProbe {
    /// Lines with an in-flight L1 miss (MSHR allocated).
    pub mshr_lines: Vec<LineAddr>,
    /// Lines parked in the L1 writeback buffer awaiting a PutAck.
    pub wb_lines: Vec<LineAddr>,
    /// In-flight L2 directory transactions.
    pub busy: Vec<BusyProbe>,
    /// Requests sitting in the L2 replay queue.
    pub replay: usize,
    /// Messages queued in the outbox (latency not yet elapsed).
    pub outbox: usize,
}

impl CtrlProbe {
    /// Whether the controller has no outstanding work at all.
    pub fn is_empty(&self) -> bool {
        self.mshr_lines.is_empty()
            && self.wb_lines.is_empty()
            && self.busy.is_empty()
            && self.replay == 0
            && self.outbox == 0
    }
}

/// Common behaviour of every coherence controller (L1, L2 tile, memory
/// controller): receive network messages, advance internal time, and
/// emit outgoing messages.
///
/// Controllers must be `Send`: the sharded parallel stepper moves
/// disjoint slices of controllers onto scoped worker threads (they are
/// never shared — each controller is owned by exactly one shard).
pub trait CacheController: Send {
    /// Delivers one message from the network.
    fn handle_message(&mut self, now: Cycle, src: Agent, msg: Msg);

    /// Advances internal state by one cycle (retries, sweeps).
    fn tick(&mut self, now: Cycle);

    /// Appends every outgoing message that is ready to inject at `now`
    /// to `out` (the run loop passes one reusable scratch buffer to all
    /// controllers instead of allocating a `Vec` per controller per
    /// cycle).
    fn drain_outbox(&mut self, now: Cycle, out: &mut Vec<NetMsg>);

    /// Whether this controller has no in-flight transactions and no
    /// queued messages (used for run-loop termination diagnostics).
    fn is_quiescent(&self) -> bool;

    /// The earliest future cycle at which this controller will act on
    /// its own — i.e. at which [`CacheController::tick`] or
    /// [`CacheController::drain_outbox`] could do anything — assuming
    /// no further messages are delivered to it. [`Cycle::MAX`] when the
    /// controller is purely waiting on the network (or idle).
    ///
    /// This is the wake-list contract of the event-driven scheduler:
    /// between "now" and the returned cycle, ticking and draining the
    /// controller must be a state-free no-op, so the system may skip
    /// those cycles entirely without changing any simulated outcome.
    fn next_event(&self) -> Cycle;

    /// A snapshot of this controller's outstanding work for hang
    /// diagnosis. The default (an empty probe) suits controllers with
    /// no line-granular state worth reporting; the chassis-based L1
    /// and L2 controllers override it.
    fn probe(&self) -> CtrlProbe {
        CtrlProbe::default()
    }

    /// Every resident line together with the access permission it
    /// currently grants — the enabled-transition/permission view the
    /// model checker's coherence axioms are evaluated over. Sorted by
    /// line address. The default (no lines) suits controllers without
    /// core-facing permissions (L2 tiles, memory controllers); the
    /// chassis-based L1 overrides it via
    /// [`L1Policy::line_access`](crate::L1Policy::line_access).
    fn access_lines(&self) -> Vec<(LineAddr, LineAccess)> {
        Vec::new()
    }
}

/// The core-facing interface of an L1 controller, implemented by both
/// the MESI and the TSO-CC L1s.
pub trait L1Controller: CacheController {
    /// Attempts to perform `op`.
    fn submit(&mut self, now: Cycle, op: CoreOp) -> Submit;

    /// Appends every miss completion that became ready to `out`,
    /// leaving the controller's completion queue empty. Mirrors
    /// [`CacheController::drain_outbox`]: the core passes one reusable
    /// scratch buffer every cycle, so the core↔L1 boundary allocates
    /// nothing per cycle.
    fn drain_completions(&mut self, out: &mut Vec<Completion>);

    /// Per-L1 statistics for the paper's Figures 5–9.
    fn stats(&self) -> &L1Stats;
}

/// The system-facing interface of an L2 tile controller.
pub trait L2Controller: CacheController {
    /// Per-tile statistics.
    fn stats(&self) -> &crate::stats::L2Stats;
}

/// Machine geometry handed to a [`ProtocolFactory`] when it builds a
/// controller: everything protocol-independent about the target system.
#[derive(Clone, Copy, Debug)]
pub struct MachineShape {
    /// Number of cores (one private L1 each).
    pub n_cores: usize,
    /// Number of L2 tiles.
    pub n_tiles: usize,
    /// Number of memory controllers.
    pub n_mem: usize,
    /// The on-chip mesh carrying all traffic; need not be square
    /// (the paper's 32-core machine is 4×8, the 128-core climb 8×16)
    /// but must hold exactly [`MachineShape::n_tiles`] routers.
    pub mesh: tsocc_noc::MeshTopology,
    /// L2 banks per tile: the line→home-tile interleaving maps `banks`
    /// consecutive lines to one tile (see [`MachineShape::home_tile`]).
    /// `1` everywhere the paper's Table 2 machine is concerned; the
    /// 128-core configuration uses `2` so a tile's slice of a working
    /// set stays contiguous enough to exploit spatial locality.
    pub l2_banks: usize,
    /// L1 geometry.
    pub l1_params: tsocc_mem::CacheParams,
    /// L2 tile geometry.
    pub l2_params: tsocc_mem::CacheParams,
    /// L1 tag-array latency charged before an outgoing request (cycles).
    pub l1_issue_latency: u64,
    /// L2 array access latency (cycles).
    pub l2_latency: u64,
    /// The fault-injection plan ([`FaultPlan::none`] everywhere real
    /// experiments are concerned). Factories filter the protocol-layer
    /// mutation down to per-controller
    /// [`FaultState`](tsocc_faults::FaultState)s at build time.
    pub faults: FaultPlan,
}

impl MachineShape {
    /// The home L2 tile of `line` under this machine's interleaving:
    /// `(line / l2_banks) % n_tiles`. Every agent that maps an address
    /// to a tile — L1 request routing, the memory-controller choice —
    /// must go through this one function (or [`L1Chassis::home`], which
    /// mirrors it) so the mapping can never diverge between layers.
    ///
    /// [`L1Chassis::home`]: crate::L1Chassis::home
    pub fn home_tile(&self, line: tsocc_mem::LineAddr) -> usize {
        line.home_banked(self.n_tiles, self.l2_banks)
    }

    /// Protocol-independent geometry sanity checks. Protocols layer
    /// their own limits on top via
    /// [`ProtocolFactory::validate_shape`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cores == 0 {
            return Err("machine needs at least one core".to_string());
        }
        if self.n_tiles == 0 {
            return Err("machine needs at least one L2 tile".to_string());
        }
        if self.n_mem == 0 {
            return Err("machine needs at least one memory controller".to_string());
        }
        let routers = self.mesh.rows() * self.mesh.cols();
        if routers != self.n_tiles {
            return Err(format!(
                "{} mesh has {} routers for {} L2 tiles",
                self.mesh, routers, self.n_tiles
            ));
        }
        if self.l2_banks == 0 {
            return Err("machine needs at least one L2 bank per tile".to_string());
        }
        Ok(())
    }
}

/// Builds the coherence controllers of one protocol.
///
/// This is the seam that keeps the system assembly (`tsocc` crate)
/// protocol-agnostic: the assembly asks the factory for one
/// [`L1Controller`] per core and one [`L2Controller`] per tile, and
/// never names a concrete protocol. New protocols plug in by
/// implementing this trait in their own crate — no change to the
/// assembly layer is needed.
///
/// Factories must be `Send + Sync`: the sweep engine shares one factory
/// across worker threads building independent systems.
pub trait ProtocolFactory: Send + Sync {
    /// The configuration's display name (the paper's figure legends).
    fn protocol_name(&self) -> String;

    /// Builds the private L1 controller of core `core`.
    fn l1(&self, core: usize, shape: &MachineShape) -> Box<dyn L1Controller>;

    /// Builds the L2 controller of tile `tile`.
    fn l2(&self, tile: usize, shape: &MachineShape) -> Box<dyn L2Controller>;

    /// Checks that this protocol can be instantiated for `shape`,
    /// **before** any controller is built — a clean configuration error
    /// instead of a panic (or worse, a silent shift overflow in a
    /// directory bit-vector) deep inside construction.
    ///
    /// The default accepts every geometrically valid shape; protocols
    /// with representation limits (e.g. a full-bit-vector directory
    /// capped at the sharer-set width) override this and layer their
    /// capacity check on top of [`MachineShape::validate`].
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    fn validate_shape(&self, shape: &MachineShape) -> Result<(), String> {
        shape.validate()
    }

    /// Which coherence axioms this protocol promises (see
    /// [`CoherenceDiscipline`]). The default is the classic eager
    /// invalidation discipline; lazy consistency-directed protocols
    /// (TSO-CC) override it so verifiers don't flag their legal stale
    /// sharers.
    fn coherence_discipline(&self) -> CoherenceDiscipline {
        CoherenceDiscipline::Eager
    }
}

/// A shared, thread-safe handle to a protocol factory — what
/// `SystemConfig` carries instead of a closed protocol enum.
///
/// Cheap to clone (an [`std::sync::Arc`] under the hood) and
/// constructible from any [`ProtocolFactory`] via `From`/`Into`, so
/// APIs typically accept `impl Into<ProtocolHandle>`.
#[derive(Clone)]
pub struct ProtocolHandle(std::sync::Arc<dyn ProtocolFactory>);

impl<F: ProtocolFactory + 'static> From<F> for ProtocolHandle {
    fn from(f: F) -> ProtocolHandle {
        ProtocolHandle(std::sync::Arc::new(f))
    }
}

impl std::ops::Deref for ProtocolHandle {
    type Target = dyn ProtocolFactory;

    fn deref(&self) -> &Self::Target {
        &*self.0
    }
}

impl std::fmt::Debug for ProtocolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ProtocolHandle")
            .field(&self.protocol_name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_op_addr() {
        assert_eq!(CoreOp::Load(Addr::new(8)).addr(), Some(Addr::new(8)));
        assert_eq!(CoreOp::Store(Addr::new(16), 1).addr(), Some(Addr::new(16)));
        assert_eq!(CoreOp::Fence.addr(), None);
    }

    fn shape_4t() -> MachineShape {
        MachineShape {
            n_cores: 4,
            n_tiles: 4,
            n_mem: 2,
            mesh: tsocc_noc::MeshTopology::for_tiles(4),
            l2_banks: 1,
            l1_params: tsocc_mem::CacheParams::new(8, 2),
            l2_params: tsocc_mem::CacheParams::new(16, 4),
            l1_issue_latency: 1,
            l2_latency: 4,
            faults: FaultPlan::none(),
        }
    }

    #[test]
    fn home_tile_follows_bank_interleaving() {
        use tsocc_mem::LineAddr;
        let mut shape = shape_4t();
        assert_eq!(shape.home_tile(LineAddr::new(5)), 1);
        shape.l2_banks = 2;
        // Pairs of lines share a home: 4,5 → tile 2; 6,7 → tile 3.
        assert_eq!(shape.home_tile(LineAddr::new(4)), 2);
        assert_eq!(shape.home_tile(LineAddr::new(5)), 2);
        assert_eq!(shape.home_tile(LineAddr::new(7)), 3);
    }

    #[test]
    fn validate_rejects_mismatched_mesh_and_zero_banks() {
        let mut shape = shape_4t();
        assert!(shape.validate().is_ok());
        // Non-square is fine as long as the router count matches.
        shape.mesh = tsocc_noc::MeshTopology::new(1, 4);
        assert!(shape.validate().is_ok());
        shape.mesh = tsocc_noc::MeshTopology::new(2, 3);
        let err = shape.validate().unwrap_err();
        assert!(err.contains("6 routers"), "{err}");
        shape.mesh = tsocc_noc::MeshTopology::for_tiles(4);
        shape.l2_banks = 0;
        assert!(shape.validate().is_err());
    }
}
