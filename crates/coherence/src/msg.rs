//! The on-chip message vocabulary.

use std::fmt;

use tsocc_mem::{LineAddr, LineData};
use tsocc_noc::VNet;

/// A coherence endpoint: a core's private L1, a shared-L2 tile, or a
/// memory controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Agent {
    /// The private L1 cache of core `i`.
    L1(usize),
    /// NUCA L2 tile `i`.
    L2(usize),
    /// Memory controller `i` (placed at mesh corners).
    Mem(usize),
}

impl fmt::Display for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Agent::L1(i) => write!(f, "L1[{i}]"),
            Agent::L2(i) => write!(f, "L2[{i}]"),
            Agent::Mem(i) => write!(f, "Mem[{i}]"),
        }
    }
}

/// A logical write timestamp (TSO-CC §3.3).
///
/// `Ts::INVALID` (zero) marks lines that have never been written since
/// the L2 obtained its copy — such responses force self-invalidation
/// because timestamps are not propagated to main memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ts(u64);

impl Ts {
    /// The invalid timestamp carried by never-written lines.
    pub const INVALID: Ts = Ts(0);
    /// The smallest valid timestamp; L2 tiles clamp stale-epoch
    /// timestamps to this value (§3.5).
    pub const SMALLEST_VALID: Ts = Ts(1);

    /// Creates a timestamp from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        Ts(raw)
    }

    /// Raw counter value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Whether this timestamp is valid (non-zero).
    pub const fn is_valid(self) -> bool {
        self.0 != 0
    }

    /// The next timestamp.
    pub const fn next(self) -> Ts {
        Ts(self.0 + 1)
    }

    /// Saturating distance `self - earlier` (0 when earlier is later).
    pub const fn distance_from(self, earlier: Ts) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "ts{}", self.0)
        } else {
            write!(f, "ts-")
        }
    }
}

/// An epoch identifier for a timestamp source (TSO-CC §3.5).
///
/// Incremented on every timestamp reset; riding on data messages, it
/// lets receivers detect responses whose timestamp predates a reset that
/// raced past them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Epoch(u8);

impl Epoch {
    /// The initial epoch.
    pub const ZERO: Epoch = Epoch(0);

    /// Creates an epoch with the given id.
    pub const fn new(raw: u8) -> Self {
        Epoch(raw)
    }

    /// Raw id.
    pub const fn as_u8(self) -> u8 {
        self.0
    }

    /// The next epoch, wrapping at `2^bits` (paper: overflow is fine as
    /// long as consecutive epochs are distinct).
    pub fn next(self, bits: u32) -> Epoch {
        let mask = ((1u16 << bits) - 1) as u8;
        Epoch(self.0.wrapping_add(1) & mask)
    }
}

/// The source of a timestamp: a core's write counter or an L2 tile's
/// SharedRO counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TsSource {
    /// Core-local write timestamp source of L1 `i`.
    L1(usize),
    /// SharedRO timestamp source of L2 tile `i`.
    L2(usize),
}

/// The permission granted by a data response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Grant {
    /// Private: the receiver may read and (after a silent E→M upgrade)
    /// write.
    Exclusive,
    /// Shared: read-only, untracked in TSO-CC; bounded L1 hits.
    Shared,
    /// Shared read-only (TSO-CC §3.4): read-only, invalidated by
    /// broadcast on writes, unlimited L1 hits.
    SharedRO,
}

/// A coherence protocol message.
///
/// Both protocols draw from this vocabulary; see the crate docs for why
/// it is shared. Data-bearing messages (`Data`, `PutM`, `DowngradeData`,
/// `MemData`, `MemWrite`) are 5 flits at the default 16-byte flit size;
/// everything else is a single control flit.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // line/data/from operand fields are uniform across variants
pub enum Msg {
    // ---- L1 → L2 requests ------------------------------------------------
    /// Read request.
    GetS { line: LineAddr },
    /// Write / RMW request.
    GetX { line: LineAddr },
    /// Eviction of a clean private (Exclusive) line.
    PutE { line: LineAddr },
    /// Eviction of a dirty private (Modified) line, with data.
    PutM {
        line: LineAddr,
        data: LineData,
        ts: Ts,
        epoch: Epoch,
    },
    // ---- L2 → L1 forwards -------------------------------------------------
    /// Forwarded read: owner must downgrade, send data to `requester`
    /// and a [`Msg::DowngradeData`] to the L2.
    FwdGetS { line: LineAddr, requester: usize },
    /// Forwarded write: owner must invalidate, send data to `requester`
    /// and a [`Msg::TransferAck`] to the L2.
    FwdGetX { line: LineAddr, requester: usize },
    /// Invalidate a (possibly absent) shared copy. If `ack_to_requester`
    /// is `Some(r)`, acknowledge core `r` directly (MESI
    /// requester-collected acks); otherwise acknowledge the home L2 tile
    /// (TSO-CC SharedRO broadcasts and L2 evictions of inclusive lines).
    Inv {
        line: LineAddr,
        ack_to_requester: Option<usize>,
    },
    /// L2 eviction of a private line: owner must invalidate and respond
    /// with [`Msg::RecallData`].
    Recall { line: LineAddr },
    // ---- responses ---------------------------------------------------------
    /// Data response granting `grant` permission.
    Data {
        line: LineAddr,
        data: LineData,
        grant: Grant,
        /// Last writer (TSO-CC) / data source owner; `usize::MAX` when
        /// there is none.
        writer: usize,
        /// Last-written timestamp (TSO-CC; `Ts::INVALID` otherwise).
        ts: Ts,
        /// Epoch of the timestamp source.
        epoch: Epoch,
        /// Source of `ts` for epoch checking (TSO-CC).
        ts_source: Option<TsSource>,
        /// Number of invalidation acks the requester must collect before
        /// the line is usable (MESI GetX to shared lines).
        acks_expected: u32,
        /// Whether the 64-byte payload is on the wire (false for MESI
        /// upgrade grants to a core that already holds a valid copy).
        with_payload: bool,
        /// Whether the requester must send [`Msg::Unblock`] to the home
        /// tile when the transaction completes (set for all exclusive
        /// grants and owner-forwarded data).
        ack_required: bool,
    },
    /// Invalidation ack sent directly to the requesting core (MESI).
    InvAck { line: LineAddr, from: usize },
    /// Invalidation ack sent to the home L2 tile.
    InvAckToL2 { line: LineAddr, from: usize },
    /// Old owner → L2 after [`Msg::FwdGetS`]: carries the (possibly
    /// dirty) line so the L2 copy becomes current.
    DowngradeData {
        line: LineAddr,
        data: LineData,
        dirty: bool,
        ts: Ts,
        epoch: Epoch,
        from: usize,
    },
    /// Old owner → L2 after [`Msg::FwdGetX`]: ownership passed to the
    /// requester.
    TransferAck { line: LineAddr, from: usize },
    /// Owner → L2 in response to [`Msg::Recall`].
    RecallData {
        line: LineAddr,
        data: LineData,
        dirty: bool,
        ts: Ts,
        epoch: Epoch,
        from: usize,
    },
    /// Requester → L2: transaction complete, unblock the line.
    Unblock { line: LineAddr, from: usize },
    /// L2 → L1: eviction (PutE/PutM) acknowledged.
    PutAck { line: LineAddr },
    // ---- memory ------------------------------------------------------------
    /// L2 tile → memory controller: fetch a line.
    MemRead { line: LineAddr },
    /// L2 tile → memory controller: write a line back.
    MemWrite { line: LineAddr, data: LineData },
    /// Memory controller → L2 tile: fetched data.
    MemData { line: LineAddr, data: LineData },
    // ---- timestamp management (TSO-CC §3.5) --------------------------------
    /// Broadcast: `source` wrapped its timestamp counter and entered
    /// `epoch`; receivers drop their last-seen entry for it.
    TsReset { source: TsSource, epoch: Epoch },
}

impl Msg {
    /// Whether this message carries a full cache line of data.
    pub fn carries_data(&self) -> bool {
        match self {
            Msg::Data { with_payload, .. } => *with_payload,
            Msg::PutM { .. }
            | Msg::DowngradeData { .. }
            | Msg::RecallData { .. }
            | Msg::MemWrite { .. }
            | Msg::MemData { .. } => true,
            _ => false,
        }
    }

    /// Payload size in bytes (64 for data messages, 0 for control).
    pub fn payload_bytes(&self) -> u32 {
        if self.carries_data() {
            tsocc_mem::LINE_BYTES as u32
        } else {
            0
        }
    }

    /// The line this message concerns, if any (`TsReset` is the one
    /// line-less broadcast). Used by hang diagnosis to attribute
    /// in-flight messages to blocked lines.
    pub fn line(&self) -> Option<LineAddr> {
        match self {
            Msg::GetS { line }
            | Msg::GetX { line }
            | Msg::PutE { line }
            | Msg::PutM { line, .. }
            | Msg::FwdGetS { line, .. }
            | Msg::FwdGetX { line, .. }
            | Msg::Inv { line, .. }
            | Msg::Recall { line }
            | Msg::Data { line, .. }
            | Msg::InvAck { line, .. }
            | Msg::InvAckToL2 { line, .. }
            | Msg::DowngradeData { line, .. }
            | Msg::TransferAck { line, .. }
            | Msg::RecallData { line, .. }
            | Msg::Unblock { line, .. }
            | Msg::PutAck { line }
            | Msg::MemRead { line }
            | Msg::MemWrite { line, .. }
            | Msg::MemData { line, .. } => Some(*line),
            Msg::TsReset { .. } => None,
        }
    }

    /// The variant name, for compact diagnostic output (the derived
    /// `Debug` of data-bearing variants prints whole cache lines).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Msg::GetS { .. } => "GetS",
            Msg::GetX { .. } => "GetX",
            Msg::PutE { .. } => "PutE",
            Msg::PutM { .. } => "PutM",
            Msg::FwdGetS { .. } => "FwdGetS",
            Msg::FwdGetX { .. } => "FwdGetX",
            Msg::Inv { .. } => "Inv",
            Msg::Recall { .. } => "Recall",
            Msg::Data { .. } => "Data",
            Msg::InvAck { .. } => "InvAck",
            Msg::InvAckToL2 { .. } => "InvAckToL2",
            Msg::DowngradeData { .. } => "DowngradeData",
            Msg::TransferAck { .. } => "TransferAck",
            Msg::RecallData { .. } => "RecallData",
            Msg::Unblock { .. } => "Unblock",
            Msg::PutAck { .. } => "PutAck",
            Msg::MemRead { .. } => "MemRead",
            Msg::MemWrite { .. } => "MemWrite",
            Msg::MemData { .. } => "MemData",
            Msg::TsReset { .. } => "TsReset",
        }
    }

    /// The virtual network this message class travels on.
    pub fn vnet(&self) -> VNet {
        match self {
            Msg::GetS { .. }
            | Msg::GetX { .. }
            | Msg::PutE { .. }
            | Msg::PutM { .. }
            | Msg::MemRead { .. }
            | Msg::MemWrite { .. } => VNet::Request,
            Msg::FwdGetS { .. }
            | Msg::FwdGetX { .. }
            | Msg::Inv { .. }
            | Msg::Recall { .. }
            | Msg::TsReset { .. } => VNet::Forward,
            Msg::Data { .. }
            | Msg::InvAck { .. }
            | Msg::InvAckToL2 { .. }
            | Msg::DowngradeData { .. }
            | Msg::TransferAck { .. }
            | Msg::RecallData { .. }
            | Msg::Unblock { .. }
            | Msg::PutAck { .. }
            | Msg::MemData { .. } => VNet::Response,
        }
    }
}

/// An addressed message ready for network injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetMsg {
    /// Sender.
    pub src: Agent,
    /// Receiver.
    pub dst: Agent,
    /// Payload.
    pub msg: Msg,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_mem::Addr;

    fn line() -> LineAddr {
        Addr::new(0x40).line()
    }

    #[test]
    fn ts_validity_and_order() {
        assert!(!Ts::INVALID.is_valid());
        assert!(Ts::SMALLEST_VALID.is_valid());
        assert!(Ts::new(5) > Ts::new(4));
        assert_eq!(Ts::new(4).next(), Ts::new(5));
        assert_eq!(Ts::new(10).distance_from(Ts::new(3)), 7);
        assert_eq!(Ts::new(3).distance_from(Ts::new(10)), 0);
    }

    #[test]
    fn epoch_wraps_at_bit_width() {
        let mut e = Epoch::ZERO;
        for _ in 0..8 {
            e = e.next(3);
        }
        assert_eq!(e, Epoch::ZERO, "3-bit epoch wraps after 8 increments");
        assert_ne!(Epoch::ZERO.next(3), Epoch::ZERO);
    }

    #[test]
    fn data_messages_are_five_flits_worth() {
        let m = Msg::MemData {
            line: line(),
            data: LineData::zeroed(),
        };
        assert!(m.carries_data());
        assert_eq!(m.payload_bytes(), 64);
        let c = Msg::GetS { line: line() };
        assert!(!c.carries_data());
        assert_eq!(c.payload_bytes(), 0);
    }

    #[test]
    fn vnet_classification_separates_req_fwd_resp() {
        assert_eq!(Msg::GetS { line: line() }.vnet(), VNet::Request);
        assert_eq!(
            Msg::Inv {
                line: line(),
                ack_to_requester: None
            }
            .vnet(),
            VNet::Forward
        );
        assert_eq!(Msg::PutAck { line: line() }.vnet(), VNet::Response);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Agent::L1(3).to_string(), "L1[3]");
        assert_eq!(Agent::Mem(0).to_string(), "Mem[0]");
        assert_eq!(Ts::INVALID.to_string(), "ts-");
        assert_eq!(Ts::new(9).to_string(), "ts9");
    }
}
