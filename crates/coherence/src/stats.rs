//! Per-controller statistics matching the paper's figure breakdowns.

use tsocc_sim::Counter;

/// Why a TSO-CC L1 self-invalidated its Shared lines (Figures 7 and 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SelfInvCause {
    /// The data response carried an invalid timestamp, or the receiver
    /// had no last-seen entry for the writer.
    InvalidTs,
    /// Potential acquire detected on a non-SharedRO data response
    /// (line timestamp newer than last-seen from that writer).
    AcquireNonSro,
    /// Potential acquire detected on a SharedRO data response
    /// (L2-tile timestamp newer than last seen from that tile).
    AcquireSro,
    /// An explicit fence instruction (unconditional, §3.6).
    Fence,
}

impl SelfInvCause {
    /// All causes in display order (matches Figure 9's legend).
    pub const ALL: [SelfInvCause; 4] = [
        SelfInvCause::InvalidTs,
        SelfInvCause::AcquireNonSro,
        SelfInvCause::AcquireSro,
        SelfInvCause::Fence,
    ];

    /// Dense index.
    pub const fn index(self) -> usize {
        match self {
            SelfInvCause::InvalidTs => 0,
            SelfInvCause::AcquireNonSro => 1,
            SelfInvCause::AcquireSro => 2,
            SelfInvCause::Fence => 3,
        }
    }

    /// Human-readable label used by the figure harness.
    pub const fn label(self) -> &'static str {
        match self {
            SelfInvCause::InvalidTs => "invalid timestamp",
            SelfInvCause::AcquireNonSro => "p. acquire (non-SharedRO)",
            SelfInvCause::AcquireSro => "p. acquire (SharedRO)",
            SelfInvCause::Fence => "fence",
        }
    }
}

/// L1 cache statistics.
///
/// The hit/miss categories follow Figures 5 and 6 exactly: misses are
/// split by the state the line was in when the access missed
/// (Invalid / Shared / SharedRO), hits by the state they hit in.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct L1Stats {
    /// Loads that hit a private (Exclusive or Modified) line.
    pub read_hit_private: Counter,
    /// Loads that hit a Shared line (within its access budget).
    pub read_hit_shared: Counter,
    /// Loads that hit a SharedRO line.
    pub read_hit_sharedro: Counter,
    /// Stores that hit a private line.
    pub write_hit_private: Counter,
    /// Loads that missed with the line absent.
    pub read_miss_invalid: Counter,
    /// Loads that missed because a Shared line exceeded its access
    /// budget (TSO-CC) — or, for MESI, zero by construction.
    pub read_miss_shared: Counter,
    /// Stores that missed with the line absent.
    pub write_miss_invalid: Counter,
    /// Stores that missed on a Shared line (upgrade).
    pub write_miss_shared: Counter,
    /// Stores that missed on a SharedRO line (broadcast invalidation).
    pub write_miss_sharedro: Counter,
    /// RMWs that required a coherence transaction (diagnostic; RMW
    /// misses are *also* counted in the `write_miss_*` categories).
    pub rmw_miss: Counter,
    /// RMWs that hit a private line (diagnostic; also counted in
    /// `write_hit_private`).
    pub rmw_hit: Counter,
    /// Self-invalidation *events*, by cause (each event sweeps all
    /// Shared lines).
    pub selfinv_events: [Counter; 4],
    /// Total Shared lines invalidated across all sweeps.
    pub selfinv_lines: Counter,
    /// Timestamp resets broadcast by this core's write counter.
    pub ts_resets: Counter,
}

impl L1Stats {
    /// Records a self-invalidation event that swept `lines` lines.
    pub fn record_selfinv(&mut self, cause: SelfInvCause, lines: u64) {
        self.selfinv_events[cause.index()].inc();
        self.selfinv_lines.add(lines);
    }

    /// Total read misses.
    pub fn read_misses(&self) -> u64 {
        self.read_miss_invalid.get() + self.read_miss_shared.get()
    }

    /// Total write misses (RMW transactions are included via the
    /// per-state `write_miss_*` counters).
    pub fn write_misses(&self) -> u64 {
        self.write_miss_invalid.get()
            + self.write_miss_shared.get()
            + self.write_miss_sharedro.get()
    }

    /// Total hits (RMW hits are included via `write_hit_private`).
    pub fn hits(&self) -> u64 {
        self.read_hit_private.get()
            + self.read_hit_shared.get()
            + self.read_hit_sharedro.get()
            + self.write_hit_private.get()
    }

    /// Total accesses (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits() + self.read_misses() + self.write_misses()
    }

    /// Total self-invalidation events over all causes.
    pub fn selfinv_total(&self) -> u64 {
        self.selfinv_events.iter().map(|c| c.get()).sum()
    }

    /// Merges another L1's statistics into this one (whole-system
    /// aggregation).
    pub fn merge(&mut self, other: &L1Stats) {
        self.read_hit_private += other.read_hit_private.get();
        self.read_hit_shared += other.read_hit_shared.get();
        self.read_hit_sharedro += other.read_hit_sharedro.get();
        self.write_hit_private += other.write_hit_private.get();
        self.read_miss_invalid += other.read_miss_invalid.get();
        self.read_miss_shared += other.read_miss_shared.get();
        self.write_miss_invalid += other.write_miss_invalid.get();
        self.write_miss_shared += other.write_miss_shared.get();
        self.write_miss_sharedro += other.write_miss_sharedro.get();
        self.rmw_miss += other.rmw_miss.get();
        self.rmw_hit += other.rmw_hit.get();
        for i in 0..4 {
            self.selfinv_events[i] += other.selfinv_events[i].get();
        }
        self.selfinv_lines += other.selfinv_lines.get();
        self.ts_resets += other.ts_resets.get();
    }
}

/// L2 tile statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct L2Stats {
    /// Requests serviced without a memory fetch.
    pub hits: Counter,
    /// Requests that required fetching the line from memory.
    pub misses: Counter,
    /// Lines written back to memory on eviction.
    pub writebacks: Counter,
    /// Shared→SharedRO decay transitions (TSO-CC §3.4).
    pub decays: Counter,
    /// SharedRO broadcast invalidation rounds (writes to SharedRO).
    pub sro_invalidations: Counter,
    /// Timestamp resets broadcast by this tile's SharedRO counter.
    pub ts_resets: Counter,
}

impl L2Stats {
    /// Merges another tile's statistics into this one.
    pub fn merge(&mut self, other: &L2Stats) {
        self.hits += other.hits.get();
        self.misses += other.misses.get();
        self.writebacks += other.writebacks.get();
        self.decays += other.decays.get();
        self.sro_invalidations += other.sro_invalidations.get();
        self.ts_resets += other.ts_resets.get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_are_dense_and_labelled() {
        for (i, c) in SelfInvCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.label().is_empty());
        }
    }

    #[test]
    fn l1_totals() {
        let mut s = L1Stats::default();
        s.read_hit_private.add(10);
        s.read_miss_invalid.add(2);
        s.read_miss_shared.add(3);
        s.write_miss_shared.add(1);
        s.rmw_miss.add(1);
        s.rmw_hit.add(4);
        assert_eq!(s.read_misses(), 5);
        assert_eq!(s.write_misses(), 1, "rmw_miss is diagnostic-only");
        assert_eq!(s.hits(), 10, "rmw_hit is diagnostic-only");
        assert_eq!(s.accesses(), 16);
    }

    #[test]
    fn selfinv_recording() {
        let mut s = L1Stats::default();
        s.record_selfinv(SelfInvCause::Fence, 7);
        s.record_selfinv(SelfInvCause::InvalidTs, 3);
        s.record_selfinv(SelfInvCause::Fence, 0);
        assert_eq!(s.selfinv_total(), 3);
        assert_eq!(s.selfinv_events[SelfInvCause::Fence.index()].get(), 2);
        assert_eq!(s.selfinv_lines.get(), 10);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = L1Stats::default();
        a.read_hit_private.add(1);
        let mut b = L1Stats::default();
        b.read_hit_private.add(2);
        b.record_selfinv(SelfInvCause::AcquireSro, 5);
        a.merge(&b);
        assert_eq!(a.read_hit_private.get(), 3);
        assert_eq!(a.selfinv_total(), 1);
        assert_eq!(a.selfinv_lines.get(), 5);

        let mut x = L2Stats::default();
        x.hits.add(4);
        let mut y = L2Stats::default();
        y.hits.add(6);
        y.decays.add(1);
        x.merge(&y);
        assert_eq!(x.hits.get(), 10);
        assert_eq!(x.decays.get(), 1);
    }
}
