//! Chassis-component parity: the [`MshrTable`] and the writeback
//! engine ([`WritebackBuffer`] + the PUT-emitting `park_writeback`
//! path of [`L1Chassis`]) are driven through random operation
//! sequences against `std::collections::HashMap` reference models,
//! mirroring `crates/mem/tests/storage_props.rs`. The tables must
//! agree on every lookup, removal, occupancy and `line_free` verdict —
//! and every parked writeback must emit exactly one PUT of the right
//! flavour addressed to the line's home tile.

use std::collections::HashMap;

use proptest::prelude::*;
use tsocc_coherence::{Agent, Epoch, L1Chassis, Msg, MshrTable, Ts, WritebackBuffer};
use tsocc_mem::{CacheParams, LineAddr, LineData};
use tsocc_sim::Cycle;

/// Op encoding for the MSHR model: 0 = alloc-if-free, 1 = remove,
/// 2 = lookup/mutate.
fn drive_mshrs(keys: &[u64], ops: &[(u8, usize, u64)]) {
    let mut table: MshrTable<u64> = MshrTable::new();
    let mut reference: HashMap<u64, u64> = HashMap::new();
    for (step, &(op, key_index, value)) in ops.iter().enumerate() {
        let key = keys[key_index % keys.len()];
        let line = LineAddr::new(key);
        match op % 3 {
            0 => {
                // The chassis invariant: allocation only after a
                // `contains` check (alloc on an occupied line panics).
                assert_eq!(
                    table.contains(line),
                    reference.contains_key(&key),
                    "occupancy disagrees before alloc of {key} at step {step}"
                );
                if !table.contains(line) {
                    table.alloc(line, value);
                    reference.insert(key, value);
                }
            }
            1 => {
                assert_eq!(
                    table.remove(line),
                    reference.remove(&key),
                    "remove {key} at step {step}"
                );
            }
            _ => {
                assert_eq!(table.get(line), reference.get(&key));
                if let Some(m) = table.get_mut(line) {
                    *m = m.wrapping_add(1);
                    *reference.get_mut(&key).expect("models agree") += 1;
                }
            }
        }
        assert_eq!(table.len(), reference.len(), "len at step {step}");
        assert_eq!(table.is_empty(), reference.is_empty());
    }
}

/// Reference model of one writeback-buffer entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct RefWb {
    dirty: bool,
    ts: Ts,
    forwarded: bool,
}

/// Op encoding for the writeback engine: 0 = park-if-free (evict),
/// 1 = PutAck (remove), 2 = forward-mark, 3 = lookup.
fn drive_writebacks(keys: &[u64], ops: &[(u8, usize, u64)]) {
    let n_tiles = 4;
    let mut ch: L1Chassis<(), u8> = L1Chassis::new(1, 8, n_tiles, 1, 1, CacheParams::new(4, 2));
    let mut reference: HashMap<u64, RefWb> = HashMap::new();
    let mut now = Cycle::ZERO;
    let mut puts_expected: Vec<(Agent, bool, u64)> = Vec::new(); // (home, dirty, line)
    for (step, &(op, key_index, value)) in ops.iter().enumerate() {
        let key = keys[key_index % keys.len()];
        let line = LineAddr::new(key);
        now += 1; // outbox ready times must be monotonic
        match op % 4 {
            0 => {
                // An L1 only evicts a resident line, which cannot have
                // an eviction in flight: park only when free (the same
                // `line_free` check the policies make).
                assert_eq!(
                    ch.line_free(line),
                    !reference.contains_key(&key),
                    "line_free disagrees for {key} at step {step} (no MSHRs in this model)"
                );
                if ch.line_free(line) {
                    let dirty = value % 2 == 0;
                    let ts = if dirty {
                        Ts::new(value | 1)
                    } else {
                        Ts::INVALID
                    };
                    ch.park_writeback(now, line, LineData::zeroed(), dirty, ts, Epoch::ZERO);
                    reference.insert(
                        key,
                        RefWb {
                            dirty,
                            ts,
                            forwarded: false,
                        },
                    );
                    puts_expected.push((ch.home(line), dirty, key));
                }
            }
            1 => {
                let got = ch.wb.remove(line).map(|e| RefWb {
                    dirty: e.dirty,
                    ts: e.ts,
                    forwarded: e.forwarded,
                });
                assert_eq!(
                    got,
                    reference.remove(&key),
                    "PutAck for {key} at step {step}"
                );
            }
            2 => match (ch.wb.get_mut(line), reference.get_mut(&key)) {
                (Some(e), Some(r)) => {
                    e.forwarded = true;
                    r.forwarded = true;
                }
                (None, None) => {}
                (got, want) => panic!("forward-mark disagrees for {key}: {got:?} vs {want:?}"),
            },
            _ => {
                let got = ch.wb.get(line).map(|e| (e.dirty, e.ts, e.forwarded));
                let want = reference.get(&key).map(|r| (r.dirty, r.ts, r.forwarded));
                assert_eq!(got, want, "lookup {key} at step {step}");
            }
        }
        assert_eq!(ch.wb.len(), reference.len());
        assert_eq!(ch.wb.is_empty(), reference.is_empty());
    }
    // Every park emitted exactly one PUT: PutM with data for dirty
    // lines, PutE for clean ones, each addressed to the line's home.
    let mut sent = Vec::new();
    ch.outbox.drain_ready_into(now + 1000, &mut sent);
    assert_eq!(sent.len(), puts_expected.len(), "one PUT per eviction");
    for (msg, (home, dirty, key)) in sent.iter().zip(&puts_expected) {
        assert_eq!(msg.src, Agent::L1(1));
        assert_eq!(&msg.dst, home, "PUT must target the home tile");
        match (&msg.msg, dirty) {
            (Msg::PutM { line, .. }, true) | (Msg::PutE { line }, false) => {
                assert_eq!(*line, LineAddr::new(*key));
            }
            other => panic!("wrong PUT flavour for line {key}: {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary keys, arbitrary op sequences.
    #[test]
    fn mshr_table_matches_hashmap_on_random_keys(
        keys in proptest::collection::vec(any::<u64>(), 1..16),
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u64>()), 1..400),
    ) {
        drive_mshrs(&keys, &ops);
    }

    /// MSHR-style churn on a small line pool: alloc/complete cycles on
    /// a handful of hot lines, the pattern L1s produce all run long.
    #[test]
    fn mshr_table_matches_hashmap_under_hot_line_churn(
        pool_size in 1u64..6,
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u64>()), 100..1200),
    ) {
        let keys: Vec<u64> = (0..pool_size).map(|k| k << 6).collect();
        drive_mshrs(&keys, &ops);
    }

    /// The writeback engine against its reference model, including the
    /// PUT-emission contract.
    #[test]
    fn writeback_engine_matches_reference_model(
        keys in proptest::collection::vec(any::<u64>(), 1..12),
        ops in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u64>()), 1..600),
    ) {
        drive_writebacks(&keys, &ops);
    }
}

/// The plain (non-property) invariants the engine relies on.
#[test]
fn writeback_buffer_basics() {
    let mut wb = WritebackBuffer::new();
    let line = LineAddr::new(0x40);
    wb.insert(line, LineData::zeroed(), true, Ts::new(3), Epoch::ZERO);
    assert!(!wb.is_empty());
    assert!(wb.get(line).is_some_and(|e| e.dirty && !e.forwarded));
    wb.get_mut(line).unwrap().forwarded = true;
    assert!(wb.remove(line).is_some_and(|e| e.forwarded));
    assert!(wb.is_empty());
}
