#![warn(missing_docs)]

//! Deterministic, seeded fault injection for the simulator.
//!
//! A [`FaultPlan`] is an axis on the system configuration that injects
//! faults at three layers:
//!
//! - **NoC** ([`NocFault`]): bounded extra message delay, optionally
//!   targeted at one virtual network. The extra delay is a *pure hash*
//!   of `(seed, src, dst, vnet, cycle)` — not a stateful RNG — so it
//!   is independent of send-call order and every stepper (reference,
//!   event-driven, sharded-parallel) derives the identical delay for
//!   the identical message. Delay only ever *adds* latency, so the
//!   parallel stepper's conservative lookahead bound stays valid.
//! - **Protocol** ([`ProtocolFault`]): policy-level mutations behind
//!   the [`FaultState`] seam in the coherence chassis — drop an
//!   invalidation ack, skip a TSO-CC timestamp reset (wrapping the
//!   timestamp source without an epoch advance), corrupt a sharer set
//!   or coarse-vector group, or hold an MSHR past its release. These
//!   are *mutation testing for the verification stack*: each must be
//!   caught by at least one existing oracle (litmus forbidden
//!   outcomes, conformance model mismatches, or a deadlock report).
//! - **Stepper** ([`StepperFault`]): a shard-worker panic trigger that
//!   exercises the parallel stepper's graceful-degradation path.
//!
//! [`FaultPlan::none`] is the default everywhere; with it, every
//! simulated outcome is byte-identical to a build without this crate.

use tsocc_mem::LineAddr;
use tsocc_noc::VNet;

/// Extra network delay, deterministically derived per message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NocFault {
    /// Upper bound (inclusive) on the injected extra delay in cycles.
    pub extra_delay_max: u64,
    /// Restrict the jitter to one virtual network (`None` = all).
    pub vnet: Option<VNet>,
}

/// A policy-level coherence-protocol mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolFault {
    /// The first invalidation ack core `core`'s L1 would send is
    /// silently dropped. The requester's miss never completes — a
    /// protocol deadlock the run loop must detect and report.
    DropInvAck {
        /// The faulty core.
        core: usize,
    },
    /// Every timestamp reset at core `core` is replaced by a *silent
    /// wrap*: the timestamp source restarts from the smallest valid
    /// timestamp without advancing the epoch or broadcasting
    /// `TsReset`. Subsequent writes carry small timestamps in the old
    /// epoch, defeating the `ts >= seen` acquire check in remote L1s —
    /// stale reads the TSO oracles must flag. (Merely skipping the
    /// broadcast is self-healing: epoch mismatches on data responses
    /// already force conservative self-invalidation.)
    SkipTsReset {
        /// The faulty core.
        core: usize,
    },
    /// On the first invalidation fan-out at tile `tile` with at least
    /// one invalidatable sharer, one sharer is silently dropped from
    /// the set: it keeps a stale copy while the writer proceeds — a
    /// coherence violation the oracles must observe as a stale read.
    CorruptSharers {
        /// The faulty L2 tile.
        tile: usize,
    },
    /// The MSHR for `line` at core `core` is never released: the miss
    /// hangs forever, wedging the home tile's transaction — the
    /// hand-crafted deadlock behind the `HangReport` tests, with a
    /// known line to look for in the wait-for cycle.
    HoldMshr {
        /// The faulty core.
        core: usize,
        /// The line whose MSHR is held.
        line: LineAddr,
    },
}

/// A shard-worker panic trigger for the parallel stepper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepperFault {
    /// Which shard's worker panics (clamped to the worker count by the
    /// stepper).
    pub shard: usize,
    /// The simulated cycle at (or after) which the panic fires.
    pub at_cycle: u64,
}

/// The full fault-injection plan, carried on the system configuration
/// and the machine shape. All-`Copy` so the shape stays `Copy`.
///
/// The default ([`FaultPlan::none`]) injects nothing and is
/// byte-identical to a fault-free build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the NoC delay hash (independent of the workload seed
    /// so jitter can vary while the workload stays fixed).
    pub seed: u64,
    /// Network-layer fault, if any.
    pub noc: Option<NocFault>,
    /// Protocol-layer mutation, if any.
    pub protocol: Option<ProtocolFault>,
    /// Stepper-layer fault, if any.
    pub stepper: Option<StepperFault>,
}

/// One round of the splitmix64 output permutation: a high-quality
/// 64-bit mix used as the order-independent delay hash.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// The inert plan: injects nothing anywhere.
    pub const fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            noc: None,
            protocol: None,
            stepper: None,
        }
    }

    /// Whether this plan injects nothing (the common fast path).
    pub fn is_none(&self) -> bool {
        self.noc.is_none() && self.protocol.is_none() && self.stepper.is_none()
    }

    /// Extra delivery delay for a message injected at `cycle` from
    /// router `src` to router `dst` on `vnet`: `0` without a NoC
    /// fault, otherwise a pure hash of the plan seed and the message
    /// coordinates in `0..=extra_delay_max`.
    ///
    /// Being a pure function of per-message data (no RNG state), the
    /// delay is independent of the order in which sends are issued —
    /// which is what keeps all three steppers bit-identical under an
    /// active NoC fault.
    pub fn noc_extra_delay(&self, cycle: u64, src: usize, dst: usize, vnet: VNet) -> u64 {
        let Some(f) = self.noc else { return 0 };
        if f.extra_delay_max == 0 {
            return 0;
        }
        if let Some(v) = f.vnet {
            if v != vnet {
                return 0;
            }
        }
        let key = self
            .seed
            .wrapping_mul(0xA24B_AED4_963E_E407)
            .wrapping_add(cycle)
            .wrapping_add((src as u64) << 40)
            .wrapping_add((dst as u64) << 20)
            .wrapping_add(vnet.index() as u64);
        mix64(key) % (f.extra_delay_max + 1)
    }
}

/// Per-controller runtime fault state, installed on the coherence
/// chassis by the protocol factories. Holds the (already filtered)
/// mutation targeting this controller plus its one-shot trigger
/// bookkeeping. The default is inert.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultState {
    fault: Option<ProtocolFault>,
    fired: bool,
}

impl FaultState {
    /// The inert state (also the `Default`).
    pub const fn none() -> FaultState {
        FaultState {
            fault: None,
            fired: false,
        }
    }

    /// The fault state for core `core`'s L1 under `plan`: keeps the
    /// protocol mutation iff it targets this L1.
    pub fn for_l1(plan: &FaultPlan, core: usize) -> FaultState {
        let fault = match plan.protocol {
            Some(ProtocolFault::DropInvAck { core: c }) if c == core => plan.protocol,
            Some(ProtocolFault::SkipTsReset { core: c }) if c == core => plan.protocol,
            Some(ProtocolFault::HoldMshr { core: c, .. }) if c == core => plan.protocol,
            _ => None,
        };
        FaultState {
            fault,
            fired: false,
        }
    }

    /// The fault state for tile `tile`'s L2 under `plan`: keeps the
    /// protocol mutation iff it targets this tile.
    pub fn for_l2(plan: &FaultPlan, tile: usize) -> FaultState {
        let fault = match plan.protocol {
            Some(ProtocolFault::CorruptSharers { tile: t }) if t == tile => plan.protocol,
            _ => None,
        };
        FaultState {
            fault,
            fired: false,
        }
    }

    /// Whether any mutation is armed on this controller.
    pub fn is_armed(&self) -> bool {
        self.fault.is_some()
    }

    /// One-shot: returns `true` exactly once if this controller is to
    /// drop its next invalidation ack.
    pub fn fire_drop_inv_ack(&mut self) -> bool {
        match self.fault {
            Some(ProtocolFault::DropInvAck { .. }) if !self.fired => {
                self.fired = true;
                true
            }
            _ => false,
        }
    }

    /// Persistent: whether timestamp resets at this L1 are replaced by
    /// a silent wrap (no epoch advance, no broadcast).
    pub fn skip_ts_reset(&self) -> bool {
        matches!(self.fault, Some(ProtocolFault::SkipTsReset { .. }))
    }

    /// One-shot: returns `true` exactly once if this tile is to drop
    /// one sharer from its next invalidation fan-out. Call only when a
    /// droppable sharer actually exists, so the single shot is never
    /// wasted on an empty fan-out.
    pub fn fire_corrupt_sharers(&mut self) -> bool {
        match self.fault {
            Some(ProtocolFault::CorruptSharers { .. }) if !self.fired => {
                self.fired = true;
                true
            }
            _ => false,
        }
    }

    /// Persistent: whether the MSHR for `line` must be held past its
    /// release (the completion path returns early, forever).
    pub fn hold_mshr(&self, line: LineAddr) -> bool {
        matches!(self.fault, Some(ProtocolFault::HoldMshr { line: l, .. }) if l == line)
    }
}

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_none());
        assert_eq!(plan, FaultPlan::none());
        assert_eq!(plan.noc_extra_delay(100, 0, 1, VNet::Request), 0);
        assert!(!FaultState::for_l1(&plan, 0).is_armed());
        assert!(!FaultState::for_l2(&plan, 0).is_armed());
    }

    #[test]
    fn noc_delay_is_bounded_deterministic_and_vnet_targeted() {
        let plan = FaultPlan {
            seed: 7,
            noc: Some(NocFault {
                extra_delay_max: 5,
                vnet: Some(VNet::Response),
            }),
            ..FaultPlan::none()
        };
        for cycle in 0..200 {
            let d = plan.noc_extra_delay(cycle, 3, 9, VNet::Response);
            assert!(d <= 5);
            // Pure function: same inputs, same delay.
            assert_eq!(d, plan.noc_extra_delay(cycle, 3, 9, VNet::Response));
            // Other vnets are untouched.
            assert_eq!(plan.noc_extra_delay(cycle, 3, 9, VNet::Request), 0);
        }
        // The hash actually varies (not constant zero).
        let spread: std::collections::BTreeSet<u64> = (0..200)
            .map(|c| plan.noc_extra_delay(c, 3, 9, VNet::Response))
            .collect();
        assert!(spread.len() > 1, "jitter must vary: {spread:?}");
    }

    #[test]
    fn different_seeds_give_different_jitter() {
        let mk = |seed| FaultPlan {
            seed,
            noc: Some(NocFault {
                extra_delay_max: 63,
                vnet: None,
            }),
            ..FaultPlan::none()
        };
        let (a, b) = (mk(1), mk(2));
        let diff = (0..100)
            .filter(|&c| {
                a.noc_extra_delay(c, 0, 1, VNet::Request)
                    != b.noc_extra_delay(c, 0, 1, VNet::Request)
            })
            .count();
        assert!(diff > 50, "seeds must decorrelate jitter ({diff}/100)");
    }

    #[test]
    fn l1_fault_filtering_targets_one_core() {
        let plan = FaultPlan {
            protocol: Some(ProtocolFault::DropInvAck { core: 2 }),
            ..FaultPlan::none()
        };
        assert!(!FaultState::for_l1(&plan, 1).is_armed());
        let mut st = FaultState::for_l1(&plan, 2);
        assert!(st.is_armed());
        assert!(st.fire_drop_inv_ack(), "first ack is dropped");
        assert!(!st.fire_drop_inv_ack(), "one-shot");
        // An L1 fault never arms an L2.
        assert!(!FaultState::for_l2(&plan, 2).is_armed());
    }

    #[test]
    fn l2_fault_filtering_targets_one_tile() {
        let plan = FaultPlan {
            protocol: Some(ProtocolFault::CorruptSharers { tile: 3 }),
            ..FaultPlan::none()
        };
        assert!(!FaultState::for_l2(&plan, 0).is_armed());
        let mut st = FaultState::for_l2(&plan, 3);
        assert!(st.fire_corrupt_sharers());
        assert!(!st.fire_corrupt_sharers(), "one-shot");
    }

    #[test]
    fn hold_mshr_is_line_exact_and_persistent() {
        let line = LineAddr::new(0x80);
        let plan = FaultPlan {
            protocol: Some(ProtocolFault::HoldMshr { core: 0, line }),
            ..FaultPlan::none()
        };
        let st = FaultState::for_l1(&plan, 0);
        assert!(st.hold_mshr(line));
        assert!(st.hold_mshr(line), "persistent");
        assert!(!st.hold_mshr(LineAddr::new(0x81)));
    }

    #[test]
    fn skip_ts_reset_is_persistent() {
        let plan = FaultPlan {
            protocol: Some(ProtocolFault::SkipTsReset { core: 1 }),
            ..FaultPlan::none()
        };
        let st = FaultState::for_l1(&plan, 1);
        assert!(st.skip_ts_reset());
        assert!(st.skip_ts_reset());
        assert!(!FaultState::for_l1(&plan, 0).skip_ts_reset());
    }
}
