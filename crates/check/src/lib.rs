#![warn(missing_docs)]

//! Exhaustive stateless model checking of the coherence protocols.
//!
//! The conformance campaign (`tsocc-conform`) samples schedules by
//! running the timed simulator under randomized jitter: great coverage
//! per CPU-second, but never a proof. This crate closes the gap for
//! *small* configurations (2–3 cores, 1–2 lines): it drives the real
//! protocol controllers through the [`tsocc::scheduler`] seam and
//! explores **every** schedule up to FIFO-channel message reordering —
//! an exhaustive check of the same machine code the big simulations
//! run, not of a hand-abstracted model.
//!
//! On every explored state it checks the coherence axioms:
//!
//! - **single writer** (all protocols): at most one L1 holds a line
//!   with write permission;
//! - **writer excludes readers** ([`CoherenceDiscipline::Eager`]
//!   protocols only): while a writer exists, no other L1 holds the
//!   line at all. TSO-CC declares itself
//!   [`CoherenceDiscipline::Lazy`] — stale read-only copies are its
//!   design (paper §3.1), and the TSO outcome oracle judges them
//!   instead;
//!
//! and on every terminal state it checks deadlock-freedom plus the
//! observed outcome against the exact x86-TSO allowed set from
//! [`tsocc_workloads::tso_model`].
//!
//! Naive schedule enumeration explodes factorially, so the explorer
//! implements **dynamic partial-order reduction** (Flanagan &
//! Godefroid) with sleep sets: after executing a transition it finds
//! the last dependent transition in the trace and plants a backtrack
//! point there; schedules that merely commute independent transitions
//! are never replayed. Dependence is keyed on the controller touched
//! and refined by cache line: two deliveries to the same controller
//! for *different* lines with disjoint emission channels commute.
//! (The refinement is sound here because checker configurations place
//! pool lines in distinct cache sets with spare ways — no evictions —
//! and it is disabled outright when a protocol mutation is armed,
//! since one-shot fault triggers make even different-line deliveries
//! order-sensitive.) [`CheckReport::reduction`] against a naive run
//! quantifies the pruning.
//!
//! The checker shares one blessed program surface with the campaign:
//! litmus programs are [`ModelProgram`]s, lowered to coherence-layer
//! ops by [`tsocc_conform::core_ops`], and violating programs shrink
//! to minimal reproducers with [`tsocc_conform::shrink()`]
//! ([`shrink_to_reproducer`]).

use std::collections::BTreeSet;

use tsocc::{Choice, ScheduledSystem, StepInfo, SystemConfig, Terminal};
use tsocc_coherence::{Agent, CoherenceDiscipline, FaultPlan, LineAccess};
use tsocc_conform::{core_ops, shrink};
use tsocc_mem::LineAddr;
use tsocc_protocols::Protocol;
use tsocc_workloads::tso_model::{enumerate, ModelMode, ModelProgram, StateSpaceTooLarge};

/// The two-location address pools the systematic litmus family
/// ([`tsocc_workloads::tso_model::generate_two_thread_programs`]) runs
/// over. `lines == 1` places both model locations on one cache line —
/// the hard case for line-granular protocols; `lines == 2` places them
/// on different lines *in different cache sets*, which the DPOR
/// same-controller refinement requires (no evictions, ever).
///
/// # Panics
///
/// Panics unless `lines` is 1 or 2.
pub fn pool_for_lines(lines: usize) -> Vec<u64> {
    match lines {
        1 => vec![0x2000, 0x2008],
        2 => vec![0x2000, 0x2040],
        _ => panic!("checker pools cover 1 or 2 lines, not {lines}"),
    }
}

/// Exploration bounds and mode.
#[derive(Clone, Copy, Debug)]
pub struct CheckOpts {
    /// Disable DPOR and sleep sets: explore every enabled choice at
    /// every state. Only use to *measure* the reduction — the naive
    /// space explodes factorially.
    pub naive: bool,
    /// Stop after this many terminal schedules (the report is then
    /// marked incomplete).
    pub max_schedules: u64,
    /// Per-schedule transition bound; exceeding it is reported as a
    /// livelock violation.
    pub max_steps: usize,
    /// State bound handed to the x86-TSO oracle enumeration.
    pub oracle_max_states: usize,
}

impl Default for CheckOpts {
    fn default() -> Self {
        CheckOpts {
            naive: false,
            max_schedules: 1_000_000,
            max_steps: 10_000,
            oracle_max_states: 2_000_000,
        }
    }
}

/// A property violation, with the schedule that reaches it.
#[derive(Clone, Debug)]
pub struct CheckViolation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// The choice sequence reproducing it from the initial state (feed
    /// to [`tsocc::ReplaySchedule`]).
    pub schedule: Vec<Choice>,
}

/// The property a schedule violated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two or more L1s hold the same line with write permission.
    MultipleWriters {
        /// The line.
        line: LineAddr,
        /// The offending cores.
        cores: Vec<usize>,
    },
    /// An [`CoherenceDiscipline::Eager`] protocol let a reader coexist
    /// with a writer.
    ReaderWriterOverlap {
        /// The line.
        line: LineAddr,
        /// The core holding write permission.
        writer: usize,
        /// The cores holding stale copies.
        readers: Vec<usize>,
    },
    /// A terminal state observed an outcome outside the exact x86-TSO
    /// allowed set.
    ForbiddenOutcome {
        /// The observed (forbidden) outcome, thread-major.
        outcome: Vec<u64>,
    },
    /// No transition is enabled but some thread has not finished.
    Deadlock,
    /// One schedule exceeded [`CheckOpts::max_steps`] transitions.
    Livelock,
}

impl ViolationKind {
    /// Short machine-readable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            ViolationKind::MultipleWriters { .. } => "multiple_writers",
            ViolationKind::ReaderWriterOverlap { .. } => "reader_writer_overlap",
            ViolationKind::ForbiddenOutcome { .. } => "forbidden_outcome",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Livelock => "livelock",
        }
    }
}

/// Why a check could not run at all.
#[derive(Clone, Debug)]
pub enum CheckError {
    /// The derived system configuration was rejected.
    Config(tsocc::ConfigError),
    /// The x86-TSO oracle state space outgrew
    /// [`CheckOpts::oracle_max_states`].
    OracleTooLarge(StateSpaceTooLarge),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Config(e) => write!(f, "config rejected: {}", e.0),
            CheckError::OracleTooLarge(e) => write!(f, "oracle: {e}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// The result of exploring one program on one protocol.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Terminal schedules reached.
    pub schedules: u64,
    /// Transitions executed on first exploration (prefix replays during
    /// backtracking excluded).
    pub transitions: u64,
    /// Branches pruned because every enabled choice was asleep.
    pub sleep_blocked: u64,
    /// Every outcome observed across all explored schedules.
    pub outcomes: BTreeSet<Vec<u64>>,
    /// The oracle's exact allowed-outcome set.
    pub allowed: BTreeSet<Vec<u64>>,
    /// Violations found (exploration stops at the first one).
    pub violations: Vec<CheckViolation>,
    /// The exploration ran to exhaustion (no bound was hit, no
    /// violation cut it short).
    pub complete: bool,
}

impl CheckReport {
    /// The DPOR pruning factor against a naive run of the same
    /// program: `naive.schedules / self.schedules`.
    pub fn reduction(&self, naive: &CheckReport) -> f64 {
        naive.schedules as f64 / (self.schedules.max(1)) as f64
    }
}

/// Exhaustively checks `program` on `protocol` (with `faults` armed,
/// if any) over the addresses in `pool`.
///
/// # Errors
///
/// [`CheckError`] if the configuration is rejected or the oracle's
/// state space exceeds its bound. An incomplete *exploration* (bound
/// hit) is not an error — see [`CheckReport::complete`].
pub fn check_model(
    protocol: &Protocol,
    faults: FaultPlan,
    program: &ModelProgram,
    pool: &[u64],
    opts: &CheckOpts,
) -> Result<CheckReport, CheckError> {
    let allowed = enumerate(program, ModelMode::Tso, opts.oracle_max_states)
        .map_err(CheckError::OracleTooLarge)?
        .outcomes;
    let cfg = SystemConfig::builder()
        .small()
        .cores(program.len())
        .protocol(*protocol)
        .faults(faults)
        .build()
        .map_err(CheckError::Config)?;
    let programs: Vec<_> = program.iter().map(|ops| core_ops(ops, pool)).collect();
    let mut explorer = Explorer {
        cfg: &cfg,
        programs,
        // One-shot fault triggers are order-sensitive even across
        // different lines, so the same-controller commutation
        // refinement is only safe on the unmutated protocol.
        refine_lines: faults.protocol.is_none(),
        opts: *opts,
        report: CheckReport {
            schedules: 0,
            transitions: 0,
            sleep_blocked: 0,
            outcomes: BTreeSet::new(),
            allowed,
            violations: Vec::new(),
            complete: true,
        },
    };
    explorer.explore().map_err(CheckError::Config)?;
    Ok(explorer.report)
}

/// Shrinks a checker-violating `program` to a minimal reproducer with
/// the campaign shrinker, re-checking every candidate: the result is
/// the smallest program on which [`check_model`] still reports a
/// violation (or `program` itself if shrinking finds nothing smaller).
pub fn shrink_to_reproducer(
    protocol: &Protocol,
    faults: FaultPlan,
    program: &ModelProgram,
    pool: &[u64],
    opts: &CheckOpts,
) -> ModelProgram {
    shrink(program, |p| {
        check_model(protocol, faults, p, pool, opts)
            .map(|r| !r.violations.is_empty())
            .unwrap_or(false)
    })
}

/// One canonical mutation-testing case: a protocol fault plus the
/// litmus program that exposes it.
#[derive(Clone, Debug)]
pub struct MutationCase {
    /// Stable case name (the fault's variant name in snake case).
    pub name: &'static str,
    /// Protocol under mutation.
    pub protocol: Protocol,
    /// The armed fault plan.
    pub faults: FaultPlan,
    /// The exposing program.
    pub program: ModelProgram,
    /// The address pool the program runs over.
    pub pool: Vec<u64>,
}

/// The result of running one [`MutationCase`] through the checker and
/// the shrinker.
#[derive(Clone, Debug)]
pub struct MutationOutcome {
    /// The case name.
    pub name: &'static str,
    /// The checker found at least one violation (the mutation was
    /// caught).
    pub caught: bool,
    /// Tag of the first violation, if any.
    pub violation: Option<&'static str>,
    /// Schedules explored before the catch.
    pub schedules: u64,
    /// The shrunk minimal reproducer.
    pub shrunk: ModelProgram,
    /// Re-running the checker on the shrunk program still violates.
    pub shrunk_verified: bool,
}

/// The four canonical protocol-mutation cases
/// ([`tsocc_coherence::ProtocolFault`]) at `cores` cores, each paired
/// with a program the checker must catch it on. `seed` rotates which
/// physical core hosts each logical thread (and with it the faulty
/// core), so repeated runs cover every placement. `lines` selects the
/// pool via [`pool_for_lines`] — except `skip_ts_reset`, which is
/// architecturally invisible with a single line (stale data on the
/// *missed* line is the line just fetched; the timestamp acquire check
/// only guards *other* cached lines) and therefore always runs on the
/// two-line pool.
///
/// # Panics
///
/// Panics if `cores < 2` or `lines` is not 1 or 2.
pub fn mutation_cases(cores: usize, lines: usize, seed: u64) -> Vec<MutationCase> {
    use tsocc_coherence::ProtocolFault;
    use tsocc_workloads::tso_model::ModelOp;
    assert!(cores >= 2, "mutation cases need at least 2 cores");
    let st = |addr, value| ModelOp::Store { addr, value };
    let ld = |addr| ModelOp::Load { addr };
    let rot = |i: usize| (i + seed as usize) % cores;
    // Places logical thread i at physical core rot(i); other cores run
    // empty programs.
    let place = |threads: Vec<Vec<ModelOp>>| {
        let mut program = vec![Vec::new(); cores];
        for (i, ops) in threads.into_iter().enumerate() {
            program[rot(i)] = ops;
        }
        program
    };
    let pool = pool_for_lines(lines);
    let line = tsocc_mem::Addr::new(pool[0]).line();
    // The writer reads first too: a sole GetS is granted Exclusive, so
    // only a read-read-write history puts the directory in Shared with
    // a real sharer fan-out — the path both invalidation faults hide
    // in.
    let reader_writer = vec![vec![ld(0)], vec![ld(0), st(0, 1)]];
    let fault = |protocol| FaultPlan {
        protocol: Some(protocol),
        ..FaultPlan::none()
    };
    // Timestamps must wrap quickly for the silent-wrap fault to open
    // its stale window: 2-bit timestamps, one write per group.
    let tiny_ts = tsocc_proto::TsoCcConfig {
        max_acc: 16,
        write_ts: Some(tsocc_proto::TsParams {
            ts_bits: 2,
            write_group_bits: 0,
        }),
        sro_ts: true,
        decay_writes: None,
        epoch_bits: 3,
    };
    let ts_pool = pool_for_lines(2);
    vec![
        MutationCase {
            name: "drop_inv_ack",
            protocol: Protocol::Mesi,
            faults: fault(ProtocolFault::DropInvAck { core: rot(0) }),
            program: place(reader_writer.clone()),
            pool: pool.clone(),
        },
        MutationCase {
            name: "corrupt_sharers",
            protocol: Protocol::Mesi,
            faults: fault(ProtocolFault::CorruptSharers {
                tile: line.home_banked(cores, 1),
            }),
            program: place(reader_writer.clone()),
            pool: pool.clone(),
        },
        MutationCase {
            name: "skip_ts_reset",
            protocol: Protocol::TsoCc(tiny_ts),
            faults: fault(ProtocolFault::SkipTsReset { core: rot(1) }),
            // The writer climbs the 2-bit timestamp to its cap, wraps
            // silently (the fault), then publishes the flag with a
            // small wrapped timestamp the reader's transitive-reduction
            // check mistakes for already-seen — leaving the reader's
            // stale copy of location 1 alive past the acquire.
            program: place(vec![
                vec![ld(1), ld(0), ld(1)],
                vec![st(1, 1), st(1, 2), st(1, 3), st(1, 4), st(1, 5), st(0, 1)],
            ]),
            pool: ts_pool,
        },
        MutationCase {
            name: "hold_mshr",
            protocol: Protocol::Mesi,
            faults: fault(ProtocolFault::HoldMshr { core: rot(0), line }),
            program: place(reader_writer),
            pool: pool.clone(),
        },
    ]
}

/// Runs one mutation case end to end: check, shrink, re-verify the
/// shrunk reproducer.
pub fn run_mutation(case: &MutationCase, opts: &CheckOpts) -> Result<MutationOutcome, CheckError> {
    let report = check_model(&case.protocol, case.faults, &case.program, &case.pool, opts)?;
    let caught = !report.violations.is_empty();
    let (shrunk, shrunk_verified) = if caught {
        let shrunk =
            shrink_to_reproducer(&case.protocol, case.faults, &case.program, &case.pool, opts);
        let verified = check_model(&case.protocol, case.faults, &shrunk, &case.pool, opts)
            .map(|r| !r.violations.is_empty())
            .unwrap_or(false);
        (shrunk, verified)
    } else {
        (case.program.clone(), false)
    };
    Ok(MutationOutcome {
        name: case.name,
        caught,
        violation: report.violations.first().map(|v| v.kind.tag()),
        schedules: report.schedules,
        shrunk,
        shrunk_verified,
    })
}

/// One executed transition in the current trace.
#[derive(Clone, Debug)]
struct ExecStep {
    choice: Choice,
    info: StepInfo,
}

/// The DFS frame for one depth of the current trace.
struct Frame {
    /// Enabled choices at this state, in the scheduler's canonical
    /// order (identical on every replay).
    enabled: Vec<Choice>,
    /// Choices fully explored from this state.
    done: BTreeSet<Choice>,
    /// Race-driven exploration obligations (DPOR mode).
    backtrack: BTreeSet<Choice>,
    /// Choices proven redundant here (explored at an ancestor and
    /// still independent of everything since).
    sleep: BTreeSet<Choice>,
    /// The choice currently being explored below this frame.
    chosen: Option<ExecStep>,
}

impl Frame {
    fn new(enabled: Vec<Choice>, sleep: BTreeSet<Choice>) -> Frame {
        Frame {
            enabled,
            done: BTreeSet::new(),
            backtrack: BTreeSet::new(),
            sleep,
            chosen: None,
        }
    }
}

/// The process a choice belongs to, for backtrack-point planting: the
/// thread for issues and drains, the channel for deliveries.
#[derive(PartialEq, Eq)]
enum Process {
    Thread(usize),
    Channel(tsocc::Channel),
}

fn process(c: Choice) -> Process {
    match c {
        Choice::Issue { thread } | Choice::Drain { thread } => Process::Thread(thread),
        Choice::Deliver { channel } => Process::Channel(channel),
    }
}

struct Explorer<'a> {
    cfg: &'a SystemConfig,
    programs: Vec<Vec<tsocc_coherence::CoreOp>>,
    refine_lines: bool,
    opts: CheckOpts,
    report: CheckReport,
}

impl Explorer<'_> {
    /// Depth-first stateless exploration: descend picking one choice
    /// per frame, check terminals, backtrack to the deepest frame with
    /// an outstanding obligation, replay the prefix, repeat.
    fn explore(&mut self) -> Result<(), tsocc::ConfigError> {
        let mut state = ScheduledSystem::new(self.cfg, self.programs.clone())?;
        let mut frames = vec![Frame::new(state.enabled(), BTreeSet::new())];
        loop {
            if !self.report.violations.is_empty() {
                self.report.complete = false;
                return Ok(());
            }
            if self.report.schedules >= self.opts.max_schedules {
                self.report.complete = false;
                return Ok(());
            }
            let depth = frames.len() - 1;
            let frame = frames.last().expect("root frame");
            if frame.enabled.is_empty() {
                self.on_terminal(&state, &frames);
                if !self.backtrack(&mut frames, &mut state)? {
                    return Ok(());
                }
                continue;
            }
            if depth >= self.opts.max_steps {
                self.violation(ViolationKind::Livelock, &frames);
                continue;
            }
            let Some(choice) = self.pick(frame) else {
                if frame.chosen.is_none() && frame.done.is_empty() {
                    // Every enabled choice is asleep: this whole branch
                    // is a reordering of independent transitions the
                    // search has already covered.
                    self.report.sleep_blocked += 1;
                }
                if !self.backtrack(&mut frames, &mut state)? {
                    return Ok(());
                }
                continue;
            };
            let info = state.apply(choice);
            self.report.transitions += 1;
            if !self.opts.naive {
                self.plant_backtrack(&mut frames, choice, &info);
            }
            let child_sleep = self.child_sleep(frames.last().expect("frame"), choice, &info);
            frames.last_mut().expect("frame").chosen = Some(ExecStep { choice, info });
            self.check_axioms(&state, &frames);
            frames.push(Frame::new(state.enabled(), child_sleep));
        }
    }

    /// The next unexplored choice at `frame`, or `None` when the frame
    /// is exhausted (or sleep-set blocked).
    fn pick(&self, frame: &Frame) -> Option<Choice> {
        debug_assert!(frame.chosen.is_none());
        if self.opts.naive {
            // Exhaustive enumeration: every enabled choice, no pruning.
            return frame
                .enabled
                .iter()
                .copied()
                .find(|c| !frame.done.contains(c));
        }
        if frame.done.is_empty() {
            // First visit: any non-sleeping choice seeds the subtree.
            frame
                .enabled
                .iter()
                .copied()
                .find(|c| !frame.sleep.contains(c))
        } else {
            // Revisit: only race-mandated obligations are explored.
            frame.enabled.iter().copied().find(|c| {
                frame.backtrack.contains(c) && !frame.done.contains(c) && !frame.sleep.contains(c)
            })
        }
    }

    /// Race detection: plant an exploration obligation before *every*
    /// executed transition dependent with the one just taken.
    ///
    /// Classic DPOR only plants before the last dependent transition
    /// and relies on happens-before vector clocks to see through it to
    /// earlier races; without the clocks, stopping at the last one is
    /// incomplete (it misses races shadowed by a causally intermediate
    /// dependent step — observed as DPOR losing the `[1,1]` outcome of
    /// same-line store buffering). Planting at all of them
    /// over-approximates the obligation set, trading some pruning for
    /// unconditional coverage; the sleep sets claw most of it back.
    fn plant_backtrack(&mut self, frames: &mut [Frame], choice: Choice, info: &StepInfo) {
        let depth = frames.len() - 1;
        for i in (0..depth).rev() {
            let dependent = {
                let prior = frames[i].chosen.as_ref().expect("executed frame");
                self.dependent(prior, choice, info)
            };
            if !dependent {
                continue;
            }
            let p = process(choice);
            let alts: Vec<Choice> = frames[i]
                .enabled
                .iter()
                .copied()
                .filter(|&c| process(c) == p)
                .collect();
            if alts.is_empty() {
                // The process had nothing enabled there (the race is
                // causally downstream): conservatively oblige every
                // choice.
                let all = frames[i].enabled.clone();
                frames[i].backtrack.extend(all);
            } else {
                frames[i].backtrack.extend(alts);
            }
        }
    }

    /// Whether executed `prior` and the just-executed `(choice, info)`
    /// are dependent (do not commute, or affect each other's
    /// enabledness).
    fn dependent(&self, prior: &ExecStep, choice: Choice, info: &StepInfo) -> bool {
        if prior.info.ctrl == info.ctrl {
            // Same controller: dependent, except two deliveries for
            // different lines whose emissions touch disjoint channels
            // (no shared FIFO order to disturb, no shared line state —
            // and no evictions by pool construction).
            if self.refine_lines
                && matches!(prior.choice, Choice::Deliver { .. })
                && matches!(choice, Choice::Deliver { .. })
            {
                if let (Some(a), Some(b)) = (prior.info.line, info.line) {
                    if a != b
                        && prior
                            .info
                            .emitted
                            .iter()
                            .all(|ch| !info.emitted.contains(ch))
                    {
                        return false;
                    }
                }
            }
            return true;
        }
        // Cross-controller: the only interaction is through channels —
        // a delivery racing with the push that enqueued (or enabled)
        // its message.
        if let Choice::Deliver { channel } = choice {
            if prior.info.emitted.contains(&channel) {
                return true;
            }
        }
        if let Choice::Deliver { channel } = prior.choice {
            if info.emitted.contains(&channel) {
                return true;
            }
        }
        false
    }

    /// The sleep set for the child frame after taking `choice`:
    /// everything fully explored or asleep at the parent that stays
    /// independent of the executed step.
    fn child_sleep(&self, frame: &Frame, choice: Choice, info: &StepInfo) -> BTreeSet<Choice> {
        if self.opts.naive {
            return BTreeSet::new();
        }
        frame
            .sleep
            .iter()
            .chain(frame.done.iter())
            .copied()
            .filter(|&s| s != choice && sleeps_through(s, info))
            .collect()
    }

    /// Pops exhausted frames, marks their choices done, and replays the
    /// surviving prefix into a fresh system. Returns `false` when the
    /// whole tree is exhausted.
    fn backtrack(
        &mut self,
        frames: &mut Vec<Frame>,
        state: &mut ScheduledSystem,
    ) -> Result<bool, tsocc::ConfigError> {
        loop {
            frames.pop();
            let Some(frame) = frames.last_mut() else {
                return Ok(false);
            };
            let step = frame.chosen.take().expect("ancestor frames have chosen");
            frame.done.insert(step.choice);
            if self.pick(frame).is_some() {
                *state = ScheduledSystem::new(self.cfg, self.programs.clone())?;
                for f in &frames[..frames.len() - 1] {
                    state.apply(f.chosen.as_ref().expect("prefix frame").choice);
                }
                return Ok(true);
            }
        }
    }

    /// Terminal-state checks: deadlock-freedom and the TSO outcome
    /// oracle.
    fn on_terminal(&mut self, state: &ScheduledSystem, frames: &[Frame]) {
        self.report.schedules += 1;
        match state.terminal() {
            Some(Terminal::Done) => {
                let outcome = state.outcome();
                if !self.report.allowed.contains(&outcome) {
                    self.violation(
                        ViolationKind::ForbiddenOutcome {
                            outcome: outcome.clone(),
                        },
                        frames,
                    );
                }
                self.report.outcomes.insert(outcome);
            }
            Some(Terminal::Deadlock) => self.violation(ViolationKind::Deadlock, frames),
            None => unreachable!("on_terminal called with enabled choices"),
        }
    }

    /// State-invariant checks, run after every transition.
    fn check_axioms(&mut self, state: &ScheduledSystem, frames: &[Frame]) {
        let access = state.l1_access();
        let mut lines: Vec<LineAddr> = access
            .iter()
            .flat_map(|l1| l1.iter().map(|&(line, _)| line))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        for line in lines {
            let holder = |want: LineAccess| {
                access
                    .iter()
                    .enumerate()
                    .filter(move |(_, l1)| l1.iter().any(|&(l, a)| l == line && a == want))
                    .map(|(core, _)| core)
            };
            let writers: Vec<usize> = holder(LineAccess::Write).collect();
            if writers.len() > 1 {
                self.violation(
                    ViolationKind::MultipleWriters {
                        line,
                        cores: writers,
                    },
                    frames,
                );
                return;
            }
            if state.discipline() == CoherenceDiscipline::Eager && writers.len() == 1 {
                let readers: Vec<usize> = holder(LineAccess::Read).collect();
                if !readers.is_empty() {
                    self.violation(
                        ViolationKind::ReaderWriterOverlap {
                            line,
                            writer: writers[0],
                            readers,
                        },
                        frames,
                    );
                    return;
                }
            }
        }
    }

    fn violation(&mut self, kind: ViolationKind, frames: &[Frame]) {
        let schedule = frames
            .iter()
            .filter_map(|f| f.chosen.as_ref().map(|s| s.choice))
            .collect();
        self.report
            .violations
            .push(CheckViolation { kind, schedule });
    }
}

/// Whether sleeping choice `s` stays independent of an executed step:
/// conservative (any doubt wakes the choice up, which only costs
/// exploration, never soundness).
fn sleeps_through(s: Choice, info: &StepInfo) -> bool {
    match s {
        Choice::Issue { thread } | Choice::Drain { thread } => info.ctrl != Agent::L1(thread),
        Choice::Deliver { channel } => info.ctrl != channel.1 && !info.emitted.contains(&channel),
    }
}

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    use super::*;
    use tsocc_workloads::tso_model::ModelOp;

    fn st(addr: u8, value: u64) -> ModelOp {
        ModelOp::Store { addr, value }
    }

    fn ld(addr: u8) -> ModelOp {
        ModelOp::Load { addr }
    }

    fn sb() -> ModelProgram {
        vec![vec![st(0, 1), ld(1)], vec![st(1, 1), ld(0)]]
    }

    #[test]
    fn clean_mesi_sb_explores_all_four_outcomes() {
        let pool = pool_for_lines(2);
        let report = check_model(
            &Protocol::Mesi,
            FaultPlan::none(),
            &sb(),
            &pool,
            &CheckOpts::default(),
        )
        .unwrap();
        assert!(report.complete, "{report:?}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // The machine must realize the full TSO outcome set, including
        // the relaxed [0, 0].
        assert_eq!(report.outcomes, report.allowed);
        assert!(report.outcomes.contains(&vec![0, 0]));
    }

    #[test]
    fn dpor_matches_naive_outcomes_with_large_reduction() {
        let pool = pool_for_lines(1);
        // Small enough to enumerate naively to exhaustion: DPOR must
        // reach exactly the same outcome set, an order of magnitude
        // cheaper.
        let tiny: ModelProgram = vec![vec![st(0, 1)], vec![ld(0)]];
        let dpor = check_model(
            &Protocol::Mesi,
            FaultPlan::none(),
            &tiny,
            &pool,
            &CheckOpts::default(),
        )
        .unwrap();
        let naive = check_model(
            &Protocol::Mesi,
            FaultPlan::none(),
            &tiny,
            &pool,
            &CheckOpts {
                naive: true,
                ..CheckOpts::default()
            },
        )
        .unwrap();
        assert!(dpor.complete && naive.complete);
        assert_eq!(dpor.outcomes, naive.outcomes, "DPOR must lose no outcome");
        assert!(
            dpor.reduction(&naive) >= 10.0,
            "reduction {:.1}x (dpor {} vs naive {})",
            dpor.reduction(&naive),
            dpor.schedules,
            naive.schedules
        );

        // Same-line store buffering: the machine must realize the full
        // TSO outcome set — including the relaxed [0,0] — through an
        // exhaustive DPOR run. (The naive comparison would take 50x+
        // longer; `model_check --naive-cap` measures it.)
        let program = sb();
        let dpor = check_model(
            &Protocol::Mesi,
            FaultPlan::none(),
            &program,
            &pool,
            &CheckOpts::default(),
        )
        .unwrap();
        assert!(dpor.complete && dpor.violations.is_empty());
        assert_eq!(dpor.outcomes, dpor.allowed);
    }

    #[test]
    fn oracle_bound_is_surfaced_as_an_error() {
        let pool = pool_for_lines(1);
        let err = check_model(
            &Protocol::Mesi,
            FaultPlan::none(),
            &sb(),
            &pool,
            &CheckOpts {
                oracle_max_states: 2,
                ..CheckOpts::default()
            },
        );
        assert!(matches!(err, Err(CheckError::OracleTooLarge(_))));
    }
}
