//! Clean-protocol exhaustive runs: every protocol family must pass a
//! full 2-core/1-line store-buffering enumeration with zero violations
//! and realize exactly the TSO-allowed outcome set.

use tsocc_check::{check_model, pool_for_lines, CheckOpts};
use tsocc_coherence::FaultPlan;
use tsocc_mesi_coarse::MesiCoarseConfig;
use tsocc_proto::TsoCcConfig;
use tsocc_protocols::Protocol;
use tsocc_workloads::tso_model::{ModelOp, ModelProgram};

fn sb() -> ModelProgram {
    let st = |addr, value| ModelOp::Store { addr, value };
    let ld = |addr| ModelOp::Load { addr };
    vec![vec![st(0, 1), ld(1)], vec![st(1, 1), ld(0)]]
}

#[test]
fn every_protocol_family_is_clean_on_exhaustive_sb() {
    // One representative per family: the full-vector MESI baseline,
    // the coarse directory at its tightest paper point (P2, G2), and
    // lazy TSO-CC. Both words of the pool share one cache line, so the
    // run exercises same-line conflict detection end to end.
    let families = [
        Protocol::Mesi,
        Protocol::MesiCoarse(MesiCoarseConfig::new(2, 2)),
        Protocol::TsoCc(TsoCcConfig::basic()),
    ];
    let pool = pool_for_lines(1);
    for protocol in families {
        let report = check_model(
            &protocol,
            FaultPlan::none(),
            &sb(),
            &pool,
            &CheckOpts::default(),
        )
        .unwrap();
        assert!(report.complete, "{}: hit the schedule cap", protocol.name());
        assert!(
            report.violations.is_empty(),
            "{}: {:?}",
            protocol.name(),
            report.violations
        );
        assert_eq!(
            report.outcomes,
            report.allowed,
            "{}: outcome set diverges from the TSO oracle",
            protocol.name()
        );
    }
}
