//! The mutation-testing leg: every [`tsocc_coherence::ProtocolFault`]
//! must be caught exhaustively by the model checker on a small
//! configuration, and its reproducer must survive shrinking.

use tsocc_check::{check_model, mutation_cases, run_mutation, CheckOpts};

fn op_total(program: &[Vec<tsocc_workloads::tso_model::ModelOp>]) -> usize {
    program.iter().map(Vec::len).sum()
}

#[test]
fn all_four_mutations_are_caught_and_shrink_to_verified_reproducers() {
    // Every fault below is exposed within ~1k schedules; the cap only
    // bounds the shrinker's exhaustive re-checks of *clean* candidate
    // programs, which would otherwise dominate the test's runtime.
    let opts = CheckOpts {
        max_schedules: 20_000,
        ..CheckOpts::default()
    };
    let cases = mutation_cases(2, 1, 0);
    assert_eq!(cases.len(), 4);
    let expected = [
        ("drop_inv_ack", "deadlock"),
        ("corrupt_sharers", "reader_writer_overlap"),
        ("skip_ts_reset", "forbidden_outcome"),
        ("hold_mshr", "deadlock"),
    ];
    for (case, (name, kind)) in cases.iter().zip(expected) {
        assert_eq!(case.name, name);
        let outcome = run_mutation(case, &opts).unwrap();
        assert!(outcome.caught, "{name}: mutation escaped the checker");
        assert_eq!(
            outcome.violation,
            Some(kind),
            "{name}: caught as {:?}",
            outcome.violation
        );
        assert!(
            outcome.shrunk_verified,
            "{name}: shrunk reproducer no longer violates"
        );
        assert!(
            op_total(&outcome.shrunk) <= op_total(&case.program),
            "{name}: shrinking grew the program"
        );
    }
}

#[test]
fn rotated_placement_is_still_caught() {
    // Seed 1 moves every logical thread (and the faulty core) to the
    // other physical core; the catch must not depend on placement.
    // Detection only — shrinking is exercised by the test above.
    let opts = CheckOpts::default();
    for case in mutation_cases(2, 1, 1) {
        let report = check_model(
            &case.protocol,
            case.faults,
            &case.program,
            &case.pool,
            &opts,
        )
        .unwrap();
        assert!(
            !report.violations.is_empty(),
            "{}: rotated mutation escaped",
            case.name
        );
    }
}
