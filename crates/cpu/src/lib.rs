#![warn(missing_docs)]

//! Core timing model: the operational x86-TSO machine.
//!
//! Each simulated core executes one TVM program with the standard
//! operational TSO semantics (Sewell et al., "x86-TSO"):
//!
//! - stores retire into a **FIFO write buffer** (32 entries, Table 2)
//!   and drain to the L1 in program order, one outstanding store at a
//!   time (the next store issues only after the previous one's state
//!   change is acknowledged — this is what gives TSO-CC its `w → w`
//!   ordering, paper §3.1),
//! - loads **bypass the write buffer**: a load first forwards from the
//!   youngest matching buffered store, otherwise accesses the L1 and
//!   blocks the thread until the value returns (`r → r` and `r → w`
//!   order),
//! - **fences** and **RMWs** drain the write buffer before executing;
//!   RMWs are atomic at the L1.
//!
//! Substitution note (DESIGN.md §2): the paper's cores are simple
//! out-of-order with a 40-entry ROB. The consistency-relevant behaviour
//! of such a core is exactly the in-order-issue + store-buffer model
//! implemented here; store-side memory-level parallelism is retained
//! (the buffer drains while the core keeps executing).

use std::collections::VecDeque;

use tsocc_coherence::{Completion, CoreOp, L1Controller, Submit};
use tsocc_isa::{Effect, MemOp, Program, ThreadState};
use tsocc_mem::Addr;
use tsocc_sim::{Counter, Cycle, Histogram, Xoshiro256StarStar};

/// Core timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Write-buffer capacity in entries (32 in Table 2).
    pub write_buffer_entries: usize,
    /// L1 hit latency in cycles (3 in Table 2).
    pub l1_hit_latency: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            write_buffer_entries: 32,
            l1_hit_latency: 3,
        }
    }
}

/// Per-core execution statistics.
#[derive(Clone, Debug, Default)]
pub struct CoreStats {
    /// Instructions executed (including memory ops).
    pub instructions: Counter,
    /// Loads executed (including write-buffer forwards).
    pub loads: Counter,
    /// Loads satisfied by write-buffer forwarding.
    pub wb_forwards: Counter,
    /// Stores executed.
    pub stores: Counter,
    /// RMWs executed.
    pub rmws: Counter,
    /// Fences executed.
    pub fences: Counter,
    /// Cycles stalled because the write buffer was full.
    pub wb_full_stalls: Counter,
    /// Load-to-use latency of L1-missing loads.
    pub load_latency: Histogram,
    /// RMW issue-to-complete latency (the paper's Figure 8 metric).
    pub rmw_latency: Histogram,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Pending {
    /// Ready to execute the next instruction.
    None,
    /// Last submit returned `Retry`; try the same op again.
    Resubmit { op: CoreOp, first_issued: Cycle },
    /// Blocked on an L1 load miss.
    WaitLoad { issued: Cycle },
    /// Blocked on an L1 RMW miss.
    WaitRmw { issued: Cycle },
    /// RMW waiting for the write buffer to drain.
    DrainForRmw { addr: Addr, op: tsocc_isa::RmwOp },
    /// Fence waiting for the write buffer to drain.
    DrainForFence,
    /// Store stalled on a full write buffer.
    WbFull { addr: Addr, value: u64 },
    /// Local compute until the given cycle.
    DelayUntil(Cycle),
}

/// One simulated core: thread state, write buffer and pipeline control.
///
/// Drive it once per cycle with [`Core::tick`], passing the core's L1
/// controller. The core is finished when [`Core::is_done`] — the thread
/// has halted *and* the write buffer has fully drained.
#[derive(Debug)]
pub struct Core {
    id: usize,
    program: Program,
    thread: ThreadState,
    cfg: CoreConfig,
    rng: Xoshiro256StarStar,
    pending: Pending,
    /// FIFO write buffer; the head may be in flight at the L1.
    write_buffer: VecDeque<(Addr, u64)>,
    /// Whether the head of the write buffer has been accepted by the L1
    /// and awaits completion.
    store_inflight: bool,
    /// Scratch buffer handed to `L1Controller::drain_completions` every
    /// tick, so the core↔L1 boundary allocates nothing per cycle.
    completions: Vec<Completion>,
    stats: CoreStats,
}

impl Core {
    /// Creates core `id` executing `program`.
    pub fn new(id: usize, program: Program, cfg: CoreConfig, seed: u64) -> Self {
        Core {
            id,
            program,
            thread: ThreadState::new(),
            cfg,
            rng: Xoshiro256StarStar::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9)),
            pending: Pending::None,
            write_buffer: VecDeque::new(),
            store_inflight: false,
            completions: Vec::new(),
            stats: CoreStats::default(),
        }
    }

    /// Core id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The program this core runs (lets a run loop rebuild an
    /// equivalent machine, e.g. for graceful degradation after a
    /// parallel-stepper failure).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The architectural thread state (final registers for litmus
    /// outcome checking).
    pub fn thread(&self) -> &ThreadState {
        &self.thread
    }

    /// Execution statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Whether the thread has halted and all stores have drained.
    pub fn is_done(&self) -> bool {
        self.thread.is_halted()
            && self.write_buffer.is_empty()
            && !self.store_inflight
            && matches!(self.pending, Pending::None)
    }

    /// The earliest cycle at or after `now` at which this core's
    /// [`Core::tick`] could change machine state, assuming no L1
    /// completions arrive in between (message deliveries wake the
    /// system independently). Returns [`Cycle::MAX`] when the core is
    /// finished or blocked purely on its memory system.
    ///
    /// This is the event-driven scheduler's contract: every skipped
    /// cycle strictly before the returned value must be one where
    /// `tick` would have been a no-op — no instruction executed, no L1
    /// submit attempted, no statistic counted — so skipping preserves
    /// bit-identical simulation results.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if self.is_done() {
            return Cycle::MAX;
        }
        // The write-buffer head is (re)submitted on every tick while no
        // store is in flight; a submit can change L1 state (MSHR
        // allocation, recency), so those cycles must actually run.
        if !self.store_inflight && !self.write_buffer.is_empty() {
            return now;
        }
        match self.pending {
            // Blocked on an outstanding L1 transaction: only a message
            // delivery (a separate wake source) can unblock.
            Pending::WaitLoad { .. } | Pending::WaitRmw { .. } => Cycle::MAX,
            // Waiting on the write buffer: with buffered stores the
            // head-submit rule above applies; otherwise the in-flight
            // store must complete first (message-driven), except when
            // the buffer already drained and the op issues next tick.
            Pending::DrainForRmw { .. } | Pending::DrainForFence => {
                if self.store_inflight {
                    Cycle::MAX
                } else {
                    now
                }
            }
            Pending::DelayUntil(t) => t.max(now),
            // Retries submit, and a full-buffer stall counts a stall
            // statistic, every cycle; neither may be skipped.
            Pending::Resubmit { .. } | Pending::WbFull { .. } => now,
            Pending::None => {
                if self.thread.is_halted() {
                    // Halted with a store in flight (is_done and the
                    // head-submit rule handled the other cases).
                    Cycle::MAX
                } else {
                    now
                }
            }
        }
    }

    /// Youngest buffered store to `addr`, if any (TSO load forwarding).
    fn forward_from_wb(&self, addr: Addr) -> Option<u64> {
        self.write_buffer
            .iter()
            .rev()
            .find(|(a, _)| *a == addr)
            .map(|&(_, v)| v)
    }

    /// Advances the core by one cycle against its L1.
    pub fn tick(&mut self, now: Cycle, l1: &mut dyn L1Controller) {
        // 1. Collect completions of outstanding L1 transactions into
        // the reusable scratch buffer (moved out for the loop so the
        // body may borrow `self`, moved back to keep its capacity).
        let mut completions = std::mem::take(&mut self.completions);
        debug_assert!(completions.is_empty());
        l1.drain_completions(&mut completions);
        for completion in completions.drain(..) {
            match completion {
                Completion::Load(value) => match self.pending {
                    Pending::WaitLoad { issued } => {
                        self.thread.complete_load(value);
                        self.stats.load_latency.record(now - issued);
                        self.pending = Pending::None;
                    }
                    Pending::WaitRmw { issued } => {
                        self.thread.complete_load(value);
                        self.stats.rmw_latency.record(now - issued);
                        self.pending = Pending::None;
                    }
                    ref other => panic!("core {}: load completion while {:?}", self.id, other),
                },
                Completion::Store => {
                    assert!(
                        self.store_inflight,
                        "core {}: spurious store completion",
                        self.id
                    );
                    self.store_inflight = false;
                    self.write_buffer.pop_front();
                }
            }
        }
        self.completions = completions;

        // 2. Drain the write buffer: issue the head store if idle.
        if !self.store_inflight {
            if let Some(&(addr, value)) = self.write_buffer.front() {
                match l1.submit(now, CoreOp::Store(addr, value)) {
                    Submit::Hit(_) => {
                        self.write_buffer.pop_front();
                    }
                    Submit::Miss => self.store_inflight = true,
                    Submit::Retry => {}
                }
            }
        }

        // 3. Advance the pipeline.
        match self.pending.clone() {
            Pending::WaitLoad { .. } | Pending::WaitRmw { .. } => {}
            Pending::DelayUntil(t) => {
                if now >= t {
                    self.pending = Pending::None;
                }
            }
            Pending::WbFull { addr, value } => {
                if self.write_buffer.len() < self.cfg.write_buffer_entries {
                    self.write_buffer.push_back((addr, value));
                    self.pending = Pending::None;
                } else {
                    self.stats.wb_full_stalls.inc();
                }
            }
            Pending::DrainForRmw { addr, op } => {
                if self.write_buffer.is_empty() && !self.store_inflight {
                    self.issue_rmw(now, l1, addr, op);
                }
            }
            Pending::DrainForFence => {
                if self.write_buffer.is_empty() && !self.store_inflight {
                    match l1.submit(now, CoreOp::Fence) {
                        Submit::Hit(_) => self.pending = Pending::None,
                        Submit::Miss => panic!("fences complete immediately at the L1"),
                        Submit::Retry => {}
                    }
                }
            }
            Pending::Resubmit { op, first_issued } => match op {
                CoreOp::Load(addr) => self.issue_load(now, l1, addr, first_issued),
                CoreOp::Rmw(addr, rmw) => self.issue_rmw(first_issued.max(now), l1, addr, rmw),
                other => panic!("core {}: unexpected resubmit of {other:?}", self.id),
            },
            Pending::None => {
                if !self.thread.is_halted() {
                    self.execute_one(now, l1);
                }
            }
        }
    }

    fn execute_one(&mut self, now: Cycle, l1: &mut dyn L1Controller) {
        self.stats.instructions.inc();
        match self.thread.step(&self.program) {
            Effect::Continue | Effect::Halted => {}
            Effect::Delay(c) => {
                self.pending = Pending::DelayUntil(now + c as u64);
            }
            Effect::RandDelay(max) => {
                let d = if max == 0 {
                    0
                } else {
                    self.rng.range(0, max as u64 + 1)
                };
                self.pending = Pending::DelayUntil(now + d);
            }
            Effect::Mem(MemOp::Load { addr }) => {
                self.stats.loads.inc();
                let addr = Addr::new(addr);
                if let Some(value) = self.forward_from_wb(addr) {
                    // TSO: reads must see the core's own buffered stores.
                    self.stats.wb_forwards.inc();
                    self.thread.complete_load(value);
                } else {
                    self.issue_load(now, l1, addr, now);
                }
            }
            Effect::Mem(MemOp::Store { addr, value }) => {
                self.stats.stores.inc();
                let addr = Addr::new(addr);
                if self.write_buffer.len() < self.cfg.write_buffer_entries {
                    self.write_buffer.push_back((addr, value));
                } else {
                    self.stats.wb_full_stalls.inc();
                    self.pending = Pending::WbFull { addr, value };
                }
            }
            Effect::Mem(MemOp::Rmw { addr, op }) => {
                self.stats.rmws.inc();
                // RMWs drain the buffer first: x86 locked ops flush the
                // store buffer before executing.
                self.pending = Pending::DrainForRmw {
                    addr: Addr::new(addr),
                    op,
                };
            }
            Effect::Mem(MemOp::Fence) => {
                self.stats.fences.inc();
                self.pending = Pending::DrainForFence;
            }
        }
    }

    fn issue_load(
        &mut self,
        now: Cycle,
        l1: &mut dyn L1Controller,
        addr: Addr,
        first_issued: Cycle,
    ) {
        match l1.submit(now, CoreOp::Load(addr)) {
            Submit::Hit(value) => {
                self.thread.complete_load(value);
                self.pending = Pending::DelayUntil(now + self.cfg.l1_hit_latency);
            }
            Submit::Miss => {
                self.pending = Pending::WaitLoad {
                    issued: first_issued,
                };
            }
            Submit::Retry => {
                self.pending = Pending::Resubmit {
                    op: CoreOp::Load(addr),
                    first_issued,
                };
            }
        }
    }

    fn issue_rmw(
        &mut self,
        now: Cycle,
        l1: &mut dyn L1Controller,
        addr: Addr,
        op: tsocc_isa::RmwOp,
    ) {
        match l1.submit(now, CoreOp::Rmw(addr, op)) {
            Submit::Hit(old) => {
                self.thread.complete_load(old);
                self.stats.rmw_latency.record(self.cfg.l1_hit_latency);
                self.pending = Pending::DelayUntil(now + self.cfg.l1_hit_latency);
            }
            Submit::Miss => {
                self.pending = Pending::WaitRmw { issued: now };
            }
            Submit::Retry => {
                self.pending = Pending::Resubmit {
                    op: CoreOp::Rmw(addr, op),
                    first_issued: now,
                };
            }
        }
    }
}

/// This crate's compiled version. The orchestrator (`tsocc-orch`) folds
/// the versions of every simulated-metric-affecting crate into the
/// code-version fingerprint that content-addresses cached results, so
/// bumping a crate version invalidates exactly the results its code
/// could have changed.
pub const CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests;
