use std::collections::HashMap;
use std::collections::VecDeque;

use tsocc_coherence::{
    Agent, CacheController, Completion, CoreOp, L1Controller, L1Stats, Msg, NetMsg, Submit,
};
use tsocc_isa::{Asm, Reg};
use tsocc_sim::Cycle;

use super::*;

/// A functional mock L1: word-addressed flat memory, configurable miss
/// behaviour, records the order in which ops were performed.
struct MockL1 {
    mem: HashMap<u64, u64>,
    /// Ops complete `miss_latency` cycles later when nonzero.
    miss_latency: u64,
    inflight: VecDeque<(Cycle, Completion)>,
    log: Vec<CoreOp>,
    stats: L1Stats,
    now: Cycle,
}

impl MockL1 {
    fn hit() -> Self {
        MockL1 {
            mem: HashMap::new(),
            miss_latency: 0,
            inflight: VecDeque::new(),
            log: Vec::new(),
            stats: L1Stats::default(),
            now: Cycle::ZERO,
        }
    }

    fn missy(latency: u64) -> Self {
        let mut m = MockL1::hit();
        m.miss_latency = latency;
        m
    }

    fn perform(&mut self, op: CoreOp) -> u64 {
        self.log.push(op);
        match op {
            CoreOp::Load(a) => self.mem.get(&a.as_u64()).copied().unwrap_or(0),
            CoreOp::Store(a, v) => {
                self.mem.insert(a.as_u64(), v);
                0
            }
            CoreOp::Rmw(a, rmw) => {
                let old = self.mem.get(&a.as_u64()).copied().unwrap_or(0);
                self.mem.insert(a.as_u64(), rmw.apply(old));
                old
            }
            CoreOp::Fence => 0,
        }
    }
}

impl CacheController for MockL1 {
    fn handle_message(&mut self, _now: Cycle, _src: Agent, _msg: Msg) {}
    fn tick(&mut self, now: Cycle) {
        self.now = now;
    }
    fn drain_outbox(&mut self, _now: Cycle, _out: &mut Vec<NetMsg>) {}
    fn is_quiescent(&self) -> bool {
        self.inflight.is_empty()
    }
    fn next_event(&self) -> Cycle {
        self.inflight.front().map_or(Cycle::MAX, |&(t, _)| t)
    }
}

impl L1Controller for MockL1 {
    fn submit(&mut self, now: Cycle, op: CoreOp) -> Submit {
        if self.miss_latency == 0 || matches!(op, CoreOp::Fence) {
            Submit::Hit(self.perform(op))
        } else {
            let value = self.perform(op);
            let done = now + self.miss_latency;
            let completion = match op {
                CoreOp::Store(..) => Completion::Store,
                _ => Completion::Load(value),
            };
            self.inflight.push_back((done, completion));
            Submit::Miss
        }
    }

    fn drain_completions(&mut self, out: &mut Vec<Completion>) {
        while let Some(&(t, c)) = self.inflight.front() {
            if t > self.now {
                break;
            }
            self.inflight.pop_front();
            out.push(c);
        }
    }

    fn stats(&self) -> &L1Stats {
        &self.stats
    }
}

fn run(core: &mut Core, l1: &mut MockL1, max_cycles: u64) -> u64 {
    for t in 0..max_cycles {
        let now = Cycle::new(t);
        l1.tick(now);
        core.tick(now, l1);
        if core.is_done() {
            return t;
        }
    }
    panic!("core did not finish in {max_cycles} cycles");
}

#[test]
fn straight_line_program_completes() {
    let mut a = Asm::new();
    a.movi(Reg::R1, 42);
    a.store_abs(Reg::R1, 0x100);
    a.load_abs(Reg::R2, 0x100);
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::hit();
    run(&mut core, &mut l1, 1000);
    assert_eq!(core.thread().reg(Reg::R2), 42);
    assert_eq!(core.stats().loads.get(), 1);
    assert_eq!(core.stats().stores.get(), 1);
}

#[test]
fn load_forwards_from_write_buffer() {
    // With a huge miss latency, the store sits in the write buffer; the
    // following load must still see it (TSO bypass) without touching L1.
    let mut a = Asm::new();
    a.movi(Reg::R1, 7);
    a.store_abs(Reg::R1, 0x200);
    a.load_abs(Reg::R2, 0x200);
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::missy(500);
    run(&mut core, &mut l1, 3000);
    assert_eq!(core.thread().reg(Reg::R2), 7);
    assert_eq!(core.stats().wb_forwards.get(), 1);
}

#[test]
fn forwarding_picks_youngest_store() {
    let mut a = Asm::new();
    a.movi(Reg::R1, 1);
    a.store_abs(Reg::R1, 0x200);
    a.movi(Reg::R1, 2);
    a.store_abs(Reg::R1, 0x200);
    a.load_abs(Reg::R2, 0x200);
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::missy(200);
    run(&mut core, &mut l1, 3000);
    assert_eq!(core.thread().reg(Reg::R2), 2);
}

#[test]
fn stores_drain_in_fifo_order() {
    let mut a = Asm::new();
    for i in 0..5u64 {
        a.movi(Reg::R1, i + 10);
        a.store_abs(Reg::R1, 0x100 + i * 8);
    }
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::missy(17);
    run(&mut core, &mut l1, 3000);
    let stores: Vec<u64> = l1
        .log
        .iter()
        .filter_map(|op| match op {
            CoreOp::Store(a, _) => Some(a.as_u64()),
            _ => None,
        })
        .collect();
    assert_eq!(stores, vec![0x100, 0x108, 0x110, 0x118, 0x120]);
    // One at a time: only one store may be in flight, so the program
    // ends only after 5 * 17 cycles of store draining.
    assert_eq!(l1.mem[&0x120], 14);
}

#[test]
fn fence_waits_for_drain() {
    let mut a = Asm::new();
    a.movi(Reg::R1, 5);
    a.store_abs(Reg::R1, 0x100);
    a.fence();
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::missy(100);
    run(&mut core, &mut l1, 2000);
    // The fence must be performed after the store completed.
    let fence_pos = l1
        .log
        .iter()
        .position(|o| matches!(o, CoreOp::Fence))
        .unwrap();
    let store_pos = l1
        .log
        .iter()
        .position(|o| matches!(o, CoreOp::Store(..)))
        .unwrap();
    assert!(fence_pos > store_pos);
    assert_eq!(core.stats().fences.get(), 1);
}

#[test]
fn rmw_drains_then_executes_atomically() {
    let mut a = Asm::new();
    a.movi(Reg::R1, 3);
    a.store_abs(Reg::R1, 0x300); // buffered store to another line
    a.movi(Reg::R2, 1);
    a.fetch_add(Reg::R3, Reg::R0, 0x400, Reg::R2);
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::missy(50);
    run(&mut core, &mut l1, 3000);
    assert_eq!(core.thread().reg(Reg::R3), 0, "old value");
    assert_eq!(l1.mem[&0x400], 1);
    // RMW must be ordered after the buffered store drained.
    let rmw_pos = l1
        .log
        .iter()
        .position(|o| matches!(o, CoreOp::Rmw(..)))
        .unwrap();
    let store_pos = l1
        .log
        .iter()
        .position(|o| matches!(o, CoreOp::Store(..)))
        .unwrap();
    assert!(rmw_pos > store_pos);
    assert!(core.stats().rmw_latency.count() == 1);
}

#[test]
fn write_buffer_capacity_stalls() {
    let cfg = CoreConfig {
        write_buffer_entries: 2,
        l1_hit_latency: 3,
    };
    let mut a = Asm::new();
    for i in 0..6u64 {
        a.movi(Reg::R1, i);
        a.store_abs(Reg::R1, 0x100 + i * 8);
    }
    a.halt();
    let mut core = Core::new(0, a.finish(), cfg, 1);
    let mut l1 = MockL1::missy(40);
    run(&mut core, &mut l1, 5000);
    assert!(core.stats().wb_full_stalls.get() > 0);
    assert_eq!(l1.mem[&0x128], 5, "all stores eventually landed");
}

#[test]
fn done_requires_drained_write_buffer() {
    let mut a = Asm::new();
    a.movi(Reg::R1, 1);
    a.store_abs(Reg::R1, 0x100);
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::missy(100);
    // Run a few cycles: thread halts quickly but the store is in flight.
    for t in 0..10 {
        l1.tick(Cycle::new(t));
        core.tick(Cycle::new(t), &mut l1);
    }
    assert!(core.thread().is_halted());
    assert!(!core.is_done(), "store still draining");
    run(&mut core, &mut l1, 1000);
}

#[test]
fn load_latency_recorded_for_misses() {
    let mut a = Asm::new();
    a.load_abs(Reg::R1, 0x100);
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::missy(64);
    run(&mut core, &mut l1, 1000);
    assert_eq!(core.stats().load_latency.count(), 1);
    assert!(core.stats().load_latency.mean() >= 64.0);
}

#[test]
fn rand_delay_is_deterministic_per_seed() {
    let build = || {
        let mut a = Asm::new();
        a.rand_delay(100);
        a.rand_delay(100);
        a.halt();
        a.finish()
    };
    let mut c1 = Core::new(0, build(), CoreConfig::default(), 42);
    let mut c2 = Core::new(0, build(), CoreConfig::default(), 42);
    let mut l1a = MockL1::hit();
    let mut l1b = MockL1::hit();
    let t1 = run(&mut c1, &mut l1a, 10_000);
    let t2 = run(&mut c2, &mut l1b, 10_000);
    assert_eq!(t1, t2, "same seed, same timing");
}

#[test]
fn halted_core_stays_done() {
    let mut a = Asm::new();
    a.halt();
    let mut core = Core::new(3, a.finish(), CoreConfig::default(), 9);
    let mut l1 = MockL1::hit();
    run(&mut core, &mut l1, 100);
    assert!(core.is_done());
    assert_eq!(core.id(), 3);
    core.tick(Cycle::new(999), &mut l1);
    assert!(core.is_done());
}

#[test]
fn next_event_of_a_fresh_core_is_immediate() {
    let mut a = Asm::new();
    a.halt();
    let core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    assert_eq!(core.next_event(Cycle::new(5)), Cycle::new(5));
}

#[test]
fn next_event_of_a_done_core_is_never() {
    let mut a = Asm::new();
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::hit();
    run(&mut core, &mut l1, 100);
    assert_eq!(core.next_event(Cycle::new(50)), Cycle::MAX);
}

#[test]
fn next_event_while_blocked_on_load_is_never() {
    let mut a = Asm::new();
    a.load_abs(Reg::R1, 0x100);
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::missy(500);
    // Tick until the load has been issued and the core is waiting.
    for t in 0..5 {
        let now = Cycle::new(t);
        l1.tick(now);
        core.tick(now, &mut l1);
    }
    assert!(!core.is_done());
    assert_eq!(
        core.next_event(Cycle::new(5)),
        Cycle::MAX,
        "a core blocked on an L1 miss has no self-driven wake"
    );
}

#[test]
fn next_event_with_buffered_store_is_immediate() {
    // A store parked in the write buffer is re-submitted every cycle,
    // so the core must not be skipped while the head is not in flight.
    let mut a = Asm::new();
    a.movi(Reg::R1, 1);
    a.store_abs(Reg::R1, 0x100);
    a.store_abs(Reg::R1, 0x140);
    a.halt();
    let mut core = Core::new(0, a.finish(), CoreConfig::default(), 1);
    let mut l1 = MockL1::missy(500);
    for t in 0..4 {
        let now = Cycle::new(t);
        l1.tick(now);
        core.tick(now, &mut l1);
    }
    // One store is in flight at the L1 and one still sits in the
    // buffer; the buffered one submits as soon as the first completes,
    // which is message-driven — until then ticks are no-ops.
    assert!(!core.is_done());
    assert_eq!(core.next_event(Cycle::new(4)), Cycle::MAX);
}

#[test]
fn skipping_to_next_event_matches_per_cycle_ticking() {
    // Drive two identical cores to completion, one ticked every cycle,
    // one ticked only at next_event() wake-ups (plus completion
    // cycles), and require identical timing and statistics.
    let build = || {
        let mut a = Asm::new();
        a.movi(Reg::R1, 3);
        a.store_abs(Reg::R1, 0x100);
        a.load_abs(Reg::R2, 0x180);
        a.delay(17);
        a.load_abs(Reg::R3, 0x100);
        a.halt();
        a.finish()
    };
    let mut ref_core = Core::new(0, build(), CoreConfig::default(), 7);
    let mut ref_l1 = MockL1::missy(40);
    let done_ref = run(&mut ref_core, &mut ref_l1, 10_000);

    let mut ev_core = Core::new(0, build(), CoreConfig::default(), 7);
    let mut ev_l1 = MockL1::missy(40);
    let mut ticked = 0u64;
    let mut done_ev = None;
    for t in 0..10_000u64 {
        let now = Cycle::new(t);
        // The MockL1's completion deadline stands in for the mesh wake.
        let wake = ev_core.next_event(now).min(ev_l1.next_event());
        if wake > now {
            continue;
        }
        ev_l1.tick(now);
        ev_core.tick(now, &mut ev_l1);
        ticked += 1;
        if ev_core.is_done() {
            done_ev = Some(t);
            break;
        }
    }
    assert_eq!(done_ev, Some(done_ref), "event-driven timing must match");
    assert!(ticked < done_ref, "some idle cycles must have been skipped");
    assert_eq!(
        ev_core.stats().instructions.get(),
        ref_core.stats().instructions.get()
    );
    assert_eq!(ev_core.stats().loads.get(), ref_core.stats().loads.get());
}
