//! TSO-CC private L1 cache controller, as a policy over the shared
//! [`L1Chassis`].

use tsocc_coherence::{
    Agent, Completion, CoreOp, Epoch, Grant, Install, L1Chassis, L1Ctl, L1Policy, LineAccess, Msg,
    SelfInvCause, Submit, Ts, TsSource,
};
use tsocc_isa::RmwOp;
use tsocc_mem::{Addr, CacheParams, LineAddr, LineData};
use tsocc_sim::Cycle;

use crate::config::TsoCcConfig;

/// L1 line states (Invalid is represented by absence).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Untracked shared copy; may hit `max_acc` times before a forced
    /// re-request; removed by self-invalidation sweeps.
    Shared,
    /// Shared read-only copy; hits without limit; invalidated by
    /// broadcast on remote writes; survives sweeps.
    SharedRO,
    Exclusive,
    Modified,
}

/// One resident TSO-CC L1 line (opaque outside the policy).
#[derive(Clone, Copy, Debug)]
pub struct Line {
    state: State,
    data: LineData,
    /// Hits consumed since the line was (re-)obtained (`b.acnt`).
    acnt: u64,
    /// Last-written timestamp (`b.ts`), valid only once written by this
    /// core.
    ts: Ts,
}

#[derive(Clone, Copy, Debug)]
enum MshrOp {
    Load { word: usize },
    Store { word: usize, value: u64 },
    Rmw { word: usize, op: RmwOp },
}

/// One in-flight TSO-CC L1 miss (opaque outside the policy).
#[derive(Debug)]
pub struct Mshr {
    op: MshrOp,
    /// An invalidation raced past the data response (SharedRO broadcast
    /// invalidation or inclusive L2 eviction). The arriving shared data
    /// is usable for the access but must not be cached (§3.4 races).
    poisoned: bool,
}

/// Structural configuration of a TSO-CC L1 (the protocol parameters
/// live in [`TsoCcConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct TsoCcL1Config {
    /// This core's id.
    pub id: usize,
    /// Total number of cores (for reset broadcasts).
    pub n_cores: usize,
    /// Number of L2 tiles.
    pub n_tiles: usize,
    /// L2 banks per tile (home-interleaving granularity; 1 in Table 2).
    pub l2_banks: usize,
    /// Cache geometry (32 KiB 4-way in Table 2).
    pub params: CacheParams,
    /// Tag-array latency charged before an outgoing request (cycles).
    pub issue_latency: u64,
    /// Protocol parameters.
    pub proto: TsoCcConfig,
}

impl TsoCcL1Config {
    /// The paper's Table 2 L1 with the given protocol parameters.
    pub fn table2(id: usize, n_cores: usize, n_tiles: usize, proto: TsoCcConfig) -> Self {
        TsoCcL1Config {
            id,
            n_cores,
            n_tiles,
            l2_banks: 1,
            params: CacheParams::from_capacity(32 * 1024, 4),
            issue_latency: 1,
            proto,
        }
    }

    /// Builds the controller: a [`TsoCcL1Policy`] over a fresh chassis.
    pub fn build(self) -> TsoCcL1 {
        L1Ctl::assemble(
            L1Chassis::new(
                self.id,
                self.n_cores,
                self.n_tiles,
                self.l2_banks,
                self.issue_latency,
                self.params,
            ),
            TsoCcL1Policy::new(self.proto, self.n_cores, self.n_tiles),
        )
    }
}

/// The TSO-CC L1 controller for one core.
pub type TsoCcL1 = L1Ctl<TsoCcL1Policy>;

/// The TSO-CC L1 transition rules and per-core protocol state.
///
/// Owns the core-local timestamp source, the write-group counter, the
/// last-seen timestamp tables (`ts_L1`, `ts_L2`) and the epoch-id tables
/// of Table 1 — everything structural (lines, MSHRs, the writeback
/// buffer) lives in the chassis.
#[derive(Debug)]
pub struct TsoCcL1Policy {
    proto: TsoCcConfig,
    /// Current write timestamp source.
    ts_src: Ts,
    /// Writes consumed in the current timestamp group.
    wg_count: u64,
    /// Current epoch of this core's timestamp source.
    epoch: Epoch,
    /// Last-seen write timestamp per remote core (`ts_L1`), indexed by
    /// core id; [`Ts::INVALID`] means "never seen" (every recorded
    /// timestamp is valid, so the sentinel is unambiguous).
    ts_l1: Vec<Ts>,
    /// Expected epoch per remote core's timestamp source, indexed by
    /// core id ([`Epoch::ZERO`] until a reset is observed).
    epochs_l1: Vec<Epoch>,
    /// Last-seen SharedRO timestamp per L2 tile (`ts_L2`), indexed by
    /// tile; [`Ts::INVALID`] means "never seen".
    ts_l2: Vec<Ts>,
    /// Expected epoch per L2 tile's timestamp source, indexed by tile.
    epochs_l2: Vec<Epoch>,
}

type Ch = L1Chassis<Line, Mshr>;

impl TsoCcL1Policy {
    /// Creates the policy state for one core.
    fn new(proto: TsoCcConfig, n_cores: usize, n_tiles: usize) -> Self {
        TsoCcL1Policy {
            proto,
            ts_src: Ts::SMALLEST_VALID,
            wg_count: 0,
            epoch: Epoch::ZERO,
            ts_l1: vec![Ts::INVALID; n_cores],
            epochs_l1: vec![Epoch::ZERO; n_cores],
            ts_l2: vec![Ts::INVALID; n_tiles],
            epochs_l2: vec![Epoch::ZERO; n_tiles],
        }
    }

    // ---- timestamp management (§3.3 / §3.5) -----------------------------

    /// Consumes one write: returns the timestamp to stamp the line with
    /// and advances the group/source counters, broadcasting a reset on
    /// wrap-around.
    fn on_write(&mut self, ch: &mut Ch, now: Cycle) -> Ts {
        let Some(params) = self.proto.write_ts else {
            return Ts::INVALID;
        };
        let stamp = self.ts_src;
        self.wg_count += 1;
        if self.wg_count >= params.group_size() {
            self.wg_count = 0;
            if self.ts_src.as_u64() >= params.max_ts() {
                self.reset_ts(ch, now);
            } else {
                self.ts_src = self.ts_src.next();
            }
        }
        stamp
    }

    /// Wraps the timestamp source: new epoch, broadcast, restart just
    /// above the smallest valid timestamp (§3.5).
    fn reset_ts(&mut self, ch: &mut Ch, now: Cycle) {
        if ch.faults.skip_ts_reset() {
            // Injected fault: wrap the source silently — no epoch
            // advance, no broadcast. Small post-wrap timestamps then
            // defeat remote `ts >= last_seen` acquire checks, so stale
            // lines survive where the protocol demands
            // self-invalidation.
            self.ts_src = Ts::SMALLEST_VALID.next();
            return;
        }
        self.epoch = self.epoch.next(self.proto.epoch_bits);
        self.ts_src = Ts::SMALLEST_VALID.next();
        ch.stats.ts_resets.inc();
        let msg = Msg::TsReset {
            source: TsSource::L1(ch.id()),
            epoch: self.epoch,
        };
        for core in 0..ch.n_cores() {
            if core != ch.id() {
                ch.send(now, Agent::L1(core), msg.clone());
            }
        }
        for tile in 0..ch.n_tiles() {
            ch.send(now, Agent::L2(tile), msg.clone());
        }
    }

    /// Clamps a line timestamp against the current source ("compare
    /// against the current timestamp-source", §3.5): a timestamp from a
    /// previous epoch must not be sent out larger than the source.
    fn clamp_own_ts(&self, ts: Ts) -> Ts {
        if !ts.is_valid() {
            Ts::INVALID
        } else if ts <= self.ts_src {
            ts
        } else {
            Ts::SMALLEST_VALID
        }
    }

    // ---- self-invalidation (§3.2 / §3.3 / §3.4) --------------------------

    /// Invalidates all Shared lines (SharedRO, Exclusive and Modified
    /// lines survive).
    fn self_invalidate(&mut self, ch: &mut Ch, cause: SelfInvCause) {
        let removed = ch.cache.retain(|_, l| l.state != State::Shared);
        ch.stats.record_selfinv(cause, removed as u64);
    }

    /// Applies the potential-acquire detection rules to a data
    /// response; called for every L1 miss response before installing.
    fn acquire_check(
        &mut self,
        ch: &mut Ch,
        grant: Grant,
        writer: usize,
        ts: Ts,
        epoch: Epoch,
        ts_source: Option<TsSource>,
    ) {
        match grant {
            Grant::SharedRO => {
                let Some(TsSource::L2(tile)) = ts_source else {
                    // No SharedRO timestamps (CC-shared-to-L2): always a
                    // mandatory self-invalidation.
                    self.self_invalidate(ch, SelfInvCause::InvalidTs);
                    return;
                };
                // Epoch mismatch: handle as if the reset message arrived
                // (the response raced past a TsReset broadcast).
                if epoch != self.epochs_l2[tile] {
                    self.epochs_l2[tile] = epoch;
                    self.ts_l2[tile] = Ts::INVALID;
                }
                if !ts.is_valid() {
                    self.self_invalidate(ch, SelfInvCause::InvalidTs);
                    return;
                }
                let seen = self.ts_l2[tile];
                if !seen.is_valid() {
                    // Never read from this tile (or reset dropped the
                    // entry): mandatory self-invalidation.
                    self.self_invalidate(ch, SelfInvCause::InvalidTs);
                    self.ts_l2[tile] = ts;
                } else if ts > seen {
                    // SharedRO timestamps are grouped (§3.4), so the
                    // potential-acquire rule is "larger than".
                    self.self_invalidate(ch, SelfInvCause::AcquireSro);
                    self.ts_l2[tile] = ts;
                }
            }
            Grant::Exclusive | Grant::Shared => {
                if writer == ch.id() {
                    // Reading our own last write implies no new
                    // happened-before edge: no self-invalidation (§3.2).
                    return;
                }
                let Some(params) = self.proto.write_ts else {
                    // Basic protocol: every remote data response
                    // self-invalidates; the timestamp is (vacuously)
                    // invalid.
                    self.self_invalidate(ch, SelfInvCause::InvalidTs);
                    return;
                };
                if writer == usize::MAX || !ts.is_valid() {
                    self.self_invalidate(ch, SelfInvCause::InvalidTs);
                    return;
                }
                if let Some(TsSource::L1(w)) = ts_source {
                    debug_assert_eq!(w, writer);
                    if epoch != self.epochs_l1[w] {
                        self.epochs_l1[w] = epoch;
                        self.ts_l1[w] = Ts::INVALID;
                    }
                }
                let seen = self.ts_l1[writer];
                if !seen.is_valid() {
                    // Never read from this writer before (§3.3).
                    self.self_invalidate(ch, SelfInvCause::InvalidTs);
                    self.ts_l1[writer] = ts;
                } else {
                    // Write groups share timestamps, so with groups
                    // the rule is >=; with group size 1 it is > (§3.3).
                    let acquire = if params.group_size() > 1 {
                        ts >= seen
                    } else {
                        ts > seen
                    };
                    if acquire {
                        self.self_invalidate(ch, SelfInvCause::AcquireNonSro);
                    }
                    if ts > seen {
                        self.ts_l1[writer] = ts;
                    }
                }
            }
        }
    }

    // ---- eviction / install ----------------------------------------------

    /// Writes an evicted line back: silent for Shared/SharedRO, PutE /
    /// timestamped PutM for private lines.
    fn writeback(&mut self, ch: &mut Ch, now: Cycle, line: LineAddr, l: Line) {
        match l.state {
            // Shared and SharedRO lines are untracked: silent (§3.2,
            // §3.4 — the coarse group vector stays conservatively set).
            State::Shared | State::SharedRO => {}
            State::Exclusive => {
                ch.park_writeback(now, line, l.data, false, Ts::INVALID, Epoch::ZERO);
            }
            State::Modified => {
                let ts = self.clamp_own_ts(l.ts);
                ch.park_writeback(now, line, l.data, true, ts, self.epoch);
            }
        }
    }

    /// Handles an arriving data response for an outstanding miss.
    fn complete_miss(
        &mut self,
        ch: &mut Ch,
        now: Cycle,
        line: LineAddr,
        data: LineData,
        grant: Grant,
        ack_required: bool,
    ) {
        if ch.faults.hold_mshr(line) {
            // Injected fault: the MSHR never completes. The request
            // wedges and the system's hang diagnosis takes over.
            return;
        }
        let mshr = ch
            .mshrs
            .remove(line)
            .unwrap_or_else(|| panic!("L1[{}]: data for no MSHR {line}", ch.id()));
        let poisoned = mshr.poisoned;
        let mut data = data;
        let (entry, completion) = match mshr.op {
            MshrOp::Load { word } => {
                let value = data.read_word(word);
                let state = match grant {
                    Grant::Exclusive => State::Exclusive,
                    Grant::Shared => State::Shared,
                    Grant::SharedRO => State::SharedRO,
                };
                let entry = Line {
                    state,
                    data,
                    acnt: 0,
                    ts: Ts::INVALID,
                };
                (Some(entry), Completion::Load(value))
            }
            MshrOp::Store { word, value } => {
                assert_eq!(grant, Grant::Exclusive, "stores need exclusive grants");
                data.write_word(word, value);
                let ts = self.on_write(ch, now);
                let entry = Line {
                    state: State::Modified,
                    data,
                    acnt: 0,
                    ts,
                };
                (Some(entry), Completion::Store)
            }
            MshrOp::Rmw { word, op } => {
                assert_eq!(grant, Grant::Exclusive, "RMWs need exclusive grants");
                let old = data.read_word(word);
                data.write_word(word, op.apply(old));
                let ts = self.on_write(ch, now);
                let entry = Line {
                    state: State::Modified,
                    data,
                    acnt: 0,
                    ts,
                };
                (Some(entry), Completion::Load(old))
            }
        };
        if let Some(entry) = entry {
            // CC-shared-to-L2 never caches Shared data; poisoned shared
            // grants (a racing invalidation) must not be cached either.
            let cacheable = !((entry.state == State::Shared && self.proto.max_acc == 0)
                || (poisoned && matches!(entry.state, State::Shared | State::SharedRO)));
            if cacheable {
                match ch.install(now, line, entry) {
                    Install::Done => {}
                    Install::Evicted(victim, old) => self.writeback(ch, now, victim, old),
                    Install::NoWay => {
                        // No evictable way: hand the line straight back.
                        self.writeback(ch, now, line, entry);
                    }
                }
            } else if ch.cache.peek(line).is_some() {
                // An expired or invalidation-raced resident copy must
                // not linger with stale data.
                ch.cache.remove(line);
            }
        }
        if ack_required {
            ch.send_unblock(now, line);
        }
        ch.completions.push(completion);
    }
}

impl L1Policy for TsoCcL1Policy {
    type Line = Line;
    type Mshr = Mshr;

    fn submit(&mut self, ch: &mut Ch, now: Cycle, op: CoreOp) -> Submit {
        match op {
            CoreOp::Fence => {
                // Fences self-invalidate all Shared lines (§3.6).
                self.self_invalidate(ch, SelfInvCause::Fence);
                Submit::Hit(0)
            }
            CoreOp::Load(addr) => self.submit_load(ch, now, addr),
            CoreOp::Store(addr, value) => self.submit_store(ch, now, addr, value),
            CoreOp::Rmw(addr, rmw) => self.submit_rmw(ch, now, addr, rmw),
        }
    }

    fn line_access(&self, line: &Line) -> LineAccess {
        match line.state {
            State::Shared | State::SharedRO => LineAccess::Read,
            State::Exclusive | State::Modified => LineAccess::Write,
        }
    }

    fn handle_message(&mut self, ch: &mut Ch, now: Cycle, _src: Agent, msg: Msg) {
        match msg {
            Msg::Data {
                line,
                data,
                grant,
                writer,
                ts,
                epoch,
                ts_source,
                ack_required,
                ..
            } => {
                // Potential-acquire detection happens on every L1 miss
                // data response, before the new line is installed so the
                // sweep cannot remove it (§3.2).
                self.acquire_check(ch, grant, writer, ts, epoch, ts_source);
                self.complete_miss(ch, now, line, data, grant, ack_required);
            }
            Msg::FwdGetS { line, requester } => {
                // The owner downgrades to Shared, supplies the requester
                // and refreshes the L2 copy (§3.2).
                let (data, dirty, ts) = if let Some(l) = ch.cache.peek_mut(line) {
                    let dirty = l.state == State::Modified;
                    let ts = l.ts;
                    l.state = State::Shared;
                    l.acnt = 0;
                    (l.data, dirty, ts)
                } else if let Some(entry) = ch.wb.get_mut(line) {
                    entry.forwarded = true;
                    (entry.data, entry.dirty, entry.ts)
                } else {
                    panic!("L1[{}]: FwdGetS for absent line {line}", ch.id());
                };
                let (resp_ts, writer) = if dirty {
                    (self.clamp_own_ts(ts), ch.id())
                } else {
                    // A clean Exclusive copy was never written by us; we
                    // cannot vouch for a timestamp (the L2 will move the
                    // line to SharedRO).
                    (Ts::INVALID, usize::MAX)
                };
                let id = ch.id();
                ch.send(
                    now,
                    Agent::L1(requester),
                    Msg::Data {
                        line,
                        data,
                        grant: Grant::Shared,
                        writer,
                        ts: resp_ts,
                        epoch: self.epoch,
                        ts_source: Some(TsSource::L1(id)),
                        acks_expected: 0,
                        with_payload: true,
                        ack_required: false,
                    },
                );
                let home = ch.home(line);
                ch.send(
                    now,
                    home,
                    Msg::DowngradeData {
                        line,
                        data,
                        dirty,
                        ts: resp_ts,
                        epoch: self.epoch,
                        from: id,
                    },
                );
            }
            Msg::FwdGetX { line, requester } => {
                let (data, ts, writer) = if let Some(l) = ch.cache.remove(line) {
                    if l.state == State::Modified {
                        (l.data, self.clamp_own_ts(l.ts), ch.id())
                    } else {
                        (l.data, Ts::INVALID, usize::MAX)
                    }
                } else if let Some(entry) = ch.wb.get_mut(line) {
                    entry.forwarded = true;
                    if entry.dirty {
                        (entry.data, entry.ts, ch.id())
                    } else {
                        (entry.data, Ts::INVALID, usize::MAX)
                    }
                } else {
                    panic!("L1[{}]: FwdGetX for absent line {line}", ch.id());
                };
                let id = ch.id();
                ch.send(
                    now,
                    Agent::L1(requester),
                    Msg::Data {
                        line,
                        data,
                        grant: Grant::Exclusive,
                        writer,
                        ts,
                        epoch: self.epoch,
                        ts_source: Some(TsSource::L1(id)),
                        acks_expected: 0,
                        with_payload: true,
                        ack_required: true,
                    },
                );
            }
            Msg::Inv {
                line,
                ack_to_requester,
            } => {
                // SharedRO broadcast invalidation or inclusive L2
                // eviction; shared copies are removed blindly.
                if let Some(l) = ch.cache.peek(line) {
                    debug_assert!(
                        matches!(l.state, State::Shared | State::SharedRO),
                        "Inv must not target private lines"
                    );
                    ch.cache.remove(line);
                }
                if let Some(m) = ch.mshrs.get_mut(line) {
                    if matches!(m.op, MshrOp::Load { .. }) {
                        m.poisoned = true;
                    }
                }
                debug_assert!(ack_to_requester.is_none(), "TSO-CC collects acks at the L2");
                let home = ch.home(line);
                let from = ch.id();
                ch.send(now, home, Msg::InvAckToL2 { line, from });
            }
            Msg::Recall { line } => {
                let (data, dirty, ts) = if let Some(l) = ch.cache.remove(line) {
                    (l.data, l.state == State::Modified, self.clamp_own_ts(l.ts))
                } else if let Some(entry) = ch.wb.get_mut(line) {
                    entry.forwarded = true;
                    (entry.data, entry.dirty, entry.ts)
                } else {
                    panic!("L1[{}]: Recall for absent line {line}", ch.id());
                };
                let home = ch.home(line);
                let from = ch.id();
                ch.send(
                    now,
                    home,
                    Msg::RecallData {
                        line,
                        data,
                        dirty,
                        ts,
                        epoch: self.epoch,
                        from,
                    },
                );
            }
            Msg::PutAck { line } => {
                ch.wb.remove(line);
            }
            Msg::TsReset { source, epoch } => match source {
                TsSource::L1(core) => {
                    self.ts_l1[core] = Ts::INVALID;
                    self.epochs_l1[core] = epoch;
                }
                TsSource::L2(tile) => {
                    self.ts_l2[tile] = Ts::INVALID;
                    self.epochs_l2[tile] = epoch;
                }
            },
            other => panic!("L1[{}]: unexpected {other:?}", ch.id()),
        }
    }
}

impl TsoCcL1Policy {
    fn submit_load(&mut self, ch: &mut Ch, now: Cycle, addr: Addr) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        let max_acc = self.proto.max_acc;
        let mut expired_shared = false;
        if let Some(l) = ch.cache.lookup_mut(line) {
            match l.state {
                State::Exclusive | State::Modified => {
                    ch.stats.read_hit_private.inc();
                    return Submit::Hit(l.data.read_word(word));
                }
                State::SharedRO => {
                    ch.stats.read_hit_sharedro.inc();
                    return Submit::Hit(l.data.read_word(word));
                }
                State::Shared => {
                    if l.acnt < max_acc {
                        // Bounded staleness: a Shared line may serve up
                        // to 2^Bmaxacc hits before a forced re-request
                        // guarantees write propagation (§3.1).
                        l.acnt += 1;
                        ch.stats.read_hit_shared.inc();
                        return Submit::Hit(l.data.read_word(word));
                    }
                    expired_shared = true;
                }
            }
        }
        if !ch.line_free(line) {
            return Submit::Retry;
        }
        if expired_shared {
            ch.stats.read_miss_shared.inc();
        } else {
            ch.stats.read_miss_invalid.inc();
        }
        ch.mshrs.alloc(
            line,
            Mshr {
                op: MshrOp::Load { word },
                poisoned: false,
            },
        );
        let home = ch.home(line);
        ch.send(now, home, Msg::GetS { line });
        Submit::Miss
    }

    fn submit_store(&mut self, ch: &mut Ch, now: Cycle, addr: Addr, value: u64) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        let private = matches!(
            ch.cache.peek(line).map(|l| l.state),
            Some(State::Exclusive | State::Modified)
        );
        if private {
            // Exclusive→Modified transitions are silent (§3.2).
            let ts = self.on_write(ch, now);
            let l = ch.cache.lookup_mut(line).expect("checked resident");
            l.state = State::Modified;
            l.data.write_word(word, value);
            l.ts = ts;
            ch.stats.write_hit_private.inc();
            return Submit::Hit(0);
        }
        if !ch.line_free(line) {
            return Submit::Retry;
        }
        match ch.cache.peek(line).map(|l| l.state) {
            Some(State::Shared) => ch.stats.write_miss_shared.inc(),
            Some(State::SharedRO) => ch.stats.write_miss_sharedro.inc(),
            _ => ch.stats.write_miss_invalid.inc(),
        }
        ch.mshrs.alloc(
            line,
            Mshr {
                op: MshrOp::Store { word, value },
                poisoned: false,
            },
        );
        let home = ch.home(line);
        ch.send(now, home, Msg::GetX { line });
        Submit::Miss
    }

    fn submit_rmw(&mut self, ch: &mut Ch, now: Cycle, addr: Addr, rmw: RmwOp) -> Submit {
        let line = addr.line();
        let word = addr.word_index();
        let private = matches!(
            ch.cache.peek(line).map(|l| l.state),
            Some(State::Exclusive | State::Modified)
        );
        if private {
            let ts = self.on_write(ch, now);
            let l = ch.cache.lookup_mut(line).expect("checked resident");
            l.state = State::Modified;
            let old = l.data.read_word(word);
            l.data.write_word(word, rmw.apply(old));
            l.ts = ts;
            ch.stats.rmw_hit.inc();
            ch.stats.write_hit_private.inc();
            return Submit::Hit(old);
        }
        if !ch.line_free(line) {
            return Submit::Retry;
        }
        ch.stats.rmw_miss.inc();
        match ch.cache.peek(line).map(|l| l.state) {
            Some(State::Shared) => ch.stats.write_miss_shared.inc(),
            Some(State::SharedRO) => ch.stats.write_miss_sharedro.inc(),
            _ => ch.stats.write_miss_invalid.inc(),
        }
        ch.mshrs.alloc(
            line,
            Mshr {
                op: MshrOp::Rmw { word, op: rmw },
                poisoned: false,
            },
        );
        let home = ch.home(line);
        ch.send(now, home, Msg::GetX { line });
        Submit::Miss
    }
}
